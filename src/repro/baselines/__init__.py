"""Self-tuning supply-scaling baselines from the paper's related work.

Section 1 of the paper surveys existing adaptive-supply techniques and argues
they all keep safety margins because they must guarantee error-free operation
at all times:

* *correlating VCO / delay-line speed detector* schemes ([9-11]) tune the
  supply against a replica circuit that mimics the critical path -- the
  replica tracks process and temperature but cannot see the bus's
  data-dependent IR drop or neighbour switching, so a margin for both must
  remain (:class:`~repro.baselines.canary.CanaryVoltageScaling`);
* the *triple-latch monitor* ([12]) periodically propagates worst-case
  latency vectors through the real path -- it sees the path's true delay but
  only under the test vector, pays the test-vector energy, and cannot exploit
  typical data (:class:`~repro.baselines.triple_latch.TripleLatchMonitor`).

Together with the fixed voltage-scaling baseline of Table 1
(:mod:`repro.core.fixed_vs`) and the proposed error-correcting DVS system
(:mod:`repro.core.dvs_system`), these allow the full comparison the paper
sketches qualitatively to be run quantitatively
(:func:`~repro.baselines.comparison.run_scheme_comparison`).
"""

from repro.baselines.scheme import SchemeResult, evaluate_static_scheme, worst_case_cycle_energy
from repro.baselines.canary import CanaryVoltageScaling
from repro.baselines.triple_latch import TripleLatchMonitor
from repro.baselines.comparison import (
    SchemeComparison,
    format_scheme_comparison,
    run_scheme_comparison,
)

__all__ = [
    "SchemeResult",
    "evaluate_static_scheme",
    "worst_case_cycle_energy",
    "CanaryVoltageScaling",
    "TripleLatchMonitor",
    "SchemeComparison",
    "format_scheme_comparison",
    "run_scheme_comparison",
]
