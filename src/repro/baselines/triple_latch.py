"""Triple-latch monitor: periodic worst-case latency-vector testing.

Reference [12] of the paper (Kehl's hardware self-tuning) periodically tests
the actual circuit with worst-case latency vectors captured by three latches
clocked slightly apart: if even the "early" latch captures the right value
there is margin to lower the supply, if only the "late" latch does the supply
must rise.  Applied to a bus the scheme:

* observes the real path, so it tracks process, temperature *and* whatever IR
  drop the test vector itself produces,
* cannot exploit typical data -- the test vector is the worst-case pattern by
  construction,
* cannot see the data-dependent IR drop of the *actual traffic* (the paper's
  specific criticism), so a guard band must remain, and
* pays for propagating the worst-case vectors through the heavily loaded bus
  at every test interval.

The model here reflects exactly those four properties: the selected voltage
is the zero-error voltage of the true corner plus a guard band, and the test
energy (worst-case switching of the whole bus for ``vectors_per_test``
cycles, every ``test_interval_cycles``) is charged to the scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.scheme import (
    SchemeResult,
    evaluate_static_scheme,
    worst_case_cycle_energy,
)
from repro.bus.bus_model import CharacterizedBus, TraceStatistics
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TripleLatchMonitor:
    """Periodic worst-case-vector self-tuning (always error-free).

    Parameters
    ----------
    test_interval_cycles:
        How often the monitor interrupts normal traffic to run a test
        (10 000 cycles by default, matching the paper's control-window
        granularity so the comparison is like-for-like).
    vectors_per_test:
        Worst-case latency vectors propagated per test.  Each vector costs a
        full worst-case switching cycle of the bus.
    guard_steps:
        Grid steps kept above the measured failure point to cover the
        traffic-dependent IR drop the test vector cannot reproduce.
    """

    test_interval_cycles: int = 10_000
    vectors_per_test: int = 32
    guard_steps: int = 1

    def __post_init__(self) -> None:
        check_positive("test_interval_cycles", self.test_interval_cycles)
        check_positive("vectors_per_test", self.vectors_per_test)
        if self.guard_steps < 0:
            raise ValueError(f"guard_steps must be >= 0, got {self.guard_steps}")

    @property
    def name(self) -> str:
        """Scheme name used in comparison reports."""
        return "triple-latch monitor"

    def select_voltage(self, bus: CharacterizedBus) -> float:
        """Lowest grid supply the monitor settles at for the bus's true corner."""
        minimum = bus.zero_error_voltage()
        guarded = minimum + self.guard_steps * bus.grid.step
        return bus.grid.clamp(guarded)

    def test_overhead_energy(self, bus: CharacterizedBus, n_cycles: int, vdd: float) -> float:
        """Energy spent on test vectors over ``n_cycles`` of program execution."""
        if n_cycles <= 0:
            return 0.0
        n_tests = n_cycles // self.test_interval_cycles
        per_vector = worst_case_cycle_energy(bus, vdd)
        return n_tests * self.vectors_per_test * per_vector

    def evaluate(self, bus: CharacterizedBus, stats: TraceStatistics) -> SchemeResult:
        """Run the workload at the monitor-selected supply, charging test energy."""
        voltage = self.select_voltage(bus)
        overhead = self.test_overhead_energy(bus, stats.n_cycles, voltage)
        return evaluate_static_scheme(
            bus,
            stats,
            voltage,
            scheme=self.name,
            overhead_energy=overhead,
            notes=(
                f"tests the real path every {self.test_interval_cycles} cycles with "
                f"{self.vectors_per_test} worst-case vectors, +{self.guard_steps} step guard band"
            ),
        )
