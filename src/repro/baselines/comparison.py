"""Head-to-head comparison of supply-scaling schemes on one workload.

The comparison runs, with identical energy accounting:

1. the fixed voltage-scaling baseline of Table 1 (process corner only,
   worst-case temperature/IR margins),
2. the canary delay-line scheme (adds temperature tracking),
3. the triple-latch monitor (tests the real path, pays test energy), and
4. the paper's proposed error-correcting closed-loop DVS.

Each baseline recovers exactly the margin it can observe: fixed VS only the
process corner, the canary additionally the temperature (so it only pulls
ahead of fixed VS when the die is cooler than the 100 C worst case, and its
replica-mismatch guard band costs it a step otherwise), the triple-latch
monitor additionally the true IR-drop state of the tested path.  Only the
proposed DVS exploits the data-dependent slack, which is the quantitative
version of the argument the paper makes qualitatively in Section 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.baselines.canary import CanaryVoltageScaling
from repro.baselines.scheme import SchemeResult
from repro.baselines.triple_latch import TripleLatchMonitor
from repro.bus.bus_design import BusDesign
from repro.bus.bus_model import CharacterizedBus, TraceStatistics
from repro.circuit.pvt import PVTCorner
from repro.core.dvs_system import DVSBusSystem
from repro.core.fixed_vs import evaluate_fixed_scaling
from repro.trace.trace import BusTrace


@dataclass(frozen=True)
class SchemeComparison:
    """Results of every scheme on one workload at one corner."""

    corner: PVTCorner
    workload_name: str
    n_cycles: int
    results: tuple[SchemeResult, ...]

    def by_scheme(self, scheme: str) -> SchemeResult:
        """Look up one scheme's result by name."""
        for result in self.results:
            if result.scheme == scheme:
                return result
        known = ", ".join(result.scheme for result in self.results)
        raise KeyError(f"no result for scheme {scheme!r}; known: {known}")

    @property
    def proposed(self) -> SchemeResult:
        """The proposed error-correcting DVS row."""
        return self.by_scheme("proposed DVS")

    def gains_percent(self) -> Mapping[str, float]:
        """Scheme name to energy gain (percent), in evaluation order."""
        return {result.scheme: result.energy_gain_percent for result in self.results}

    def as_dict(self) -> dict:
        """Stable JSON-able view: one row per scheme, evaluation order."""
        return {
            "corner": self.corner.label,
            "workload": self.workload_name,
            "n_cycles": int(self.n_cycles),
            "schemes": [result.as_dict() for result in self.results],
        }


def _combine(bus: CharacterizedBus, traces: Sequence[BusTrace]) -> TraceStatistics:
    combined: TraceStatistics | None = None
    for trace in traces:
        stats = bus.analyze(trace.values)
        combined = stats if combined is None else combined.concatenate(stats)
    if combined is None:
        raise ValueError("need at least one trace to compare schemes on")
    return combined


def run_scheme_comparison(
    design: BusDesign,
    traces: Sequence[BusTrace],
    corner: PVTCorner,
    *,
    canary: CanaryVoltageScaling | None = None,
    triple_latch: TripleLatchMonitor | None = None,
    window_cycles: int = 2_000,
    ramp_delay_cycles: int = 600,
    warmup_fraction: float = 0.5,
    workload_name: str = "suite",
) -> SchemeComparison:
    """Evaluate all four schemes on a workload at one corner.

    Parameters
    ----------
    design:
        The bus design (normally :meth:`BusDesign.paper_bus`).
    traces:
        Workload traces, evaluated back to back.
    corner:
        The corner that actually prevails during execution.
    canary / triple_latch:
        Baseline configurations; defaults use their standard guard bands.
    window_cycles / ramp_delay_cycles / warmup_fraction:
        Control-loop parameters of the proposed DVS run (scaled-down defaults
        for short traces, as in the benchmark harness).
    """
    if canary is None:
        canary = CanaryVoltageScaling()
    if triple_latch is None:
        triple_latch = TripleLatchMonitor(test_interval_cycles=window_cycles * 5)

    bus = CharacterizedBus(design, corner)
    stats = _combine(bus, traces)

    fixed = evaluate_fixed_scaling(bus, stats)
    results = [
        SchemeResult(
            scheme="fixed VS",
            voltage=fixed.voltage,
            energy=fixed.energy,
            reference_energy=fixed.reference_energy,
            error_rate=fixed.error_rate,
            notes="process corner only; worst-case temperature and IR margins",
        ),
        canary.evaluate(bus, stats),
        triple_latch.evaluate(bus, stats),
    ]

    system = DVSBusSystem(
        bus, window_cycles=window_cycles, ramp_delay_cycles=ramp_delay_cycles
    )
    warmup = int(warmup_fraction * stats.n_cycles)
    dvs = system.run(stats, warmup_cycles=warmup)
    results.append(
        SchemeResult(
            scheme="proposed DVS",
            voltage=dvs.minimum_voltage_reached,
            energy=dvs.energy,
            reference_energy=dvs.reference_energy,
            error_rate=dvs.average_error_rate,
            notes="closed loop on corrected errors; no margins (voltage shown is the minimum reached)",
        )
    )
    return SchemeComparison(
        corner=corner,
        workload_name=workload_name,
        n_cycles=stats.n_cycles,
        results=tuple(results),
    )


def format_scheme_comparison(comparison: SchemeComparison) -> str:
    """Text table of a scheme comparison (one row per scheme)."""
    title = (
        f"Supply-scaling schemes -- workload {comparison.workload_name!r}, "
        f"corner {comparison.corner.label}, {comparison.n_cycles} cycles"
    )
    header = f"{'scheme':<22} {'Vdd (mV)':>9} {'gain %':>7} {'err %':>6}  notes"
    lines = [title, header, "-" * len(header)]
    for result in comparison.results:
        lines.append(
            f"{result.scheme:<22} {result.voltage * 1000:>9.0f} "
            f"{result.energy_gain_percent:>7.1f} {result.error_rate * 100:>6.2f}  {result.notes}"
        )
    return "\n".join(lines)
