"""Replica-path ("canary") voltage scaling: correlating VCO / delay-line schemes.

References [9-11] of the paper tune the supply against a circuit that mimics
the critical path.  For a bus the replica cannot be the bus itself (the paper
notes duplicating a bus is prohibitively expensive), so it is a delay line
calibrated to the bus's worst-case delay at design time.  The replica sits on
the same die, so it *does* track:

* the global process corner, and
* the operating temperature.

It does *not* see:

* the data-dependent IR drop at the bus repeaters (the replica draws its own,
  much smaller current), and
* the neighbour switching pattern of the actual data (the replica has fixed
  neighbours).

The controller therefore picks the lowest supply at which the replica --
i.e. the bus at the observable part of the corner, with worst-case IR drop
and worst-case coupling assumed -- still meets the main flip-flop deadline,
and adds a small guard band for replica-to-bus mismatch.  Correct operation
is guaranteed by construction; the cost is that none of the data-dependent
slack is ever recovered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.scheme import SchemeResult, evaluate_static_scheme
from repro.bus.bus_model import CharacterizedBus, TraceStatistics
from repro.circuit.pvt import PVTCorner
from repro.core.fixed_vs import ASSUMED_WORST_IR_DROP


@dataclass(frozen=True)
class CanaryVoltageScaling:
    """Closed-loop replica-path supply scaling (always error-free).

    Parameters
    ----------
    guard_steps:
        Number of 20 mV grid steps added above the replica-derived minimum to
        cover replica-to-bus mismatch (process gradients across the die,
        replica calibration error).  One step is a typical allowance.
    assumed_ir_drop:
        IR-drop margin the scheme must keep because the replica cannot
        observe the bus repeaters' supply droop; the paper's worst case is
        10 %.
    """

    guard_steps: int = 1
    assumed_ir_drop: float = ASSUMED_WORST_IR_DROP

    def __post_init__(self) -> None:
        if self.guard_steps < 0:
            raise ValueError(f"guard_steps must be >= 0, got {self.guard_steps}")
        if not 0.0 <= self.assumed_ir_drop < 1.0:
            raise ValueError(f"assumed_ir_drop must be in [0, 1), got {self.assumed_ir_drop}")

    @property
    def name(self) -> str:
        """Scheme name used in comparison reports."""
        return "canary delay-line"

    def observable_corner(self, actual: PVTCorner) -> PVTCorner:
        """The part of the operating corner the replica can observe.

        Process and temperature are tracked; the IR drop is replaced by the
        scheme's worst-case assumption.
        """
        return PVTCorner(actual.process, actual.temperature_c, self.assumed_ir_drop)

    def select_voltage(self, bus: CharacterizedBus) -> float:
        """Lowest grid supply the replica-based controller would settle at."""
        observable = self.observable_corner(bus.corner)
        # Db-first, live fallback (lazy import: repro.chardb -> repro.runtime
        # -> analysis would otherwise circle back into the baselines).
        from repro.chardb.active import resolve_table

        table = resolve_table(bus.design, observable, bus.grid)
        minimum = table.min_voltage_meeting(
            bus.design.clocking.main_deadline, bus.design.topology.max_coupling_factor
        )
        guarded = minimum + self.guard_steps * bus.grid.step
        return bus.grid.clamp(guarded)

    def evaluate(self, bus: CharacterizedBus, stats: TraceStatistics) -> SchemeResult:
        """Run the workload at the replica-selected supply and report the gain.

        The replica delay line's own power (a handful of inverters against a
        heavily repeated 6 mm bus) is negligible and not charged.
        """
        voltage = self.select_voltage(bus)
        return evaluate_static_scheme(
            bus,
            stats,
            voltage,
            scheme=self.name,
            notes=(
                f"tracks process+temperature, assumes {self.assumed_ir_drop * 100:.0f}% IR drop "
                f"and worst-case coupling, +{self.guard_steps} step guard band"
            ),
        )
