"""Shared result container and helpers for supply-scaling schemes.

Every baseline in this package ultimately picks a *static* supply voltage for
the operating corner it can observe (possibly with a guard band) and may pay
some measurement overhead.  :func:`evaluate_static_scheme` evaluates such a
choice on a workload with exactly the same energy accounting as the rest of
the library, so baselines and the proposed DVS system are directly
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.bus.bus_model import CharacterizedBus, TraceStatistics
from repro.energy.accounting import EnergyBreakdown
from repro.energy.gains import breakdown_gain_percent


@dataclass(frozen=True)
class SchemeResult:
    """Outcome of one supply-scaling scheme on one workload at one corner.

    Attributes
    ----------
    scheme:
        Human-readable scheme name.
    voltage:
        The static supply the scheme selected (for adaptive schemes this is
        the minimum voltage reached; see the scheme's own result object for
        the full trajectory).
    energy:
        Energy of the workload under the scheme, including any measurement
        overhead the scheme pays (test vectors, replica circuits).
    reference_energy:
        Energy of the same workload at the nominal supply with no errors.
    error_rate:
        Fraction of cycles with corrected timing errors (zero for
        error-intolerant schemes unless their margin was insufficient).
    overhead_energy:
        The measurement overhead included in ``energy`` (joules), reported
        separately so its share is visible.
    notes:
        Short description of the margins/assumptions behind the choice.
    """

    scheme: str
    voltage: float
    energy: EnergyBreakdown
    reference_energy: EnergyBreakdown
    error_rate: float
    overhead_energy: float = 0.0
    notes: str = ""

    @property
    def energy_gain_percent(self) -> float:
        """Energy gain versus the nominal supply, in percent."""
        return breakdown_gain_percent(self.reference_energy, self.energy)

    @property
    def is_error_free(self) -> bool:
        """Whether the scheme met its error-free guarantee on this workload."""
        return self.error_rate == 0.0

    def as_dict(self) -> dict:
        """Stable JSON-able view of one scheme's row."""
        return {
            "scheme": self.scheme,
            "voltage_mv": round(self.voltage * 1000.0, 1),
            "energy_gain_percent": round(self.energy_gain_percent, 2),
            "error_rate_percent": round(self.error_rate * 100.0, 3),
            "overhead_energy_percent_of_total": round(
                100.0 * self.overhead_energy / self.energy.total_with_recovery, 3
            )
            if self.energy.total_with_recovery
            else 0.0,
            "notes": self.notes,
        }


def worst_case_cycle_energy(bus: CharacterizedBus, vdd: float) -> float:
    """Dynamic energy of one worst-case switching cycle on the whole bus.

    The worst case has every signal wire toggling with its neighbours moving
    in the opposite direction, which is exactly the pattern a latency test
    vector must exercise.  The energy is obtained by running a two-word
    alternating checkerboard trace through the bus's own energy model rather
    than re-deriving coefficients here.
    """
    n_bits = bus.design.n_bits
    checkerboard = np.zeros((2, n_bits), dtype=np.uint8)
    checkerboard[0, 0::2] = 1
    checkerboard[1, 1::2] = 1
    stats = bus.analyze(checkerboard)
    return float(bus.dynamic_energy_per_cycle(stats, vdd)[0])


def evaluate_static_scheme(
    bus: CharacterizedBus,
    stats: TraceStatistics,
    voltage: float,
    scheme: str,
    overhead_energy: float = 0.0,
    notes: str = "",
) -> SchemeResult:
    """Evaluate a scheme that runs the whole workload at one supply voltage.

    ``overhead_energy`` is added to the bus dynamic energy (it is energy the
    scheme spends on the bus wires or their replicas to make its decision).
    """
    if overhead_energy < 0.0:
        raise ValueError(f"overhead_energy must be >= 0, got {overhead_energy}")
    voltage = bus.grid.snap(voltage)
    error_rate = bus.error_rate(stats, voltage)
    n_errors = int(round(error_rate * stats.n_cycles))
    energy = bus.energy_breakdown(stats, voltage, n_errors=n_errors)
    if overhead_energy:
        energy = replace(energy, bus_dynamic=energy.bus_dynamic + overhead_energy)
    return SchemeResult(
        scheme=scheme,
        voltage=voltage,
        energy=energy,
        reference_energy=bus.nominal_energy(stats),
        error_rate=error_rate,
        overhead_energy=overhead_energy,
        notes=notes,
    )
