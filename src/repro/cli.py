"""Command-line interface: ``python -m repro <command>``.

The CLI is a thin veneer over the experiment registry and the core library,
so everything it prints can also be obtained programmatically; it exists so
the reproduction can be driven without writing a script:

* ``python -m repro list`` -- the experiment inventory (DESIGN.md ids),
* ``python -m repro run fig5`` -- regenerate one figure/table,
* ``python -m repro characterize --corner typical`` -- the bus's delay/error
  behaviour over the voltage grid at one corner,
* ``python -m repro simulate --benchmark crafty --corner typical`` -- one
  closed-loop DVS run with a supply-voltage time series,
* ``python -m repro compare-schemes --corner typical`` -- fixed VS vs canary
  vs triple-latch vs the proposed DVS,
* ``python -m repro sweep pvt-mega --jobs 8`` -- a declarative parameter grid
  executed by the runtime engine with caching and a worker pool,
* ``python -m repro report --experiments table1,fig8`` -- render experiments
  into a Markdown/JSON/SVG artifact directory with a per-metric fidelity
  summary against the paper's published values,
* ``python -m repro cache info`` -- inspect or clear the result cache,
* ``python -m repro cache stats`` -- cache contents plus the hit/miss
  counters of the last telemetry log,
* ``python -m repro profile table1 --cycles 50000`` -- run one bounded
  experiment under the telemetry tracer and print the top span paths and
  counter deltas (a Chrome trace-event file is always written),
* ``python -m repro serve --jobs 4`` -- the persistent job server: accepts
  submissions over a local JSONL socket protocol, dedupes in-flight
  duplicates by cache key, batches compatible jobs, streams progress, and
  enforces per-client quotas with backpressure,
* ``python -m repro submit table1`` -- submit one experiment to a running
  server and stream its result (bit-identical to ``run``, same cache keys),
* ``python -m repro jobs [--stats|--cancel JOB|--shutdown]`` -- inspect or
  control a running server,
* ``python -m repro chardb build`` -- bake the delay/error/energy surfaces
  for every standard (corner x width x coupling) combination into the
  committed ``chardb/paper.chardb`` artifact (``inspect`` and ``verify``
  examine it; ``build --check`` is the CI drift gate),
* ``python -m repro kernels`` -- the mini-CPU kernels available as workloads,
* ``python -m repro trace --workload cpu:memcopy --out m.npz`` -- generate,
  inspect or save any registered workload trace (``trace --list`` shows the
  spec grammar: synthetic profiles, ``cpu:<kernel>``, ``file:<path>``,
  ``simpoint:``/``suite:``/``encoded:`` wrappers).

``simulate`` and ``run`` (for the experiments that take workloads, i.e.
``table1``/``fig8``) accept the same ``--workload`` specs, so any registered
workload can be driven through the closed loop without code edits.

The runtime flags steer the engine for the commands that go through it:
``--cache-dir PATH`` / ``--no-cache`` apply to ``run``, ``sweep`` and
``report`` (repeated runs hit the content-addressed cache instead of
re-simulating) and ``--cache-dir`` selects the cache for ``cache``;
``--jobs N`` applies to ``sweep`` and ``report``, fanning cache misses out
over N worker processes with bit-identical results.  ``run``, ``simulate``
and ``profile`` honour ``--jobs`` too: a single invocation fans its
*statistics pass* out over N workers via the parallel two-pass engine
(``repro simulate --jobs 4``), again bit-identical to serial.  The other
one-off commands (``characterize``, ``compare-schemes``) always simulate
directly.

``--telemetry[=PATH]`` (global, and on ``run``/``sweep``/``simulate``/
``report``/``profile``) installs the span tracer for the command and writes
``PATH.jsonl`` (the event/counter log) plus ``PATH.trace.json`` (Chrome
trace-event format, loadable in Perfetto) at exit, along with an end-of-run
summary on stderr.  Telemetry is otherwise disabled and costs nothing.

``--chardb PATH`` (global, and on the commands that characterise buses)
activates a prebuilt characterization database for the whole command: every
surface lookup resolves from the file instead of the circuit models, worker
processes inherit it through ``$REPRO_CHARDB``, and ``run``/``sweep``/
``submit`` fold the file's content hash into their cache keys.  Results are
bit-identical with or without it -- the database only removes the
characterization latency.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from collections.abc import Iterator, Sequence

import numpy as np

from repro.analysis.experiments import EXPERIMENTS, accepted_kwargs, run_experiment
from repro.baselines import format_scheme_comparison, run_scheme_comparison
from repro.bus import BusDesign, CharacterizedBus
from repro.bus.engine import DEFAULT_ENGINE, ENGINE_PARALLEL, ENGINES
from repro.circuit.pvt import PVTCorner
from repro.core.dvs_system import DVSBusSystem
from repro.cpu import KERNELS
from repro.plotting import Series, line_chart
from repro.runtime import (
    CORNERS,
    SWEEPS,
    ProgressPrinter,
    ResultCache,
    ResultStore,
    auto_chunk_progress,
    default_cache_dir,
    format_sweep_report,
    get_sweep,
    run_jobs,
)
from repro.runtime.tasks import get_task
from repro.telemetry import (
    DEFAULT_TELEMETRY_BASE,
    Telemetry,
    format_parallel_summary,
    format_summary,
    get_telemetry,
    read_jsonl_metrics,
    telemetry_paths,
    use_telemetry,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import format_quantity
from repro.trace import (
    TABLE1_ORDER,
    BusTrace,
    benchmark_trace_source,
    generate_suite,
    resolve_workload,
    save_trace_hex,
    save_trace_npz,
)
from repro.trace.workloads import WorkloadError


def _workload_error(error: Exception) -> int:
    """Print a workload-spec failure as a clean CLI error (no traceback)."""
    message = error.args[0] if error.args else str(error)
    print(f"error: {message}", file=sys.stderr)
    return 2


def _parallel_jobs_error(engine: str | None, jobs: int | None) -> int | None:
    """Reject ``--engine parallel`` without a worker fan-out to use.

    The library accepts ``engine="parallel"`` with no jobs (it reduces the
    chunks inline, still two-pass); on the command line that combination is
    almost always a mistyped request for actual parallelism, so it fails
    loudly instead of silently running serially.
    """
    if engine == ENGINE_PARALLEL and (jobs is None or jobs <= 1):
        print(
            "error: --engine parallel needs --jobs N with N >= 2 "
            "(one worker cannot fan the statistics pass out; drop --engine "
            "parallel to run serially -- the results are bit-identical)",
            file=sys.stderr,
        )
        return 2
    return None


def _add_corner_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--corner",
        choices=sorted(CORNERS),
        default="typical",
        help="PVT corner (worst / typical / best, or corner1..corner5 of Fig. 5)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for the tests and for docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'DVS for On-Chip Bus Designs Based on Timing Error "
            "Correction' (Kaul et al., DATE 2005)."
        ),
    )
    # The runtime flags are accepted both before and after the subcommand
    # (``repro --jobs 4 sweep ...`` and ``repro sweep ... --jobs 4``).  The
    # sub-parser copies default to SUPPRESS so an unused post-command flag
    # never clobbers a value the top-level parser already set.
    def add_runtime_flags(target: argparse.ArgumentParser, top_level: bool) -> None:
        target.add_argument(
            "--jobs",
            type=int,
            metavar="N",
            default=1 if top_level else argparse.SUPPRESS,
            help="worker processes (sweep/report cache misses, or the parallel "
            "statistics pass of run/simulate/profile; results are identical to serial)",
        )
        target.add_argument(
            "--cache-dir",
            type=Path,
            metavar="PATH",
            default=None if top_level else argparse.SUPPRESS,
            help="result-cache root (default: $REPRO_CACHE_DIR or ./.repro-cache)",
        )
        target.add_argument(
            "--no-cache",
            action="store_true",
            default=False if top_level else argparse.SUPPRESS,
            help="bypass the result cache entirely (always simulate)",
        )
        add_telemetry_flag(target, top_level)
        add_chardb_flag(target, top_level)

    def add_chardb_flag(target: argparse.ArgumentParser, top_level: bool) -> None:
        target.add_argument(
            "--chardb",
            metavar="PATH",
            default=None if top_level else argparse.SUPPRESS,
            help="characterization database (.chardb file) to resolve "
            "delay/error/energy surfaces from instead of the circuit models; "
            "results are bit-identical (build one with 'repro chardb build')",
        )

    def add_telemetry_flag(target: argparse.ArgumentParser, top_level: bool) -> None:
        target.add_argument(
            "--telemetry",
            nargs="?",
            const="",
            metavar="PATH",
            default=None if top_level else argparse.SUPPRESS,
            help="trace the command: write PATH.jsonl + PATH.trace.json "
            f"(default base: {DEFAULT_TELEMETRY_BASE!r}) and print a span/counter "
            "summary; 'cache stats' reads PATH.jsonl instead",
        )

    # Workload-scale flags: accepted globally and on the commands that
    # consume them, so any registered experiment or sweep can be scaled
    # without code edits (``repro run table1 --cycles 500000`` or
    # ``repro --cycles 500000 sweep controller-grid``).
    def add_workload_flags(target: argparse.ArgumentParser, top_level: bool) -> None:
        target.add_argument(
            "--cycles",
            type=int,
            metavar="N",
            default=None if top_level else argparse.SUPPRESS,
            help="cycles per benchmark (experiments default to the paper's 10M "
            "for table1/fig8, streamed in O(chunk) memory)",
        )
        target.add_argument(
            "--chunk-cycles",
            type=int,
            metavar="M",
            default=None if top_level else argparse.SUPPRESS,
            help="streaming chunk size (results are bit-identical for any value)",
        )
        target.add_argument(
            "--engine",
            choices=ENGINES,
            default=None if top_level else argparse.SUPPRESS,
            help="simulation kernel engine (results are bit-identical; "
            f"default: {DEFAULT_ENGINE})",
        )

    add_runtime_flags(parser, top_level=True)
    add_workload_flags(parser, top_level=True)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the paper's experiments and their ids")

    run_parser = subparsers.add_parser("run", help="run one experiment by id")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run_parser.add_argument("--seed", type=int, default=2005, help="workload seed")
    run_parser.add_argument(
        "--workload",
        default=None,
        metavar="SPEC",
        help="registry workload spec(s), comma-separated rows ('+' concatenates "
        "within a row; experiments that take workloads only -- see "
        "'repro trace --list')",
    )
    add_workload_flags(run_parser, top_level=False)
    add_runtime_flags(run_parser, top_level=False)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a declarative parameter grid through the runtime engine"
    )
    sweep_parser.add_argument(
        "name",
        nargs="?",
        choices=sorted(SWEEPS),
        help="sweep id (omit with --list to enumerate)",
    )
    sweep_parser.add_argument(
        "--list", action="store_true", dest="list_sweeps", help="list the named sweeps"
    )
    sweep_parser.add_argument(
        "--limit", type=int, default=None, metavar="K", help="run only the first K grid points"
    )
    sweep_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="also write manifest.json + results.jsonl under DIR/<sweep>/",
    )
    sweep_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines on stderr"
    )
    add_workload_flags(sweep_parser, top_level=False)
    add_runtime_flags(sweep_parser, top_level=False)

    report_parser = subparsers.add_parser(
        "report",
        help="render experiments into a Markdown/JSON/SVG artifact directory "
        "with a fidelity summary vs the paper",
    )
    report_parser.add_argument(
        "--experiments",
        default="all",
        metavar="IDS",
        help="comma-separated experiment ids, or 'all' (default). Note: 'all' at "
        "the paper's default scale simulates for ~15-20 min single-core "
        "(cached afterwards); scale with --cycles for a quick look.",
    )
    report_parser.add_argument(
        "--out",
        type=Path,
        default=Path("report"),
        metavar="DIR",
        help="directory the report is written into (default: ./report)",
    )
    report_parser.add_argument("--seed", type=int, default=2005, help="workload seed")
    report_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines on stderr"
    )
    add_workload_flags(report_parser, top_level=False)
    add_runtime_flags(report_parser, top_level=False)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the content-addressed result cache"
    )
    cache_parser.add_argument(
        "action",
        choices=("info", "list", "clear", "stats"),
        help="what to do with the cache ('stats' adds the hit/miss counters "
        "of the last telemetry log)",
    )
    add_runtime_flags(cache_parser, top_level=False)

    profile_parser = subparsers.add_parser(
        "profile",
        help="run one bounded experiment under the span tracer and print the "
        "top spans and counter deltas (always writes a Chrome trace file)",
    )
    profile_parser.add_argument(
        "experiment", choices=sorted(EXPERIMENTS), help="experiment id to profile"
    )
    profile_parser.add_argument(
        "--top", type=int, default=15, metavar="N", help="span paths to print (default 15)"
    )
    profile_parser.add_argument("--seed", type=int, default=2005, help="workload seed")
    profile_parser.add_argument(
        "--workload",
        default=None,
        metavar="SPEC",
        help="registry workload spec(s) for experiments that take them",
    )
    # Bounded by default: profiling wants a quick, representative run, not
    # the paper's 10M cycles (override with --cycles for a longer look).
    profile_parser.add_argument(
        "--cycles",
        type=int,
        default=argparse.SUPPRESS,
        metavar="N",
        help="cycles per benchmark (default 50000 -- bounded, unlike 'run')",
    )
    profile_parser.add_argument(
        "--chunk-cycles", type=int, default=argparse.SUPPRESS, help="streaming chunk size"
    )
    profile_parser.add_argument(
        "--engine", choices=ENGINES, default=argparse.SUPPRESS, help="kernel engine"
    )
    profile_parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=argparse.SUPPRESS,
        help="worker processes for the parallel statistics pass",
    )
    add_telemetry_flag(profile_parser, top_level=False)
    add_chardb_flag(profile_parser, top_level=False)

    characterize_parser = subparsers.add_parser(
        "characterize", help="delay and error behaviour of the bus over the voltage grid"
    )
    _add_corner_argument(characterize_parser)
    add_chardb_flag(characterize_parser, top_level=False)

    simulate_parser = subparsers.add_parser(
        "simulate", help="one closed-loop DVS run on a single workload"
    )
    simulate_parser.add_argument(
        "--benchmark", choices=TABLE1_ORDER, default="crafty", help="benchmark profile"
    )
    simulate_parser.add_argument(
        "--workload",
        default=None,
        metavar="SPEC",
        help="registry workload spec (overrides --benchmark; see 'repro trace --list')",
    )
    _add_corner_argument(simulate_parser)
    # SUPPRESS keeps the global --cycles / --chunk-cycles usable before the
    # subcommand: a subparser default would overwrite the already-parsed
    # top-level value.  The handler applies the 200k fallback.
    simulate_parser.add_argument(
        "--cycles", type=int, default=argparse.SUPPRESS, help="cycles to simulate (default 200000)"
    )
    simulate_parser.add_argument(
        "--chunk-cycles", type=int, default=argparse.SUPPRESS, help="streaming chunk size"
    )
    simulate_parser.add_argument(
        "--engine", choices=ENGINES, default=argparse.SUPPRESS, help="kernel engine"
    )
    simulate_parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=argparse.SUPPRESS,
        help="worker processes for the parallel statistics pass",
    )
    simulate_parser.add_argument("--seed", type=int, default=2005)
    simulate_parser.add_argument("--window", type=int, default=10_000, help="error window (cycles)")
    simulate_parser.add_argument("--ramp", type=int, default=3_000, help="regulator ramp (cycles)")
    add_telemetry_flag(simulate_parser, top_level=False)
    add_chardb_flag(simulate_parser, top_level=False)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the persistent job server (submit with 'repro submit', "
        "inspect with 'repro jobs')",
    )
    serve_parser.add_argument(
        "--host", default=None, metavar="HOST", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="bind port (default: $REPRO_SERVER_ADDR or 7325; 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="queued-job backpressure bound; further submissions are rejected (default 64)",
    )
    serve_parser.add_argument(
        "--quota",
        type=int,
        default=8,
        metavar="N",
        help="active jobs per client before submissions are rejected (0 = unlimited; default 8)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=8,
        metavar="N",
        help="largest batch of shape-compatible jobs per worker dispatch (1 disables; default 8)",
    )
    add_runtime_flags(serve_parser, top_level=False)

    submit_parser = subparsers.add_parser(
        "submit",
        help="submit one experiment to a running 'repro serve' and stream the result",
    )
    submit_parser.add_argument(
        "experiment", choices=sorted(EXPERIMENTS), help="experiment id to submit"
    )
    submit_parser.add_argument("--seed", type=int, default=2005, help="workload seed")
    submit_parser.add_argument(
        "--workload",
        default=None,
        metavar="SPEC",
        help="registry workload spec(s) for experiments that take them",
    )
    submit_parser.add_argument(
        "--host", default=None, metavar="HOST", help="server address (default 127.0.0.1)"
    )
    submit_parser.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="server port (default: $REPRO_SERVER_ADDR or 7325)",
    )
    submit_parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines on stderr"
    )
    add_workload_flags(submit_parser, top_level=False)
    add_chardb_flag(submit_parser, top_level=False)

    jobs_parser = subparsers.add_parser(
        "jobs", help="inspect or control a running 'repro serve' (list/stats/cancel/shutdown)"
    )
    jobs_parser.add_argument(
        "--host", default=None, metavar="HOST", help="server address (default 127.0.0.1)"
    )
    jobs_parser.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="server port (default: $REPRO_SERVER_ADDR or 7325)",
    )
    jobs_parser.add_argument(
        "--stats", action="store_true", help="print queue statistics instead of the job list"
    )
    jobs_parser.add_argument(
        "--cancel", metavar="JOB", default=None, help="cancel one job by id (e.g. job-3)"
    )
    jobs_parser.add_argument(
        "--shutdown", action="store_true", help="stop the server (drains queued jobs first)"
    )

    compare_parser = subparsers.add_parser(
        "compare-schemes", help="fixed VS vs canary vs triple-latch vs proposed DVS"
    )
    _add_corner_argument(compare_parser)
    compare_parser.add_argument(
        "--cycles",
        type=int,
        default=argparse.SUPPRESS,
        help="cycles per benchmark (default 30000)",
    )
    compare_parser.add_argument("--seed", type=int, default=2005)
    add_chardb_flag(compare_parser, top_level=False)

    chardb_parser = subparsers.add_parser(
        "chardb",
        help="build, inspect or verify the characterization database "
        "(docs/chardb_format.md specifies the file format)",
    )
    chardb_parser.add_argument(
        "action",
        choices=("build", "inspect", "verify"),
        help="build: characterise the standard grid and write the artifact; "
        "inspect: print the header/index summary; verify: recheck the "
        "content hash and every entry's extents",
    )
    chardb_parser.add_argument(
        "path",
        nargs="?",
        default=None,
        metavar="PATH",
        help="database file (default: chardb/paper.chardb)",
    )
    chardb_parser.add_argument(
        "--check",
        action="store_true",
        help="with 'build': rebuild in memory and fail if PATH differs "
        "byte-for-byte (the CI drift gate); nothing is written",
    )

    subparsers.add_parser("kernels", help="list the mini-CPU kernels usable as workloads")

    analyze_parser = subparsers.add_parser(
        "analyze",
        help="run the invariant-aware static analyzer (determinism, cache-key "
        "soundness, lock discipline)",
    )
    from repro.analyze import cli as analyze_cli

    analyze_cli.add_arguments(analyze_parser)

    trace_parser = subparsers.add_parser(
        "trace", help="generate, inspect or save any registered workload trace"
    )
    trace_parser.add_argument(
        "--workload",
        default=None,
        metavar="SPEC",
        help="workload spec (synthetic profile, cpu:<kernel>, file:<path>, "
        "simpoint:/suite:/encoded: wrappers; see --list)",
    )
    trace_parser.add_argument(
        "--list", action="store_true", dest="list_workloads", help="list the registered workloads"
    )
    trace_parser.add_argument(
        "--cycles",
        type=int,
        default=argparse.SUPPRESS,
        help="trace length for generative workloads (default 20000)",
    )
    trace_parser.add_argument(
        "--chunk-cycles", type=int, default=argparse.SUPPRESS, help="streaming chunk size"
    )
    trace_parser.add_argument("--seed", type=int, default=2005, help="workload seed")
    trace_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="save the trace (.npz packed archive or .hex text, by extension)",
    )
    return parser


# --------------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------------- #
def _command_list() -> int:
    width = max(len(identifier) for identifier in EXPERIMENTS)
    print("Experiments (regenerate with 'python -m repro run <id>'):")
    for identifier in sorted(EXPERIMENTS):
        experiment = EXPERIMENTS[identifier]
        print(f"  {identifier:<{width}}  {experiment.paper_artifact:<10} {experiment.description}")
    return 0


def _command_run(experiment: str, cycles: int | None, chunk_cycles: int | None,
                 engine: str | None, seed: int, cache: ResultCache | None,
                 workload: str | None = None, jobs: int | None = None,
                 chardb: str | None = None) -> int:
    runner = EXPERIMENTS[experiment].runner
    requested = {
        "n_cycles": cycles,
        "chunk_cycles": chunk_cycles,
        "engine": engine,
        # --jobs defaults to 1 at the top level; only an explicit fan-out
        # request is worth forwarding (and warning about when unsupported).
        "jobs": jobs if jobs is not None and jobs > 1 else None,
        "workload": workload,
    }
    kwargs = accepted_kwargs(runner, {"seed": seed, **requested})
    flags = {
        "n_cycles": "--cycles",
        "chunk_cycles": "--chunk-cycles",
        "engine": "--engine",
        "jobs": "--jobs",
        "workload": "--workload",
    }
    for name, value in requested.items():
        if value is not None and name not in kwargs:
            print(
                f"[runtime] {experiment} does not take {flags[name]}; ignoring it",
                file=sys.stderr,
            )
    started = time.perf_counter()
    try:
        # ``chardb`` bypasses accepted_kwargs: run_experiment handles it for
        # every runner (activation around the run, cache-key folding).
        record, text = run_experiment(experiment, cache=cache, chardb=chardb, **kwargs)
    except WorkloadError as error:
        # Bad --workload specs only (unknown names, mixed bus widths);
        # anything else propagates as the genuine failure it is.
        return _workload_error(error)
    elapsed = time.perf_counter() - started
    print(text)
    if cache is not None:
        hit = isinstance(record, dict) and record.get("cached", False)
        source = "cache hit" if hit else "simulated"
        print(f"[runtime] {experiment}: {source} in {elapsed:.2f} s", file=sys.stderr)
    return 0


def _command_sweep(
    name: str | None,
    list_sweeps: bool,
    limit: int | None,
    out: Path | None,
    quiet: bool,
    cache: ResultCache | None,
    jobs: int,
    cycles: int | None = None,
    chunk_cycles: int | None = None,
    engine: str | None = None,
    chardb: str | None = None,
) -> int:
    if list_sweeps or name is None:
        width = max(len(sweep_name) for sweep_name in SWEEPS)
        print("Named sweeps (run with 'python -m repro sweep <name>'):")
        for sweep_name in sorted(SWEEPS):
            sweep = SWEEPS[sweep_name]
            print(f"  {sweep_name:<{width}}  [{sweep.n_points:>3} pts]  {sweep.description}")
        if name is None and not list_sweeps:
            print("\n(no sweep name given; use 'sweep <name>' to execute one)")
        return 0

    sweep = get_sweep(name)
    specs = sweep.expand(limit=limit)
    if cycles is not None or chunk_cycles is not None or engine is not None:
        # Scale every grid point that understands the workload knobs; the
        # overridden params flow into the cache key, so scaled runs never
        # alias unscaled ones.
        overridden = []
        for spec in specs:
            overrides = accepted_kwargs(
                get_task(spec.task),
                {"n_cycles": cycles, "chunk_cycles": chunk_cycles, "engine": engine},
            )
            overridden.append(spec.with_params(**overrides) if overrides else spec)
        specs = tuple(overridden)
    if chardb is not None:
        # Every registered task accepts a ``chardb`` param; carrying it in
        # the spec folds the file's content hash into each cache key.
        specs = tuple(spec.with_params(chardb=str(chardb)) for spec in specs)
    progress = ProgressPrinter(quiet=quiet)
    report = run_jobs(specs, cache=cache, n_workers=jobs, progress=progress)
    print(format_sweep_report(sweep, report))
    print(f"[runtime] {report.summary()}", file=sys.stderr)
    if out is not None:
        run_dir = ResultStore(out).write_report(sweep.name, report, sweep=sweep)
        print(f"[runtime] results written to {run_dir}", file=sys.stderr)
    return 0


def _command_report(
    experiments: str,
    out: Path,
    cycles: int | None,
    chunk_cycles: int | None,
    engine: str | None,
    seed: int,
    quiet: bool,
    cache: ResultCache | None,
    jobs: int,
) -> int:
    from repro.report import build_report, resolve_experiments

    try:
        identifiers = resolve_experiments(experiments)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    progress = ProgressPrinter(quiet=quiet)
    started = time.perf_counter()
    build = build_report(
        identifiers,
        out,
        cache=cache,
        jobs=jobs,
        n_cycles=cycles,
        chunk_cycles=chunk_cycles,
        engine=engine,
        seed=seed,
        progress=progress,
    )
    elapsed = time.perf_counter() - started
    print(build.fidelity.to_markdown())
    print(
        f"[runtime] report: {len(identifiers)} experiment(s), "
        f"{build.n_cached} cache hit(s), {build.n_executed} simulated in {elapsed:.2f} s",
        file=sys.stderr,
    )
    print(f"report written to {build.index_path}")
    return 0


def _command_profile(
    experiment: str,
    cycles: int | None,
    chunk_cycles: int | None,
    engine: str | None,
    seed: int,
    top: int,
    workload: str | None = None,
    jobs: int | None = None,
) -> int:
    """Run one bounded experiment under the (already installed) tracer.

    ``main`` installs the telemetry collector and writes the JSONL/Chrome
    exports after this returns; this handler's job is the bounded run itself
    plus the on-stdout span/counter summary (including the parallel-engine
    scaling block whenever the run engaged the two-pass reduction).
    """
    runner = EXPERIMENTS[experiment].runner
    telemetry = get_telemetry()
    baseline = telemetry.metrics.snapshot()
    kwargs = accepted_kwargs(
        runner,
        {
            "seed": seed,
            "n_cycles": cycles if cycles is not None else 50_000,
            "chunk_cycles": chunk_cycles,
            "engine": engine,
            "jobs": jobs if jobs is not None and jobs > 1 else None,
            "workload": workload,
        },
    )
    started = time.perf_counter()
    try:
        with telemetry.span(f"profile:{experiment}"):
            run_experiment(experiment, cache=None, **kwargs)
    except WorkloadError as error:
        return _workload_error(error)
    elapsed = time.perf_counter() - started
    print(f"profiled {experiment!r} in {elapsed:.2f} s "
          f"({kwargs.get('n_cycles', 'default')} cycles per benchmark)")
    print()
    print(format_summary(telemetry, top_n=top,
                         counter_deltas=telemetry.metrics.delta_since(baseline)))
    parallel_block = format_parallel_summary(telemetry)
    if parallel_block is not None:
        print()
        print(parallel_block)
    return 0


def _command_cache(
    action: str, cache_dir: Path | None, telemetry_base: str | None = None
) -> int:
    cache = ResultCache(cache_dir if cache_dir is not None else default_cache_dir())
    if action == "info":
        print(cache.stats().format())
        return 0
    if action == "stats":
        stats = cache.stats()
        print(stats.format())
        base = telemetry_base if telemetry_base else DEFAULT_TELEMETRY_BASE
        log_path = telemetry_paths(base).jsonl
        metrics = read_jsonl_metrics(log_path)
        if metrics is None:
            print(f"no telemetry log at {log_path} "
                  "(run a command with --telemetry to record one)")
            return 0
        print(f"counters from the last telemetry log ({log_path}):")
        names = ("cache.hits", "cache.misses", "cache.puts", "cache.bytes_written",
                 "cache.artifact_hits", "cache.artifact_builds")
        counters = metrics["counters"]
        rows = [(name, counters.get(name, 0)) for name in names]
        width = max(len(name) for name, _ in rows)
        for name, value in rows:
            print(f"  {name:<{width}}  {format_quantity(value)}")
        lookups = counters.get("cache.hits", 0) + counters.get("cache.misses", 0)
        if lookups:
            print(f"  {'hit rate':<{width}}  "
                  f"{100.0 * counters.get('cache.hits', 0) / lookups:.1f}%")
        return 0
    if action == "list":
        count = 0
        for key in cache.keys():
            record = cache.get(key) or {}
            print(f"  {key[:16]}  {record.get('task', '?'):<12} "
                  f"{record.get('duration_s', 0.0):6.2f} s")
            count += 1
        print(f"{count} cached record(s) under {cache.root}")
        return 0
    removed = cache.clear()
    print(f"removed {removed} cached file(s) from {cache.root}")
    return 0


def _print_chardb_summary(summary: dict) -> None:
    print(f"Characterization database {summary['path']}")
    print(f"  schema version : {summary['schema']}")
    print(f"  size           : {summary['bytes']} bytes")
    print(f"  content hash   : {summary['content_hash']}")
    print(f"  entries        : {summary['entries']} "
          f"({summary['designs']} distinct designs)")
    print(f"  bus widths     : {', '.join(str(width) for width in summary['widths'])} bits")
    print("  coupling scale : "
          + ", ".join(f"{scale:g}" for scale in summary["coupling_scales"]))
    print(f"  corners        : {len(summary['corners'])}")
    for corner in summary["corners"]:
        print(f"    {corner['process']:<8} {corner['temperature_c']:>5.0f} C  "
              f"{corner['ir_drop'] * 100:>4.0f}% IR drop")


def _command_chardb(action: str, path: str | None, check: bool) -> int:
    from repro.chardb import (
        DEFAULT_DB_PATH,
        CharacterizationDatabase,
        ChardbError,
        build_database_bytes,
        default_build_spec,
    )

    target = Path(path) if path is not None else Path(DEFAULT_DB_PATH)
    if action == "build":
        started = time.perf_counter()
        payload = build_database_bytes(default_build_spec())
        elapsed = time.perf_counter() - started
        if check:
            on_disk = target.read_bytes() if target.exists() else None
            if on_disk != payload:
                detail = (
                    "file is missing"
                    if on_disk is None
                    else f"{len(on_disk)} bytes on disk != {len(payload)} rebuilt"
                )
                print(
                    f"error: {target} is stale ({detail}); regenerate it with "
                    "'python -m repro chardb build'",
                    file=sys.stderr,
                )
                return 1
            print(f"{target} is up to date ({len(payload)} bytes, rebuilt in {elapsed:.2f} s)")
            return 0
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(payload)
        print(f"wrote {target} in {elapsed:.2f} s")
        with CharacterizationDatabase.open(target) as database:
            _print_chardb_summary(database.summary())
        return 0
    try:
        database = CharacterizationDatabase.open(target)
    except (OSError, ChardbError) as error:
        print(f"error: cannot open {target}: {error}", file=sys.stderr)
        return 2
    with database:
        if action == "verify":
            try:
                database.verify()
            except ChardbError as error:
                print(f"error: {error}", file=sys.stderr)
                return 1
            print(f"{target} OK: {len(database)} entries, "
                  f"content hash {database.fingerprint[:16]}... verified")
            return 0
        _print_chardb_summary(database.summary())
    return 0


@contextmanager
def _chardb_env(path: str | None) -> Iterator[None]:
    """Export ``--chardb`` as ``$REPRO_CHARDB`` for the command's duration.

    The environment variable (rather than an in-process override) is what
    lets executor / work-queue / server worker processes inherit the
    database.  The previous value is restored on exit so in-process callers
    of :func:`main` (the tests) see no lasting state change.
    """
    if path is None:
        yield
        return
    from repro.chardb.active import ENV_VAR

    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = str(path)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous


def _command_characterize(corner_name: str) -> int:
    corner = CORNERS[corner_name]
    bus = CharacterizedBus(BusDesign.paper_bus(), corner)
    clocking = bus.design.clocking
    print(f"Paper bus characterised at: {corner.label}")
    print(
        f"  clock {clocking.frequency / 1e9:.2f} GHz, main deadline "
        f"{clocking.main_deadline * 1e12:.0f} ps, shadow deadline "
        f"{clocking.shadow_deadline * 1e12:.0f} ps"
    )
    print(
        f"  zero-error supply: {bus.zero_error_voltage() * 1000:.0f} mV, "
        f"regulator floor (shadow latch, worst temp/IR for this process): "
        f"{bus.minimum_safe_voltage(PVTCorner(corner.process, 100.0, 0.10)) * 1000:.0f} mV"
    )
    print()
    print(f"  {'Vdd (mV)':>9} {'worst delay (ps)':>17} {'meets main?':>12} {'meets shadow?':>14}")
    max_lambda = bus.design.topology.max_coupling_factor
    for vdd in reversed(bus.grid.voltages.tolist()):
        delay = bus.table.worst_delay(vdd, max_lambda)
        print(
            f"  {vdd * 1000:>9.0f} {delay * 1e12:>17.1f} "
            f"{'yes' if delay <= clocking.main_deadline else 'no':>12} "
            f"{'yes' if delay <= clocking.shadow_deadline else 'no':>14}"
        )
    return 0


def _command_simulate(
    benchmark: str,
    corner_name: str,
    cycles: int,
    seed: int,
    window: int,
    ramp: int,
    chunk_cycles: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
    workload: str | None = None,
) -> int:
    corner = CORNERS[corner_name]
    if workload is not None:
        # Any registry spec; file-backed workloads keep their recorded
        # length, generative ones honour --cycles.
        try:
            source = resolve_workload(workload, n_cycles=cycles, seed=seed)
        except (KeyError, ValueError) as error:
            return _workload_error(error)
        label = workload
    else:
        source = benchmark_trace_source(benchmark, n_cycles=cycles, seed=seed)
        label = benchmark
    # Encoded workloads drive more wires than the paper bus; redesign for the
    # source's width exactly like the dvs_run sweep task does.
    from repro.encoding.analysis import design_for_width

    bus = CharacterizedBus(design_for_width(BusDesign.paper_bus(), source.n_bits), corner)
    system = DVSBusSystem(bus, window_cycles=window, ramp_delay_cycles=ramp)
    progress = auto_chunk_progress(source.n_cycles, label=f"simulate {label}")
    result = system.run(
        source,
        chunk_cycles=chunk_cycles,
        progress=progress,
        engine=engine,
        jobs=jobs if jobs is not None and jobs > 1 else None,
    )

    print(f"Closed-loop DVS: workload {label!r}, corner {corner.label}")
    print(f"  cycles simulated      : {result.n_cycles}")
    print(f"  corrected errors      : {result.total_errors} "
          f"({result.average_error_rate * 100:.2f}% of cycles)")
    print(f"  energy gain vs nominal: {result.energy_gain_percent:.1f}%")
    print(f"  minimum supply reached: {result.minimum_voltage_reached * 1000:.0f} mV "
          f"(final {result.final_voltage * 1000:.0f} mV)")
    print()
    if len(result.window_voltages) >= 2:
        windows = range(len(result.window_voltages))
        print(
            line_chart(
                [
                    Series(
                        "supply (mV)",
                        list(windows),
                        (result.window_voltages * 1000).tolist(),
                    )
                ],
                title="supply voltage per control window",
                x_label="window",
                y_label="mV",
                height=12,
            )
        )
    return 0


def _server_address(host: str | None, port: int | None) -> tuple:
    """Resolve --host/--port against $REPRO_SERVER_ADDR and the defaults."""
    from repro.server import default_address

    default_host, default_port = default_address()
    return (host if host is not None else default_host,
            port if port is not None else default_port)


def _server_unreachable(host: str, port: int, error: Exception) -> int:
    print(
        f"error: cannot reach a repro server at {host}:{port} ({error}); "
        "start one with 'python -m repro serve'",
        file=sys.stderr,
    )
    return 2


def _command_serve(
    host: str | None,
    port: int | None,
    jobs: int,
    max_pending: int,
    quota: int,
    max_batch: int,
    cache: ResultCache | None,
) -> int:
    from repro.runtime.workqueue import WorkQueue
    from repro.server import DEFAULT_HOST, ReproServer, default_address

    if port is None:
        port = default_address()[1]
    queue = WorkQueue(
        n_workers=max(1, jobs),
        cache=cache,
        max_pending=max_pending,
        quota=quota if quota > 0 else None,
        max_batch=max_batch,
    )
    server = ReproServer(queue, host=host if host is not None else DEFAULT_HOST, port=port)
    bound_host, bound_port = server.address
    mode = "process" if queue.workers_are_processes else "inline"
    print(
        f"[server] job server on {bound_host}:{bound_port} -- {queue.n_workers} {mode} "
        f"worker(s), cache {cache.root if cache is not None else 'disabled'}, "
        f"quota {quota if quota > 0 else 'unlimited'}, max pending {max_pending}",
        file=sys.stderr,
    )
    print(
        "[server] submit with 'python -m repro submit <experiment>'; "
        "stop with 'python -m repro jobs --shutdown' or Ctrl-C",
        file=sys.stderr,
    )
    server.serve_forever()
    print("[server] stopped", file=sys.stderr)
    return 0


def _command_submit(
    experiment: str,
    cycles: int | None,
    chunk_cycles: int | None,
    engine: str | None,
    seed: int,
    workload: str | None,
    host: str | None,
    port: int | None,
    quiet: bool,
    chardb: str | None = None,
) -> int:
    from repro.server import ReproClient, ServerError

    runner = EXPERIMENTS[experiment].runner
    kwargs = accepted_kwargs(
        runner,
        {
            "seed": seed,
            "n_cycles": cycles,
            "chunk_cycles": chunk_cycles,
            "engine": engine,
            "workload": workload,
        },
    )
    # The exact JobSpec a local cached run would use, so the server dedupes
    # and caches under the same content-addressed key.  The chardb path is
    # resolved to an absolute one because the server process opens it from
    # its own working directory.
    if chardb is not None:
        kwargs["chardb"] = os.path.abspath(chardb)
    spec = EXPERIMENTS[experiment].job(**kwargs)
    host, port = _server_address(host, port)
    started = time.perf_counter()
    try:
        client = ReproClient(host=host, port=port)
    except OSError as error:
        return _server_unreachable(host, port, error)
    terminal = None
    with client:
        try:
            stream = client.submit(spec.task, dict(spec.params))
            accepted = next(stream)
            if not quiet:
                note = (
                    "cache hit"
                    if accepted.get("cached")
                    else (
                        "attached to in-flight duplicate"
                        if accepted.get("deduped")
                        else "queued"
                    )
                )
                print(
                    f"[server] {accepted['job']} {note} (key {accepted['key'][:16]}...)",
                    file=sys.stderr,
                )
            for event in stream:
                terminal = event
                if event.get("event") == "progress" and not quiet:
                    cycle = event.get("start_cycle")
                    where = f" @ cycle {cycle}" if cycle is not None else ""
                    print(f"[server] {accepted['job']} running{where}", file=sys.stderr)
        except ServerError as error:
            print(f"error: server rejected the submission ({error.code}): {error}",
                  file=sys.stderr)
            return 2
        except (ConnectionError, OSError) as error:
            return _server_unreachable(host, port, error)
    elapsed = time.perf_counter() - started
    if terminal is None or terminal.get("event") != "result":
        kind = (terminal or {}).get("event", "no response")
        detail = (terminal or {}).get("error")
        suffix = f": {detail['type']}: {detail['message']}" if isinstance(detail, dict) else ""
        print(f"error: job ended with {kind}{suffix}", file=sys.stderr)
        return 1
    result = terminal.get("result")
    if isinstance(result, dict) and isinstance(result.get("text"), str):
        print(result["text"])
    else:
        import json

        print(json.dumps(result, indent=2, sort_keys=True))
    source = (
        "cache hit"
        if accepted.get("cached") or terminal.get("cached")
        else ("deduped" if accepted.get("deduped") else "simulated")
    )
    print(f"[server] {experiment}: {source} in {elapsed:.2f} s", file=sys.stderr)
    return 0


def _command_jobs(
    host: str | None,
    port: int | None,
    stats: bool,
    cancel: str | None,
    shutdown: bool,
) -> int:
    from repro.server import ReproClient, ServerError

    host, port = _server_address(host, port)
    try:
        client = ReproClient(host=host, port=port)
    except OSError as error:
        return _server_unreachable(host, port, error)
    with client:
        try:
            if cancel is not None:
                cancelled = client.cancel(cancel)
                print(f"{cancel}: {'cancelled' if cancelled else 'already finished'}")
                return 0
            if shutdown:
                client.shutdown(drain=True)
                print("server shutting down (draining queued jobs)")
                return 0
            if stats:
                rows = sorted(client.stats().items())
                width = max(len(name) for name, _ in rows)
                print("queue statistics:")
                for name, value in rows:
                    print(f"  {name:<{width}}  {value}")
                return 0
            listed = client.jobs()
            if not listed:
                print("no jobs submitted yet")
                return 0
            for row in listed:
                print(
                    f"  {row['job']:<8} {row['state']:<10} {row['task']:<12} "
                    f"clients {row['clients']}  key {row['key'][:16]}..."
                )
            print(f"{len(listed)} job(s)")
            return 0
        except ServerError as error:
            print(f"error: {error.code}: {error}", file=sys.stderr)
            return 2
        except (ConnectionError, OSError) as error:
            return _server_unreachable(host, port, error)


def _command_compare_schemes(corner_name: str, cycles: int, seed: int) -> int:
    corner = CORNERS[corner_name]
    design = BusDesign.paper_bus()
    suite = generate_suite(names=("crafty", "vortex", "mgrid"), n_cycles=cycles, seed=seed)
    comparison = run_scheme_comparison(
        design,
        list(suite.values()),
        corner,
        window_cycles=max(1_000, cycles // 20),
        ramp_delay_cycles=max(300, cycles // 60),
        workload_name="crafty+vortex+mgrid",
    )
    print(format_scheme_comparison(comparison))
    return 0


def _command_trace(
    workload: str | None,
    list_workloads: bool,
    cycles: int | None,
    seed: int,
    out: Path | None,
    chunk_cycles: int | None = None,
) -> int:
    from repro.trace.workloads import WORKLOADS

    if list_workloads or workload is None:
        rows = WORKLOADS.describe()
        width = max(len(spec) for spec, _ in rows)
        print("Registered workloads (use with --workload on trace/simulate/run):")
        for spec, description in rows:
            print(f"  {spec:<{width}}  {description}")
        if workload is None and not list_workloads:
            print("\n(no workload given; use 'trace --workload <spec>' to generate one)")
        return 0

    from repro.trace import pack_values

    if out is not None:
        if out.suffix not in (".npz", ".hex"):
            # savez_compressed would silently append ".npz" to any other
            # suffix, writing to a different path than the one we report.
            return _workload_error(
                ValueError(f"--out must end in .npz or .hex, got {out.name!r}")
            )
        try:
            out.parent.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            # Fail before executing the workload, not after.
            return _workload_error(ValueError(f"cannot create {out.parent}: {error}"))
    try:
        source = resolve_workload(
            workload, n_cycles=cycles if cycles is not None else 20_000, seed=seed
        )
    except (KeyError, ValueError) as error:
        return _workload_error(error)
    # One streamed pass computes the inspection statistics and (when saving)
    # collects the words, so generative workloads execute exactly once.  The
    # collection is kept bit-packed: only one chunk is ever unpacked, so the
    # pipeline's O(chunk) unpacked-memory property survives paper-scale saves.
    total_toggles = 0
    busiest_cycle = 0
    collected = [] if out is not None else None
    for chunk in source.chunks(chunk_cycles):
        transitions = chunk.values[1:] != chunk.values[:-1]
        total_toggles += int(transitions.sum())
        if transitions.size:
            busiest_cycle = max(busiest_cycle, int(transitions.sum(axis=1).max()))
        if collected is not None:
            collected.append(pack_values(chunk.values if chunk.is_first else chunk.values[1:]))

    print(f"Workload {workload!r} -> trace {source.name!r}")
    print(f"  cycles (transitions) : {source.n_cycles}")
    print(f"  bus width            : {source.n_bits} bits")
    print(
        f"  toggle density       : {total_toggles / (source.n_cycles * source.n_bits):.4f} "
        "(toggles per wire per cycle)"
    )
    print(f"  busiest cycle        : {busiest_cycle} of {source.n_bits} wires toggling")
    if out is not None and collected is not None:
        trace = BusTrace(
            packed=np.concatenate(collected, axis=0), n_bits=source.n_bits, name=source.name
        )
        if out.suffix == ".hex":
            save_trace_hex(trace, out)
        else:
            save_trace_npz(trace, out)
        print(f"  saved to             : {out}")
    return 0


def _command_kernels() -> int:
    width = max(len(name) for name in KERNELS)
    print("Mini-CPU kernels (see repro.cpu.kernel_bus_trace):")
    for name in sorted(KERNELS):
        kernel = KERNELS[name]
        print(f"  {name:<{width}}  [{kernel.data_flavor:<8}] {kernel.description}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    chardb = getattr(args, "chardb", None)
    with _chardb_env(chardb):
        if chardb is not None and args.command != "chardb":
            # Fail fast: a requested database that cannot be opened must not
            # silently degrade into live characterization.
            from repro.chardb import ChardbError, get_active_chardb

            try:
                get_active_chardb()
            except ChardbError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        return _run_command(args)


def _run_command(args: argparse.Namespace) -> int:
    """Set up the cache and telemetry, then dispatch to the command handler."""
    cache: ResultCache | None = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir if args.cache_dir is not None else default_cache_dir())

    # ``--telemetry`` (const "") enables the tracer; ``profile`` always runs
    # traced, defaulting its export base to "profile".  ``cache`` never
    # traces itself -- its --telemetry argument names the log to *read*.
    telemetry_arg = getattr(args, "telemetry", None)
    if args.command == "profile" and telemetry_arg is None:
        telemetry_arg = "profile"
    if telemetry_arg is None or args.command == "cache":
        return _dispatch(args, cache)
    base = telemetry_arg if telemetry_arg else DEFAULT_TELEMETRY_BASE
    telemetry = Telemetry(label=args.command)
    with use_telemetry(telemetry):
        with telemetry.span(f"repro.{args.command}"):
            code = _dispatch(args, cache)
    paths = telemetry_paths(base)
    write_jsonl(telemetry, paths.jsonl)
    write_chrome_trace(telemetry, paths.chrome_trace)
    if args.command != "profile":  # profile already printed its summary on stdout
        print(format_summary(telemetry), file=sys.stderr)
    print(
        f"[telemetry] event log: {paths.jsonl}  chrome trace: {paths.chrome_trace} "
        "(load the trace in chrome://tracing or https://ui.perfetto.dev)",
        file=sys.stderr,
    )
    return code


def _dispatch(args: argparse.Namespace, cache: ResultCache | None) -> int:
    """Route parsed arguments to their command handler."""
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        code = _parallel_jobs_error(args.engine, args.jobs)
        if code is not None:
            return code
        return _command_run(
            args.experiment,
            args.cycles,
            args.chunk_cycles,
            args.engine,
            args.seed,
            cache,
            workload=args.workload,
            jobs=args.jobs,
            chardb=args.chardb,
        )
    if args.command == "sweep":
        return _command_sweep(
            args.name,
            args.list_sweeps,
            args.limit,
            args.out,
            args.quiet,
            cache,
            args.jobs,
            cycles=args.cycles,
            chunk_cycles=args.chunk_cycles,
            engine=args.engine,
            chardb=args.chardb,
        )
    if args.command == "report":
        return _command_report(
            args.experiments,
            args.out,
            args.cycles,
            args.chunk_cycles,
            args.engine,
            args.seed,
            args.quiet,
            cache,
            args.jobs,
        )
    if args.command == "cache":
        return _command_cache(args.action, args.cache_dir, telemetry_base=args.telemetry)
    if args.command == "profile":
        code = _parallel_jobs_error(args.engine, args.jobs)
        if code is not None:
            return code
        return _command_profile(
            args.experiment,
            args.cycles,
            args.chunk_cycles,
            args.engine,
            args.seed,
            args.top,
            workload=args.workload,
            jobs=args.jobs,
        )
    if args.command == "characterize":
        return _command_characterize(args.corner)
    if args.command == "simulate":
        code = _parallel_jobs_error(args.engine, args.jobs)
        if code is not None:
            return code
        return _command_simulate(
            args.benchmark,
            args.corner,
            args.cycles if args.cycles is not None else 200_000,
            args.seed,
            args.window,
            args.ramp,
            chunk_cycles=args.chunk_cycles,
            engine=args.engine,
            jobs=args.jobs,
            workload=args.workload,
        )
    if args.command == "serve":
        return _command_serve(
            args.host,
            args.port,
            args.jobs,
            args.max_pending,
            args.quota,
            args.max_batch,
            cache,
        )
    if args.command == "submit":
        return _command_submit(
            args.experiment,
            args.cycles,
            args.chunk_cycles,
            args.engine,
            args.seed,
            args.workload,
            args.host,
            args.port,
            args.quiet,
            chardb=args.chardb,
        )
    if args.command == "chardb":
        return _command_chardb(args.action, args.path, args.check)
    if args.command == "jobs":
        return _command_jobs(args.host, args.port, args.stats, args.cancel, args.shutdown)
    if args.command == "compare-schemes":
        return _command_compare_schemes(
            args.corner, args.cycles if args.cycles is not None else 30_000, args.seed
        )
    if args.command == "kernels":
        return _command_kernels()
    if args.command == "analyze":
        from repro.analyze import cli as analyze_cli

        return analyze_cli.run(args)
    if args.command == "trace":
        return _command_trace(
            args.workload,
            args.list_workloads,
            args.cycles,
            args.seed,
            args.out,
            chunk_cycles=args.chunk_cycles,
        )
    raise ValueError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
