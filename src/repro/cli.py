"""Command-line interface: ``python -m repro <command>``.

The CLI is a thin veneer over the experiment registry and the core library,
so everything it prints can also be obtained programmatically; it exists so
the reproduction can be driven without writing a script:

* ``python -m repro list`` -- the experiment inventory (DESIGN.md ids),
* ``python -m repro run fig5`` -- regenerate one figure/table,
* ``python -m repro characterize --corner typical`` -- the bus's delay/error
  behaviour over the voltage grid at one corner,
* ``python -m repro simulate --benchmark crafty --corner typical`` -- one
  closed-loop DVS run with a supply-voltage time series,
* ``python -m repro compare-schemes --corner typical`` -- fixed VS vs canary
  vs triple-latch vs the proposed DVS,
* ``python -m repro kernels`` -- the mini-CPU kernels available as workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.baselines import format_scheme_comparison, run_scheme_comparison
from repro.bus import BusDesign, CharacterizedBus
from repro.circuit.pvt import (
    BEST_CASE_CORNER,
    STANDARD_CORNERS,
    TYPICAL_CORNER,
    WORST_CASE_CORNER,
    PVTCorner,
)
from repro.core.dvs_system import DVSBusSystem
from repro.cpu import KERNELS
from repro.plotting import Series, line_chart
from repro.trace import TABLE1_ORDER, generate_benchmark_trace, generate_suite

#: Corner names accepted by ``--corner``.
CORNERS: Dict[str, PVTCorner] = {
    "worst": WORST_CASE_CORNER,
    "typical": TYPICAL_CORNER,
    "best": BEST_CASE_CORNER,
    **{f"corner{i}": corner for i, corner in STANDARD_CORNERS.items()},
}


def _add_corner_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--corner",
        choices=sorted(CORNERS),
        default="typical",
        help="PVT corner (worst / typical / best, or corner1..corner5 of Fig. 5)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for the tests and for docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'DVS for On-Chip Bus Designs Based on Timing Error "
            "Correction' (Kaul et al., DATE 2005)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the paper's experiments and their ids")

    run_parser = subparsers.add_parser("run", help="run one experiment by id")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run_parser.add_argument("--cycles", type=int, default=None, help="cycles per benchmark")
    run_parser.add_argument("--seed", type=int, default=2005, help="workload seed")

    characterize_parser = subparsers.add_parser(
        "characterize", help="delay and error behaviour of the bus over the voltage grid"
    )
    _add_corner_argument(characterize_parser)

    simulate_parser = subparsers.add_parser(
        "simulate", help="one closed-loop DVS run on a single benchmark"
    )
    simulate_parser.add_argument(
        "--benchmark", choices=TABLE1_ORDER, default="crafty", help="benchmark profile"
    )
    _add_corner_argument(simulate_parser)
    simulate_parser.add_argument("--cycles", type=int, default=200_000)
    simulate_parser.add_argument("--seed", type=int, default=2005)
    simulate_parser.add_argument("--window", type=int, default=10_000, help="error window (cycles)")
    simulate_parser.add_argument("--ramp", type=int, default=3_000, help="regulator ramp (cycles)")

    compare_parser = subparsers.add_parser(
        "compare-schemes", help="fixed VS vs canary vs triple-latch vs proposed DVS"
    )
    _add_corner_argument(compare_parser)
    compare_parser.add_argument("--cycles", type=int, default=30_000, help="cycles per benchmark")
    compare_parser.add_argument("--seed", type=int, default=2005)

    subparsers.add_parser("kernels", help="list the mini-CPU kernels usable as workloads")
    return parser


# --------------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------------- #
def _command_list() -> int:
    width = max(len(identifier) for identifier in EXPERIMENTS)
    print("Experiments (regenerate with 'python -m repro run <id>'):")
    for identifier in sorted(EXPERIMENTS):
        experiment = EXPERIMENTS[identifier]
        print(f"  {identifier:<{width}}  {experiment.paper_artifact:<10} {experiment.description}")
    return 0


def _command_run(experiment: str, cycles: Optional[int], seed: int) -> int:
    kwargs = {"seed": seed}
    if cycles is not None:
        kwargs["n_cycles"] = cycles
    if experiment == "scaling":
        kwargs = {}  # the scaling study takes no workload parameters
    _, text = run_experiment(experiment, **kwargs)
    print(text)
    return 0


def _command_characterize(corner_name: str) -> int:
    corner = CORNERS[corner_name]
    bus = CharacterizedBus(BusDesign.paper_bus(), corner)
    clocking = bus.design.clocking
    print(f"Paper bus characterised at: {corner.label}")
    print(
        f"  clock {clocking.frequency / 1e9:.2f} GHz, main deadline "
        f"{clocking.main_deadline * 1e12:.0f} ps, shadow deadline "
        f"{clocking.shadow_deadline * 1e12:.0f} ps"
    )
    print(
        f"  zero-error supply: {bus.zero_error_voltage() * 1000:.0f} mV, "
        f"regulator floor (shadow latch, worst temp/IR for this process): "
        f"{bus.minimum_safe_voltage(PVTCorner(corner.process, 100.0, 0.10)) * 1000:.0f} mV"
    )
    print()
    print(f"  {'Vdd (mV)':>9} {'worst delay (ps)':>17} {'meets main?':>12} {'meets shadow?':>14}")
    max_lambda = bus.design.topology.max_coupling_factor
    for vdd in reversed(bus.grid.voltages.tolist()):
        delay = bus.table.worst_delay(vdd, max_lambda)
        print(
            f"  {vdd * 1000:>9.0f} {delay * 1e12:>17.1f} "
            f"{'yes' if delay <= clocking.main_deadline else 'no':>12} "
            f"{'yes' if delay <= clocking.shadow_deadline else 'no':>14}"
        )
    return 0


def _command_simulate(
    benchmark: str, corner_name: str, cycles: int, seed: int, window: int, ramp: int
) -> int:
    corner = CORNERS[corner_name]
    bus = CharacterizedBus(BusDesign.paper_bus(), corner)
    trace = generate_benchmark_trace(benchmark, n_cycles=cycles, seed=seed)
    system = DVSBusSystem(bus, window_cycles=window, ramp_delay_cycles=ramp)
    result = system.run(trace)

    print(f"Closed-loop DVS: benchmark {benchmark!r}, corner {corner.label}")
    print(f"  cycles simulated      : {result.n_cycles}")
    print(f"  corrected errors      : {result.total_errors} "
          f"({result.average_error_rate * 100:.2f}% of cycles)")
    print(f"  energy gain vs nominal: {result.energy_gain_percent:.1f}%")
    print(f"  minimum supply reached: {result.minimum_voltage_reached * 1000:.0f} mV "
          f"(final {result.final_voltage * 1000:.0f} mV)")
    print()
    if len(result.window_voltages) >= 2:
        windows = range(len(result.window_voltages))
        print(
            line_chart(
                [
                    Series(
                        "supply (mV)",
                        list(windows),
                        (result.window_voltages * 1000).tolist(),
                    )
                ],
                title="supply voltage per control window",
                x_label="window",
                y_label="mV",
                height=12,
            )
        )
    return 0


def _command_compare_schemes(corner_name: str, cycles: int, seed: int) -> int:
    corner = CORNERS[corner_name]
    design = BusDesign.paper_bus()
    suite = generate_suite(names=("crafty", "vortex", "mgrid"), n_cycles=cycles, seed=seed)
    comparison = run_scheme_comparison(
        design,
        list(suite.values()),
        corner,
        window_cycles=max(1_000, cycles // 20),
        ramp_delay_cycles=max(300, cycles // 60),
        workload_name="crafty+vortex+mgrid",
    )
    print(format_scheme_comparison(comparison))
    return 0


def _command_kernels() -> int:
    width = max(len(name) for name in KERNELS)
    print("Mini-CPU kernels (see repro.cpu.kernel_bus_trace):")
    for name in sorted(KERNELS):
        kernel = KERNELS[name]
        print(f"  {name:<{width}}  [{kernel.data_flavor:<8}] {kernel.description}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args.experiment, args.cycles, args.seed)
    if args.command == "characterize":
        return _command_characterize(args.corner)
    if args.command == "simulate":
        return _command_simulate(
            args.benchmark, args.corner, args.cycles, args.seed, args.window, args.ramp
        )
    if args.command == "compare-schemes":
        return _command_compare_schemes(args.corner, args.cycles, args.seed)
    if args.command == "kernels":
        return _command_kernels()
    parser.error(f"unhandled command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
