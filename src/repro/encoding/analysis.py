"""Evaluation harness for bus encoding schemes, alone and combined with DVS.

The paper argues (Section 1) that encoding techniques are *orthogonal* to the
proposed error-correcting DVS: encoding lowers the switched capacitance per
cycle at any supply, DVS lowers the supply itself at benign operating
conditions.  :func:`run_encoding_study` quantifies both halves of that claim
for a workload:

* the switching activity and nominal-supply energy of the physically driven
  (encoded) trace, charging redundant wires honestly by rebuilding the bus at
  the encoded width, and
* the closed-loop DVS energy gain on the encoded trace, so the combination
  "encoding + DVS" can be compared against either technique alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.bus.bus_design import BusDesign
from repro.bus.bus_model import CharacterizedBus
from repro.circuit.pvt import TYPICAL_CORNER, PVTCorner
from repro.core.dvs_system import DVSBusSystem
from repro.encoding.base import BusEncoder, IdentityEncoder
from repro.encoding.bus_invert import BusInvertEncoder
from repro.encoding.gray import GrayEncoder
from repro.encoding.transition import TransitionEncoder
from repro.energy.gains import energy_gain_percent
from repro.trace.trace import BusTrace


def default_encoders() -> list[BusEncoder]:
    """The encoder set evaluated by the encoding study and its benchmark."""
    return [
        IdentityEncoder(),
        BusInvertEncoder(),
        BusInvertEncoder(group_size=8),
        GrayEncoder(),
        TransitionEncoder(),
    ]


def encoder_names() -> tuple[str, ...]:
    """Self-declared names of the :func:`default_encoders` set, in order."""
    return tuple(encoder.name for encoder in default_encoders())


def get_encoder(name: str) -> BusEncoder:
    """A fresh encoder instance by its self-declared ``.name``.

    The single name-based lookup shared by the runtime's ``encoder`` sweep
    parameter and the workload registry's ``encoded:<name>:`` specs, so both
    always accept exactly the :func:`default_encoders` set.
    """
    registry = {encoder.name: encoder for encoder in default_encoders()}
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(registry)
        raise KeyError(f"unknown encoder {name!r}; known: {known}") from None


@dataclass(frozen=True)
class EncoderEvaluation:
    """Measurements for one encoder on one workload.

    Attributes
    ----------
    encoder_name:
        Scheme name.
    n_wires:
        Physical bus width including any redundant wires.
    toggle_activity:
        Mean fraction of physical wires toggling per cycle.
    nominal_energy:
        Absolute bus+recovery energy (joules) of the encoded trace at the
        nominal supply with no errors.
    nominal_energy_vs_unencoded:
        Ratio of ``nominal_energy`` to the unencoded bus's nominal energy
        (< 1 means the encoder saves energy before any voltage scaling).
    dvs_energy:
        Absolute energy of the closed-loop DVS run on the encoded trace.
    dvs_gain_vs_unencoded_nominal:
        Energy gain (percent) of "encoding + DVS" relative to the unencoded
        bus at nominal supply -- the end-to-end number that shows whether the
        two techniques compose.
    dvs_gain_vs_encoded_nominal:
        Energy gain (percent) of the DVS run relative to the *encoded* bus at
        nominal supply: the voltage-scaling contribution in isolation.
    dvs_average_error_rate:
        Average corrected-error rate of the DVS run.
    """

    encoder_name: str
    n_wires: int
    toggle_activity: float
    nominal_energy: float
    nominal_energy_vs_unencoded: float
    dvs_energy: float
    dvs_gain_vs_unencoded_nominal: float
    dvs_gain_vs_encoded_nominal: float
    dvs_average_error_rate: float

    def as_dict(self) -> dict:
        """Stable JSON-able view of one encoder's row."""
        return {
            "encoder": self.encoder_name,
            "n_wires": int(self.n_wires),
            "toggle_activity": round(self.toggle_activity, 4),
            "nominal_energy_vs_unencoded": round(self.nominal_energy_vs_unencoded, 4),
            "dvs_gain_vs_unencoded_nominal_percent": round(
                self.dvs_gain_vs_unencoded_nominal, 2
            ),
            "dvs_gain_vs_encoded_nominal_percent": round(
                self.dvs_gain_vs_encoded_nominal, 2
            ),
            "dvs_average_error_rate_percent": round(self.dvs_average_error_rate * 100.0, 3),
        }


@dataclass(frozen=True)
class EncodingStudy:
    """Results of evaluating several encoders on one workload at one corner."""

    workload_name: str
    corner: PVTCorner
    evaluations: tuple[EncoderEvaluation, ...]

    def by_name(self, encoder_name: str) -> EncoderEvaluation:
        """Look up one encoder's evaluation by name."""
        for evaluation in self.evaluations:
            if evaluation.encoder_name == encoder_name:
                return evaluation
        known = ", ".join(e.encoder_name for e in self.evaluations)
        raise KeyError(f"no evaluation for {encoder_name!r}; known: {known}")

    @property
    def unencoded(self) -> EncoderEvaluation:
        """The identity-encoder reference row."""
        return self.by_name(IdentityEncoder.name)

    def as_dict(self) -> dict:
        """Stable JSON-able view: one row per evaluated encoder."""
        return {
            "workload": self.workload_name,
            "corner": self.corner.label,
            "encoders": [evaluation.as_dict() for evaluation in self.evaluations],
        }


def design_for_width(reference: BusDesign, n_wires: int) -> BusDesign:
    """The paper bus re-designed for a different wire count.

    The repeater sizing flow is re-run so the wider bus still meets the same
    worst-case delay target; shielding keeps the paper's one-shield-per-four-
    signal-wires structure.
    """
    if n_wires == reference.n_bits:
        return reference
    return BusDesign.paper_bus(
        technology=reference.technology,
        n_bits=n_wires,
        length=reference.length,
        n_segments=reference.n_segments,
        clocking=reference.clocking,
        design_corner=reference.design_corner,
    )


def run_encoding_study(
    trace: BusTrace,
    corner: PVTCorner = TYPICAL_CORNER,
    encoders: Sequence[BusEncoder] | None = None,
    design: BusDesign | None = None,
    window_cycles: int = 2_000,
    ramp_delay_cycles: int = 600,
    warmup_fraction: float = 0.5,
) -> EncodingStudy:
    """Evaluate a set of encoders on one workload trace at one PVT corner.

    Parameters
    ----------
    trace:
        The data trace (what the processor wants to transmit).
    corner:
        PVT corner for characterisation and the DVS runs.
    encoders:
        Encoders to evaluate; defaults to :func:`default_encoders`.
    design:
        Reference (unencoded) bus design; defaults to the paper bus.
    window_cycles / ramp_delay_cycles:
        Control-loop parameters of the DVS runs, defaulting to the scaled-down
        values used by the benchmark harness for short traces.
    warmup_fraction:
        Fraction of the trace excluded from DVS energy accounting so the
        reported gains reflect steady state (see ``DVSBusSystem.run``).
    """
    if encoders is None:
        encoders = default_encoders()
    if design is None:
        design = BusDesign.paper_bus()
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")

    # Reference: the unencoded trace on the reference bus at nominal supply.
    reference_bus = CharacterizedBus(design, corner)
    reference_stats = reference_bus.analyze(trace.values)
    reference_energy = reference_bus.nominal_energy(reference_stats).total_with_recovery

    buses: dict[int, CharacterizedBus] = {design.n_bits: reference_bus}
    evaluations: list[EncoderEvaluation] = []
    warmup = int(warmup_fraction * trace.n_cycles)
    # DVS gains are reported over the post-warm-up region, so the unencoded
    # nominal reference must cover exactly the same cycles.
    measured_reference = reference_bus.nominal_energy(
        reference_stats.slice(warmup, reference_stats.n_cycles) if warmup else reference_stats
    ).total_with_recovery

    for encoder in encoders:
        encoded = encoder.encode(trace)
        n_wires = encoded.n_bits
        if n_wires not in buses:
            buses[n_wires] = CharacterizedBus(design_for_width(design, n_wires), corner)
        bus = buses[n_wires]
        stats = bus.analyze(encoded.values)

        nominal = bus.nominal_energy(stats).total_with_recovery
        system = DVSBusSystem(
            bus, window_cycles=window_cycles, ramp_delay_cycles=ramp_delay_cycles
        )
        result = system.run(stats, warmup_cycles=warmup)
        # Express the DVS energy against the *unencoded nominal* reference so
        # encoding savings and voltage-scaling savings add up in one number.
        evaluations.append(
            EncoderEvaluation(
                encoder_name=encoder.name,
                n_wires=n_wires,
                toggle_activity=encoded.toggle_activity(),
                nominal_energy=nominal,
                nominal_energy_vs_unencoded=nominal / reference_energy,
                dvs_energy=result.energy.total_with_recovery,
                dvs_gain_vs_unencoded_nominal=energy_gain_percent(
                    measured_reference, result.energy.total_with_recovery
                ),
                dvs_gain_vs_encoded_nominal=result.energy_gain_percent,
                dvs_average_error_rate=result.average_error_rate,
            )
        )
    return EncodingStudy(
        workload_name=trace.name, corner=corner, evaluations=tuple(evaluations)
    )


def format_encoding_study(study: EncodingStudy) -> str:
    """Text table of an encoding study (one row per encoder)."""
    header = (
        f"Encoding study -- workload {study.workload_name!r}, corner {study.corner.label}\n"
        f"{'encoder':<14} {'wires':>5} {'activity':>9} {'E/E_unenc':>10} "
        f"{'DVS gain %':>11} {'err %':>6}"
    )
    rows = [header, "-" * len(header.splitlines()[-1])]
    for evaluation in study.evaluations:
        rows.append(
            f"{evaluation.encoder_name:<14} {evaluation.n_wires:>5d} "
            f"{evaluation.toggle_activity:>9.3f} "
            f"{evaluation.nominal_energy_vs_unencoded:>10.3f} "
            f"{evaluation.dvs_gain_vs_unencoded_nominal:>11.1f} "
            f"{evaluation.dvs_average_error_rate * 100:>6.2f}"
        )
    return "\n".join(rows)
