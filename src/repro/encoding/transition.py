"""Transition signalling: data carried in wire toggles.

With transition signalling the transmitter toggles a wire when the data bit is
one and leaves it alone when the data bit is zero, so the number of toggling
wires per cycle equals the Hamming *weight* of the data word rather than the
Hamming distance between consecutive words.  That helps streams whose words
are sparse (few one bits) but are poorly correlated cycle to cycle, and hurts
dense words -- another workload-dependent contrast to the condition-driven
gains of the DVS scheme.

Encoding and decoding are pure XOR chains, so both directions are fully
vectorised (a cumulative parity along the time axis).
"""

from __future__ import annotations


import numpy as np

from repro.encoding.base import BusEncoder, StreamState
from repro.trace.trace import BusTrace


class TransitionEncoder(BusEncoder):
    """Transition signalling over the whole word (no redundant wires).

    The first transmitted word is the first data word itself, which defines
    the initial wire state the toggles are applied to.
    """

    name = "transition"

    def encode(self, trace: BusTrace) -> BusTrace:
        """Wire state is the running parity of the data words."""
        data = trace.values.astype(np.uint8)
        encoded = np.cumsum(data, axis=0, dtype=np.int64) % 2
        # The first wire state must equal the first data word (the cumulative
        # sum already guarantees this because the sum of one word is itself).
        return BusTrace(values=encoded.astype(np.uint8), name=f"{trace.name}/{self.name}")

    def encode_block(
        self, values: np.ndarray, state: StreamState | None, first_word: bool
    ) -> tuple[np.ndarray, StreamState]:
        """Streamed encode: the carried state is the cumulative data parity.

        Each wire's state is the XOR of all data bits seen so far, so a block
        encodes as its own cumulative parity XORed with the carried parity --
        bit-identical to the monolithic cumulative sum.
        """
        data = np.asarray(values, dtype=np.uint8)
        encoded = np.cumsum(data, axis=0, dtype=np.int64)
        if state is not None:
            encoded += state.astype(np.int64)
        encoded = (encoded % 2).astype(np.uint8)
        return encoded, encoded[-1].copy()

    def decode(self, encoded: BusTrace) -> BusTrace:
        """Data words are the XOR of consecutive wire states (first word as-is)."""
        values = encoded.values.astype(np.uint8)
        data = values.copy()
        data[1:] = values[1:] ^ values[:-1]
        name = encoded.name
        suffix = f"/{self.name}"
        if name.endswith(suffix):
            name = name[: -len(suffix)]
        return BusTrace(values=data, name=name)
