"""Encoder interface shared by every bus encoding scheme.

An encoder maps a :class:`~repro.trace.trace.BusTrace` of data words to the
trace of words *physically driven on the wires*.  Schemes that add redundant
wires (bus-invert adds one invert line per group) return a wider trace; the
evaluation harness then builds a correspondingly wider bus so their wiring
overhead is charged honestly.

Every encoder also exposes a *streaming* encode path,
:meth:`BusEncoder.encode_block`, that processes a run of data words while
carrying whatever state the scheme needs across blocks (cumulative parity
for transition signalling, the previously driven word and invert lines for
bus-invert).  :class:`repro.trace.stream.EncodedTraceSource` uses it to
encode paper-scale traces chunk by chunk, bit-identically to :meth:`encode`
over the materialised trace.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.trace.trace import BusTrace

#: Opaque per-stream encoder state carried between encode_block calls.
StreamState = Any


class BusEncoder(abc.ABC):
    """Base class of all bus encoders.

    Subclasses implement :meth:`encode` and :meth:`decode`; both operate on
    whole traces so they can be vectorised where the scheme allows it.  The
    invariant every encoder must satisfy (and the property tests check) is
    ``decode(encode(trace)) == trace``.

    Word-wise (stateless) encoders get streaming support for free; stateful
    schemes override :meth:`encode_block`.
    """

    #: Human-readable scheme name used in reports.
    name: str = "encoder"

    @property
    def extra_bits(self) -> int:
        """Number of redundant wires the encoding adds to the bus."""
        return 0

    def encoded_bits(self, n_bits: int) -> int:
        """Width of the physical bus for an ``n_bits``-wide data word."""
        return n_bits + self.extra_bits

    def encoded_name(self, name: str) -> str:
        """The name an encoded trace carries (matches :meth:`encode`)."""
        return f"{name}/{self.name}"

    @abc.abstractmethod
    def encode(self, trace: BusTrace) -> BusTrace:
        """The trace of physical wire values for a data trace."""

    @abc.abstractmethod
    def decode(self, encoded: BusTrace) -> BusTrace:
        """Recover the data trace from a physical wire trace."""

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #
    def encode_block(
        self, values: np.ndarray, state: StreamState | None, first_word: bool
    ) -> tuple[np.ndarray, StreamState]:
        """Encode a run of data words, carrying stream state between blocks.

        ``values`` is a 0/1 ``(n_words, n_bits)`` array of *data* words (no
        boundary row); ``state`` is whatever the previous call returned
        (``None`` before the first), and ``first_word`` marks the block that
        starts the trace.  Returns the encoded words and the updated state.
        Concatenating the outputs over all blocks must equal
        ``encode(whole_trace).values`` exactly.

        The default implementation covers *word-wise* encoders -- schemes
        where each output word depends only on the corresponding input word
        -- by delegating to :meth:`encode` on a self-contained two-word
        trace when needed.  Stateful schemes must override.
        """
        if not self.is_wordwise:
            raise NotImplementedError(
                f"{type(self).__name__} is stateful; it must override encode_block"
            )
        values = np.asarray(values, dtype=np.uint8)
        if values.shape[0] >= 2:
            encoded = self.encode(BusTrace(values=values)).values
        else:
            # BusTrace needs two words; duplicate the lone word and keep one row.
            doubled = np.concatenate([values, values], axis=0)
            encoded = self.encode(BusTrace(values=doubled)).values[:1]
        return encoded, state

    @property
    def is_wordwise(self) -> bool:
        """Whether each encoded word depends only on its own data word.

        Word-wise encoders stream trivially through the default
        :meth:`encode_block`; stateful encoders return ``False`` and provide
        their own.
        """
        return False

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _values(trace: BusTrace) -> np.ndarray:
        """The trace's word array as a writeable signed copy."""
        return trace.values.astype(np.int8).copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class IdentityEncoder(BusEncoder):
    """The unencoded bus: physical wires carry the data words directly."""

    name = "unencoded"

    @property
    def is_wordwise(self) -> bool:
        """Identity is trivially word-wise."""
        return True

    def encoded_name(self, name: str) -> str:
        """Identity leaves trace names untouched, like :meth:`encode`."""
        return name

    def encode(self, trace: BusTrace) -> BusTrace:
        """Return the trace unchanged (no redundant wires, no remapping)."""
        return trace

    def decode(self, encoded: BusTrace) -> BusTrace:
        """Return the trace unchanged."""
        return encoded
