"""Encoder interface shared by every bus encoding scheme.

An encoder maps a :class:`~repro.trace.trace.BusTrace` of data words to the
trace of words *physically driven on the wires*.  Schemes that add redundant
wires (bus-invert adds one invert line per group) return a wider trace; the
evaluation harness then builds a correspondingly wider bus so their wiring
overhead is charged honestly.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.trace.trace import BusTrace


class BusEncoder(abc.ABC):
    """Base class of all bus encoders.

    Subclasses implement :meth:`encode` and :meth:`decode`; both operate on
    whole traces so they can be vectorised where the scheme allows it.  The
    invariant every encoder must satisfy (and the property tests check) is
    ``decode(encode(trace)) == trace``.
    """

    #: Human-readable scheme name used in reports.
    name: str = "encoder"

    @property
    def extra_bits(self) -> int:
        """Number of redundant wires the encoding adds to the bus."""
        return 0

    def encoded_bits(self, n_bits: int) -> int:
        """Width of the physical bus for an ``n_bits``-wide data word."""
        return n_bits + self.extra_bits

    @abc.abstractmethod
    def encode(self, trace: BusTrace) -> BusTrace:
        """The trace of physical wire values for a data trace."""

    @abc.abstractmethod
    def decode(self, encoded: BusTrace) -> BusTrace:
        """Recover the data trace from a physical wire trace."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _values(trace: BusTrace) -> np.ndarray:
        """The trace's word array as a writeable signed copy."""
        return trace.values.astype(np.int8).copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class IdentityEncoder(BusEncoder):
    """The unencoded bus: physical wires carry the data words directly."""

    name = "unencoded"

    def encode(self, trace: BusTrace) -> BusTrace:
        """Return the trace unchanged (no redundant wires, no remapping)."""
        return trace

    def decode(self, encoded: BusTrace) -> BusTrace:
        """Return the trace unchanged."""
        return encoded
