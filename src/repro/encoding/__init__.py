"""Low-power bus encoding schemes (the paper's "orthogonal" related work).

Section 1 of the paper cites layout, repeater-sizing and *encoding* techniques
as existing ways to reduce bus power, and argues they are orthogonal to the
proposed DVS approach because they improve efficiency at the worst-case
operating point rather than recovering the slack of typical conditions.  This
package implements the classic encoding schemes so that claim can be examined
quantitatively:

* :class:`~repro.encoding.bus_invert.BusInvertEncoder` -- bus-invert coding
  (Stan & Burleson), optionally partitioned into independently inverted
  groups,
* :class:`~repro.encoding.gray.GrayEncoder` -- Gray coding for address-like
  streams,
* :class:`~repro.encoding.transition.TransitionEncoder` -- transition
  signalling (data carried in toggles),
* :mod:`~repro.encoding.analysis` -- an evaluation harness that measures the
  switching-activity and energy effect of each encoder, alone and combined
  with the proposed DVS control loop.
"""

from repro.encoding.base import BusEncoder, IdentityEncoder
from repro.encoding.bus_invert import BusInvertEncoder
from repro.encoding.gray import GrayEncoder, gray_decode_words, gray_encode_words
from repro.encoding.transition import TransitionEncoder
from repro.encoding.analysis import (
    EncoderEvaluation,
    EncodingStudy,
    default_encoders,
    design_for_width,
    encoder_names,
    format_encoding_study,
    get_encoder,
    run_encoding_study,
)

__all__ = [
    "BusEncoder",
    "IdentityEncoder",
    "BusInvertEncoder",
    "GrayEncoder",
    "gray_decode_words",
    "gray_encode_words",
    "TransitionEncoder",
    "EncoderEvaluation",
    "EncodingStudy",
    "default_encoders",
    "design_for_width",
    "encoder_names",
    "format_encoding_study",
    "get_encoder",
    "run_encoding_study",
]
