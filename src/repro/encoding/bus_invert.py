"""Bus-invert coding (Stan & Burleson, reference [5] of the paper).

Before driving a new word, the transmitter compares it with the word currently
on the wires: if more than half of the signal wires would toggle, the word is
driven *inverted* and an extra invert line is asserted so the receiver can
undo the inversion.  This bounds the number of toggling signal wires per cycle
to half the bus width and reduces average switching activity for high-entropy
data.

The classic scheme uses one invert line for the whole word; *partitioned*
bus-invert splits the word into independently inverted groups (one invert
line per group), which works better for wide buses whose bytes have unequal
activity.  Both are supported through the ``group_size`` parameter.

The per-word decision depends on the previously *encoded* word, so encoding is
inherently sequential; decoding is fully vectorised.
"""

from __future__ import annotations


import numpy as np

from repro.encoding.base import BusEncoder, StreamState
from repro.trace.trace import BusTrace


class BusInvertEncoder(BusEncoder):
    """Bus-invert coding with optional partitioning.

    Parameters
    ----------
    group_size:
        Number of signal wires sharing one invert line.  ``None`` (the
        default) uses a single invert line for the whole word; 8 gives the
        per-byte partitioned variant.
    """

    def __init__(self, group_size: int | None = None) -> None:
        if group_size is not None and group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        self.group_size = group_size
        self.name = "bus-invert" if group_size is None else f"bus-invert/{group_size}"

    # ------------------------------------------------------------------ #
    # Layout helpers
    # ------------------------------------------------------------------ #
    def _group_slices(self, n_bits: int) -> list[slice]:
        """Signal-wire slices of each independently inverted group."""
        size = n_bits if self.group_size is None else self.group_size
        return [slice(start, min(start + size, n_bits)) for start in range(0, n_bits, size)]

    def n_groups(self, n_bits: int) -> int:
        """Number of invert lines needed for an ``n_bits``-wide data word."""
        return len(self._group_slices(n_bits))

    @property
    def extra_bits(self) -> int:
        """Not defined without a word width; use :meth:`encoded_bits` instead."""
        raise AttributeError(
            "bus-invert's wire overhead depends on the word width; call encoded_bits(n_bits)"
        )

    def encoded_bits(self, n_bits: int) -> int:
        """Signal wires plus one invert line per group."""
        return n_bits + self.n_groups(n_bits)

    # ------------------------------------------------------------------ #
    # Encoding / decoding
    # ------------------------------------------------------------------ #
    def _encode_rows(
        self,
        data: np.ndarray,
        encoded: np.ndarray,
        start: int,
        previous: np.ndarray,
        previous_invert: np.ndarray,
        groups: list[slice],
        n_bits: int,
    ) -> None:
        """Run the per-word invert decisions over ``data[start:]`` in place.

        ``previous`` / ``previous_invert`` are updated as the loop advances,
        which is exactly the state the streaming path carries across blocks.
        """
        for index in range(start, data.shape[0]):
            word = data[index]
            for group_index, group in enumerate(groups):
                group_width = group.stop - group.start
                toggles_plain = int(np.count_nonzero(word[group] != previous[group]))
                # The invert line itself toggles too when the decision flips,
                # so compare "toggles if we keep polarity" against "toggles if
                # we flip polarity" including the invert line on both sides.
                keep_cost = toggles_plain + (1 if previous_invert[group_index] != 0 else 0)
                flip_cost = (group_width - toggles_plain) + (
                    1 if previous_invert[group_index] == 0 else 0
                )
                invert = flip_cost < keep_cost
                if invert:
                    encoded_group = 1 - word[group]
                else:
                    encoded_group = word[group]
                encoded[index, group] = encoded_group
                encoded[index, n_bits + group_index] = 1 if invert else 0
                previous[group] = encoded_group
                previous_invert[group_index] = 1 if invert else 0

    def encode(self, trace: BusTrace) -> BusTrace:
        """Encode a data trace; the invert lines are appended after the data wires.

        The first word is transmitted unmodified (all invert lines low), which
        matches the usual convention that the bus powers up in a known state.
        """
        data = trace.values.astype(np.uint8)
        n_words, n_bits = data.shape
        groups = self._group_slices(n_bits)
        encoded = np.empty((n_words, n_bits + len(groups)), dtype=np.uint8)

        previous = data[0].copy()
        encoded[0, :n_bits] = previous
        encoded[0, n_bits:] = 0
        previous_invert = np.zeros(len(groups), dtype=np.uint8)
        self._encode_rows(data, encoded, 1, previous, previous_invert, groups, n_bits)
        return BusTrace(values=encoded, name=f"{trace.name}/{self.name}")

    def encode_block(
        self, values: np.ndarray, state: StreamState | None, first_word: bool
    ) -> tuple[np.ndarray, StreamState]:
        """Streamed encode carrying the previously driven word and invert lines.

        The per-word decision only ever looks at what is currently *on the
        wires*, so that pair is the complete stream state; streamed output is
        bit-identical to :meth:`encode` over the whole trace.
        """
        data = np.asarray(values, dtype=np.uint8)
        n_words, n_bits = data.shape
        groups = self._group_slices(n_bits)
        encoded = np.empty((n_words, n_bits + len(groups)), dtype=np.uint8)
        if state is None:
            previous = data[0].copy()
            encoded[0, :n_bits] = previous
            encoded[0, n_bits:] = 0
            previous_invert = np.zeros(len(groups), dtype=np.uint8)
            start = 1
        else:
            previous, previous_invert = state
            previous = previous.copy()
            previous_invert = previous_invert.copy()
            start = 0
        self._encode_rows(data, encoded, start, previous, previous_invert, groups, n_bits)
        return encoded, (previous, previous_invert)

    def decode(self, encoded: BusTrace) -> BusTrace:
        """Undo the inversion using the appended invert lines (vectorised)."""
        values = encoded.values.astype(np.uint8)
        n_bits = self._data_bits(encoded.n_bits)
        groups = self._group_slices(n_bits)
        data = values[:, :n_bits].copy()
        for group_index, group in enumerate(groups):
            invert = values[:, n_bits + group_index].astype(bool)
            data[invert, group] = 1 - data[invert, group]
        name = encoded.name
        suffix = f"/{self.name}"
        if name.endswith(suffix):
            name = name[: -len(suffix)]
        return BusTrace(values=data, name=name)

    def _data_bits(self, encoded_bits: int) -> int:
        """Recover the data width from an encoded width (inverse of :meth:`encoded_bits`)."""
        for n_bits in range(1, encoded_bits):
            if self.encoded_bits(n_bits) == encoded_bits:
                return n_bits
        raise ValueError(
            f"{encoded_bits} wires is not a valid {self.name} encoding width"
        )
