"""Gray coding for address-like bus streams.

Gray coding maps consecutive integers to code words that differ in exactly one
bit, so sequential address streams (instruction fetch, array walks) toggle one
wire per cycle instead of rippling a carry through the low-order bits.  It
neither adds wires nor helps uncorrelated data, which makes it a useful
contrast case for the encoding study: its benefit is entirely workload
dependent, while the DVS scheme's benefit comes from operating conditions.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.base import BusEncoder
from repro.trace.trace import BusTrace


def gray_encode_words(words: np.ndarray) -> np.ndarray:
    """Gray-encode an array of unsigned integer words: ``g = w ^ (w >> 1)``."""
    words = np.asarray(words, dtype=np.uint64)
    return words ^ (words >> np.uint64(1))


def gray_decode_words(codes: np.ndarray, n_bits: int) -> np.ndarray:
    """Invert :func:`gray_encode_words` for ``n_bits``-wide words.

    The inverse is the prefix XOR of the code bits, computed here with the
    standard doubling shift so the loop runs ``log2(n_bits)`` times rather
    than once per bit.
    """
    if n_bits <= 0 or n_bits > 64:
        raise ValueError(f"n_bits must be in 1..64, got {n_bits}")
    values = np.asarray(codes, dtype=np.uint64).copy()
    shift = 1
    while shift < n_bits:
        values ^= values >> np.uint64(shift)
        shift *= 2
    if n_bits < 64:
        values &= (np.uint64(1) << np.uint64(n_bits)) - np.uint64(1)
    return values


class GrayEncoder(BusEncoder):
    """Whole-word Gray coding (no redundant wires)."""

    name = "gray"

    @property
    def is_wordwise(self) -> bool:
        """Each Gray code depends only on its own word, so streaming is free."""
        return True

    def encode(self, trace: BusTrace) -> BusTrace:
        """Gray-encode every word of the trace."""
        words = trace.to_words()
        encoded = gray_encode_words(words)
        return BusTrace.from_words(encoded, n_bits=trace.n_bits, name=f"{trace.name}/{self.name}")

    def decode(self, encoded: BusTrace) -> BusTrace:
        """Recover the original words from their Gray codes."""
        words = gray_decode_words(encoded.to_words(), encoded.n_bits)
        name = encoded.name
        suffix = f"/{self.name}"
        if name.endswith(suffix):
            name = name[: -len(suffix)]
        return BusTrace.from_words(words, n_bits=encoded.n_bits, name=name)
