"""Bus characterisation: the HSPICE-tabulation substitute.

The paper tabulates delay, dynamic energy and leakage of the bus with HSPICE
"for individual supply voltages (in increments of 20 mV) over a range of
supply voltages and also for different combinations of process corner and
temperature".  :func:`characterize_bus` performs the same step with the
analytical models of :mod:`repro.circuit` and :mod:`repro.interconnect`,
producing a :class:`~repro.circuit.lookup_table.DelayEnergyTable` per corner.
"""

from __future__ import annotations


import numpy as np

from repro.bus.bus_design import BusDesign
from repro.circuit.lookup_table import DEFAULT_VOLTAGE_STEP, DelayEnergyTable, VoltageGrid
from repro.circuit.pvt import PVTCorner

#: Default lowest tabulated supply voltage (well below any useful operating point).
DEFAULT_MIN_VOLTAGE = 0.60


def default_voltage_grid(design: BusDesign, v_min: float = DEFAULT_MIN_VOLTAGE) -> VoltageGrid:
    """The 20 mV grid from ``v_min`` up to the technology's nominal supply."""
    return VoltageGrid(v_min=v_min, v_max=design.nominal_vdd, step=DEFAULT_VOLTAGE_STEP)


def characterize_bus(
    design: BusDesign,
    corner: PVTCorner,
    grid: VoltageGrid | None = None,
) -> DelayEnergyTable:
    """Tabulate bus delay coefficients, leakage and energy data for one corner.

    Parameters
    ----------
    design:
        The bus to characterise (including its sized repeaters).
    corner:
        The PVT corner to characterise at.  The corner's IR droop is applied
        to the repeater supply when computing delay and leakage, exactly as
        the paper does for its "10 % IR drop" corners.
    grid:
        Supply-voltage grid; defaults to 20 mV steps from 0.6 V to nominal.

    Returns
    -------
    DelayEnergyTable
        Per-voltage affine delay coefficients (``d0``, ``d1``), leakage power,
        and the energy capacitances of the bus.
    """
    if grid is None:
        grid = default_voltage_grid(design)

    driver_model = design.driver_model()
    segment = design.segment_parasitics
    voltages = grid.voltages

    base_delay = np.empty_like(voltages)
    coupling_delay = np.empty_like(voltages)
    leakage_power = np.empty_like(voltages)

    total_repeater_size = design.total_repeater_size()
    for index, vdd in enumerate(voltages):
        coefficients = design.repeaters.delay_coefficients(
            float(vdd), corner, segment, driver_model
        )
        base_delay[index] = coefficients.base
        coupling_delay[index] = coefficients.per_coupling
        leakage_current = driver_model.leakage_current(float(vdd), corner, total_repeater_size)
        leakage_power[index] = leakage_current * float(vdd)

    return DelayEnergyTable(
        grid=grid,
        corner=corner,
        base_delay=base_delay,
        coupling_delay=coupling_delay,
        leakage_power=leakage_power,
        self_capacitance_per_wire=design.wire_self_capacitance(),
        coupling_capacitance_per_pair=design.pair_coupling_capacitance(),
        metadata={
            "technology": design.technology.name,
            "repeater_size": design.repeaters.size,
            "n_segments": design.n_segments,
            "corner": corner.label,
        },
    )


#: The per-voltage surfaces of a characterization, in canonical export order.
SURFACE_NAMES = ("base_delay", "coupling_delay", "leakage_power")


def characterization_surfaces(table: DelayEnergyTable) -> dict[str, np.ndarray]:
    """The table's surfaces as canonical little-endian float64 arrays.

    This is the circuit layer's serialisation contract with
    :mod:`repro.chardb`: one contiguous ``<f8`` array per surface in
    :data:`SURFACE_NAMES` order, exactly as characterised — no rounding, no
    re-sampling — so a database round trip is bit-exact by construction.
    """
    return {
        name: np.ascontiguousarray(getattr(table, name), dtype="<f8")
        for name in SURFACE_NAMES
    }
