"""Bus structure, characterisation and cycle-level behavioural model."""

from repro.bus.bus_design import BusDesign
from repro.bus.characterization import (
    DEFAULT_MIN_VOLTAGE,
    characterization_surfaces,
    characterize_bus,
    default_voltage_grid,
)
from repro.bus.bus_model import (
    CharacterizedBus,
    TraceStatistics,
    TraceStatisticsAccumulator,
    TraceSummary,
)
from repro.bus.engine import (
    DEFAULT_ENGINE,
    ENGINE_SCALAR,
    ENGINE_VECTORIZED,
    ENGINES,
    resolve_engine,
)

__all__ = [
    "BusDesign",
    "DEFAULT_MIN_VOLTAGE",
    "characterization_surfaces",
    "characterize_bus",
    "default_voltage_grid",
    "CharacterizedBus",
    "TraceStatistics",
    "TraceStatisticsAccumulator",
    "TraceSummary",
    "DEFAULT_ENGINE",
    "ENGINE_SCALAR",
    "ENGINE_VECTORIZED",
    "ENGINES",
    "resolve_engine",
]
