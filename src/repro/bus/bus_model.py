"""Cycle-level behavioural model of the characterised bus.

The expensive per-cycle work -- classifying every wire's switching pattern and
summing the coupling-energy weights -- depends only on the data trace, not on
the supply voltage.  :class:`TraceStatistics` captures those per-cycle arrays
once; :class:`CharacterizedBus` then evaluates timing errors and energy for
any (possibly per-cycle) supply voltage with a handful of vectorised numpy
operations, which is what makes multi-million-cycle DVS simulations fast.

For paper-scale (10 M cycle) runs even the per-cycle statistics are too big
to hold, so the model also supports *streaming reductions*:

* :meth:`CharacterizedBus.iter_statistics` walks any workload (a trace, a
  :class:`~repro.trace.stream.TraceSource`, or pre-computed statistics) as
  chunk-local :class:`TraceStatistics`, and
* :class:`TraceStatisticsAccumulator` folds those chunks into a
  :class:`TraceSummary` -- exact totals plus the (tiny, discrete)
  distribution of per-cycle worst coupling factors -- from which error rates
  and energies at any *constant* supply are computed exactly, independent of
  how the trace was chunked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING
from collections.abc import Iterator

import numpy as np

from repro.bus.bus_design import BusDesign
from repro.bus.characterization import default_voltage_grid
from repro.bus.engine import (
    ENGINE_PARALLEL,
    ENGINE_SCALAR,
    ENGINE_VECTORIZED,
    default_chunk_cycles,
    kernel_engine,
    resolve_engine,
)
from repro.circuit.energy_model import FlipFlopEnergyParams
from repro.circuit.lookup_table import DelayEnergyTable, VoltageGrid
from repro.circuit.pvt import PVTCorner
from repro.energy.accounting import EnergyBreakdown
from repro.interconnect.block_kernels import block_statistics_arrays, lanes_supported
from repro.interconnect.crosstalk import (
    NeighborTopology,
    coupling_energy_weights,
    packed_coupling_energy_weights,
    packed_toggle_counts,
    toggle_counts,
    transitions_from_values,
    worst_coupling_factor_per_cycle,
)
from repro.telemetry import get_telemetry
from repro.trace.stream import TraceSource, as_trace_source
from repro.trace.trace import BusTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.chardb.database import CharacterizationDatabase
    from repro.runtime.parallel import ParallelChunkScheduler

VoltageLike = float | np.ndarray


@dataclass(frozen=True)
class TraceStatistics:
    """Voltage-independent per-cycle statistics of a data trace on a bus.

    All arrays have one entry per *transition* (i.e. ``n_values - 1``): the
    first bus word only establishes the initial state.

    Attributes
    ----------
    worst_coupling:
        Largest effective Miller coupling factor among switching wires in
        each cycle (0 when no wire switches).
    toggles:
        Number of switching wires per cycle.
    coupling_weights:
        Sum over adjacent pairs of the squared relative swing (in Vdd units)
        per cycle, for coupling-energy accounting.
    """

    worst_coupling: np.ndarray
    toggles: np.ndarray
    coupling_weights: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.worst_coupling)
        for name in ("worst_coupling", "toggles", "coupling_weights"):
            value = np.asarray(getattr(self, name), dtype=float)
            if value.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},), got {value.shape}")
            object.__setattr__(self, name, value)

    @property
    def n_cycles(self) -> int:
        """Number of simulated cycles (transitions)."""
        return len(self.worst_coupling)

    def slice(self, start: int, stop: int) -> TraceStatistics:
        """Statistics of a contiguous sub-interval of cycles."""
        return TraceStatistics(
            worst_coupling=self.worst_coupling[start:stop],
            toggles=self.toggles[start:stop],
            coupling_weights=self.coupling_weights[start:stop],
        )

    def concatenate(self, other: TraceStatistics) -> TraceStatistics:
        """Concatenate two runs of statistics (back-to-back program execution)."""
        return TraceStatistics(
            worst_coupling=np.concatenate([self.worst_coupling, other.worst_coupling]),
            toggles=np.concatenate([self.toggles, other.toggles]),
            coupling_weights=np.concatenate([self.coupling_weights, other.coupling_weights]),
        )

    @property
    def mean_toggle_rate(self) -> float:
        """Average fraction of a 32-bit word switching per cycle (diagnostic)."""
        return float(np.mean(self.toggles))

    def summarize(self) -> TraceSummary:
        """Reduce these per-cycle arrays to a :class:`TraceSummary`."""
        accumulator = TraceStatisticsAccumulator()
        accumulator.accumulate(self)
        return accumulator.summary()


@dataclass(frozen=True)
class TraceSummary:
    """Exact reductions of per-cycle trace statistics, O(1) in trace length.

    Toggle and coupling-weight totals are sums of small integers (exact in
    float64 far beyond any realistic trace length), and the per-cycle worst
    coupling factor only takes a handful of distinct values (the canonical
    Miller classes spread by the discrete secondary correction), so the
    summary preserves *everything* needed to evaluate error rates and
    energies at any constant supply -- with results independent of how the
    trace was chunked during accumulation.

    Attributes
    ----------
    n_cycles:
        Total transitions accumulated.
    toggles_total:
        Sum of per-cycle toggling-wire counts.
    coupling_weights_total:
        Sum of per-cycle coupling-energy weights.
    worst_coupling_values / worst_coupling_counts:
        The distinct per-cycle worst coupling factors (ascending) and how
        many cycles saw each.
    """

    n_cycles: int
    toggles_total: float
    coupling_weights_total: float
    worst_coupling_values: np.ndarray
    worst_coupling_counts: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.worst_coupling_values, dtype=float)
        counts = np.asarray(self.worst_coupling_counts, dtype=np.int64)
        if values.shape != counts.shape or values.ndim != 1:
            raise ValueError("worst-coupling values and counts must be matching 1-D arrays")
        if int(counts.sum()) != self.n_cycles:
            raise ValueError(
                f"worst-coupling counts sum to {int(counts.sum())}, expected {self.n_cycles}"
            )
        object.__setattr__(self, "worst_coupling_values", values)
        object.__setattr__(self, "worst_coupling_counts", counts)

    @property
    def mean_toggle_rate(self) -> float:
        """Average number of switching wires per cycle (diagnostic)."""
        if self.n_cycles == 0:
            return 0.0
        return self.toggles_total / self.n_cycles

    def error_count(self, coupling_threshold: float) -> int:
        """Cycles whose worst coupling factor exceeds ``coupling_threshold``."""
        mask = self.worst_coupling_values > coupling_threshold
        return int(self.worst_coupling_counts[mask].sum())

    @classmethod
    def from_source(
        cls,
        bus: CharacterizedBus,
        workload: WorkloadLike,
        chunk_cycles: int | None = None,
    ) -> TraceSummary:
        """Stream a workload through ``bus`` and reduce it to a summary."""
        return bus.summarize(workload, chunk_cycles=chunk_cycles)


class TraceStatisticsAccumulator:
    """Incremental reducer of chunk statistics into a :class:`TraceSummary`.

    Accumulation is exact (integer totals, discrete worst-coupling
    histogram), so the resulting summary is bit-identical no matter how the
    trace was split into chunks.
    """

    def __init__(self) -> None:
        self._n_cycles = 0
        self._toggles = 0.0
        self._weights = 0.0
        self._histogram: dict[float, int] = {}

    def accumulate(self, stats: TraceStatistics) -> TraceStatisticsAccumulator:
        """Fold one chunk's per-cycle statistics into the running reduction."""
        self._n_cycles += stats.n_cycles
        self._toggles += float(np.sum(stats.toggles))
        self._weights += float(np.sum(stats.coupling_weights))
        values, counts = np.unique(stats.worst_coupling, return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            self._histogram[value] = self._histogram.get(value, 0) + int(count)
        return self

    def merge_summary(self, summary: TraceSummary) -> TraceStatisticsAccumulator:
        """Fold an already-reduced :class:`TraceSummary` into the reduction.

        The parallel engine's merge step: per-segment summaries computed by
        worker processes fold in exactly like raw chunks, and because every
        field is an exact integer (or small dyadic) total, any merge grouping
        -- linear, tree-shaped, or mixed with :meth:`accumulate` calls --
        produces bit-identical results.
        """
        self._n_cycles += summary.n_cycles
        self._toggles += summary.toggles_total
        self._weights += summary.coupling_weights_total
        for value, count in zip(
            summary.worst_coupling_values.tolist(),
            summary.worst_coupling_counts.tolist(),
        ):
            self._histogram[value] = self._histogram.get(value, 0) + int(count)
        return self

    #: Alias so the accumulator can be used as a chunk observer.
    update = accumulate

    @property
    def n_cycles(self) -> int:
        """Cycles accumulated so far."""
        return self._n_cycles

    def summary(self) -> TraceSummary:
        """The reduction accumulated so far, as an immutable summary."""
        values = np.array(sorted(self._histogram), dtype=float)
        counts = np.array([self._histogram[v] for v in values.tolist()], dtype=np.int64)
        return TraceSummary(
            n_cycles=self._n_cycles,
            toggles_total=self._toggles,
            coupling_weights_total=self._weights,
            worst_coupling_values=values,
            worst_coupling_counts=counts,
        )


#: Anything the bus model can evaluate a workload from.
WorkloadLike = BusTrace | TraceSource | TraceStatistics
#: Workload statistics in either per-cycle or reduced form.
StatisticsLike = TraceStatistics | TraceSummary


def analyze_trace_statistics(
    trace: BusTrace,
    topology: NeighborTopology,
    engine: str | None = None,
) -> TraceStatistics:
    """Per-cycle statistics of a trace over a wiring topology.

    This is the kernel dispatch behind
    :meth:`CharacterizedBus.analyze_trace`, factored to module level because
    it depends only on the (tiny, picklable) :class:`NeighborTopology` -- the
    parallel engine's worker processes call it without ever materialising a
    characterised bus.  With the default ``engine="vectorized"`` (which
    ``"parallel"`` maps to, see :func:`repro.bus.engine.kernel_engine`) all
    three per-cycle arrays come from the integer-lane block kernels straight
    off the packed words; ``engine="scalar"`` runs the per-wire reference
    kernels.  Results are **bit-identical** either way, and configurations
    the lane kernels cannot represent (buses wider than 64 wires, big-endian
    hosts) fall back to the reference path.
    """
    if trace.n_bits != topology.n_wires:
        raise ValueError(
            f"transition width {trace.n_bits} does not match topology "
            f"({topology.n_wires})"
        )
    telemetry = get_telemetry()
    if kernel_engine(engine) == ENGINE_VECTORIZED and lanes_supported(trace.n_bits):
        with telemetry.span("kernel.block_statistics", cycles=trace.n_cycles):
            worst, toggles, weights = block_statistics_arrays(
                trace.packed_values, topology
            )
        telemetry.count("kernel.invocations.vectorized")
        return TraceStatistics(
            worst_coupling=worst, toggles=toggles, coupling_weights=weights
        )
    telemetry.count("kernel.invocations.scalar")
    if not trace.is_packed:
        with telemetry.span("kernel.scalar_statistics", cycles=trace.n_cycles):
            transitions = transitions_from_values(trace.values)
            return TraceStatistics(
                worst_coupling=worst_coupling_factor_per_cycle(transitions, topology),
                toggles=toggle_counts(transitions),
                coupling_weights=coupling_energy_weights(transitions, topology),
            )
    with telemetry.span("kernel.scalar_statistics", cycles=trace.n_cycles, packed=True):
        packed = trace.packed_values
        values = trace.values  # one unpacked copy for the signed classification
        transitions = transitions_from_values(values)
        return TraceStatistics(
            worst_coupling=worst_coupling_factor_per_cycle(transitions, topology),
            toggles=packed_toggle_counts(packed),
            coupling_weights=packed_coupling_energy_weights(packed, topology),
        )


class CharacterizedBus:
    """A bus design characterised at one PVT corner, ready for simulation.

    Parameters
    ----------
    design:
        The structural bus design.
    corner:
        PVT corner to characterise and simulate at.
    grid:
        Optional supply-voltage grid; defaults to 20 mV steps up to nominal.
    flipflop_energy:
        Energy parameters of the receiving double-sampling flip-flop bank.
    table:
        Optional pre-built delay/energy table for exactly this (design,
        corner, grid).  When omitted, the table is resolved through the
        active characterization database first (see :mod:`repro.chardb`) and
        falls back to live characterization — the two are bit-identical by
        construction, so callers never observe which path ran.
    """

    def __init__(
        self,
        design: BusDesign,
        corner: PVTCorner,
        grid: VoltageGrid | None = None,
        flipflop_energy: FlipFlopEnergyParams | None = None,
        table: DelayEnergyTable | None = None,
    ) -> None:
        self.design = design
        self.corner = corner
        self.grid = grid if grid is not None else default_voltage_grid(design)
        if table is not None:
            if table.grid != self.grid:
                raise ValueError(
                    f"supplied table is sampled on {table.grid}, not the bus grid {self.grid}"
                )
            self.table: DelayEnergyTable = table
        else:
            self.table = self._resolve_table(corner)
        self.flipflop_energy = (
            flipflop_energy if flipflop_energy is not None else FlipFlopEnergyParams()
        )

    def _resolve_table(self, corner: PVTCorner) -> DelayEnergyTable:
        """Surfaces for this design at ``corner``: active chardb first, else live."""
        from repro.chardb.active import resolve_table

        return resolve_table(self.design, corner, self.grid)

    @classmethod
    def from_database(
        cls,
        database: CharacterizationDatabase,
        corner: PVTCorner,
        n_bits: int = 32,
        coupling_scale: float = 1.0,
        flipflop_energy: FlipFlopEnergyParams | None = None,
    ) -> CharacterizedBus:
        """A ready-to-simulate bus assembled purely from stored surfaces.

        Both the design (including its already-sized repeater chain) and the
        delay/energy table come out of the database — the circuit models and
        the repeater sizing flow are never invoked.  The equivalence suite
        (``tests/chardb``) holds the result bit-identical to live
        characterization.
        """
        return database.bus(
            corner, n_bits=n_bits, coupling_scale=coupling_scale, flipflop_energy=flipflop_energy
        )

    # ------------------------------------------------------------------ #
    # Trace analysis
    # ------------------------------------------------------------------ #
    def analyze(self, values: np.ndarray) -> TraceStatistics:
        """Compute voltage-independent per-cycle statistics of a data trace.

        ``values`` is an array of shape ``(n_cycles + 1, n_bits)`` of 0/1 bus
        words (the convention used by :class:`repro.trace.trace.BusTrace`).
        """
        transitions = transitions_from_values(values)
        topology = self.design.topology
        return TraceStatistics(
            worst_coupling=worst_coupling_factor_per_cycle(transitions, topology),
            toggles=toggle_counts(transitions),
            coupling_weights=coupling_energy_weights(transitions, topology),
        )

    def analyze_trace(self, trace: BusTrace, engine: str | None = None) -> TraceStatistics:
        """:meth:`analyze` for a :class:`BusTrace`, choosing a kernel engine.

        Delegates to the module-level :func:`analyze_trace_statistics`, which
        carries the full kernel-dispatch contract (bit-identical engines,
        scalar fallback for unsupported configurations).
        """
        return analyze_trace_statistics(trace, self.design.topology, engine=engine)

    def iter_statistics(
        self,
        workload: WorkloadLike,
        chunk_cycles: int | None = None,
        engine: str | None = None,
    ) -> Iterator[tuple[TraceStatistics, int]]:
        """Walk a workload as ``(chunk statistics, start cycle)`` pairs.

        Accepts pre-computed :class:`TraceStatistics` (yielded whole, or
        sliced when ``chunk_cycles`` is given), a :class:`BusTrace`, or any
        :class:`~repro.trace.stream.TraceSource`.  Never holds more than one
        chunk of per-cycle arrays for streamed workloads.  ``engine`` picks
        the kernel implementation (see :mod:`repro.bus.engine`); the
        vectorized engine streams packed chunks and prefers larger ones, but
        the yielded statistics are bit-identical for any engine/chunking.
        """
        engine = resolve_engine(engine)
        if isinstance(workload, TraceStatistics):
            if chunk_cycles is None:
                yield workload, 0
            else:
                for start in range(0, workload.n_cycles, chunk_cycles):
                    stop = min(start + chunk_cycles, workload.n_cycles)
                    yield workload.slice(start, stop), start
            return
        source = as_trace_source(workload)
        packed = kernel_engine(engine) == ENGINE_VECTORIZED and lanes_supported(source.n_bits)
        if chunk_cycles is None:
            # The scalar kernels (also the fallback when the lane kernels
            # cannot represent this bus) want small cache-resident chunks;
            # size by the path actually taken, not the requested name.
            chunk_cycles = default_chunk_cycles(engine if packed else ENGINE_SCALAR)
        for chunk in source.chunks(chunk_cycles, packed=packed):
            yield self.analyze_trace(chunk.trace, engine=engine), chunk.start_cycle

    def summarize(
        self,
        workload: WorkloadLike,
        chunk_cycles: int | None = None,
        engine: str | None = None,
        jobs: int | None = None,
        scheduler: "ParallelChunkScheduler" | None = None,
    ) -> TraceSummary:
        """Reduce a workload to a :class:`TraceSummary` in O(chunk) memory.

        With ``engine="parallel"``, ``jobs > 1`` or an explicit
        :class:`~repro.runtime.parallel.ParallelChunkScheduler`, the kernel
        work fans out to worker processes and the per-chunk summaries are
        merged in submission order -- bit-identical to the serial reduction
        because every accumulated quantity is exact (see
        :class:`TraceStatisticsAccumulator.merge_summary`).  Pre-computed
        :class:`TraceStatistics` workloads always reduce serially (there is
        no kernel work to parallelise).
        """
        parallel = scheduler is not None or (jobs is not None and jobs > 1) or (
            resolve_engine(engine) == ENGINE_PARALLEL
        )
        if parallel and not isinstance(workload, TraceStatistics):
            from repro.runtime.parallel import ChunkSegmenter, ParallelChunkScheduler

            source = as_trace_source(workload)
            segmenter = ChunkSegmenter(n_cycles=source.n_cycles)
            own = scheduler is None
            sched = (
                scheduler
                if scheduler is not None
                else ParallelChunkScheduler(n_workers=jobs if jobs is not None else 1)
            )
            try:
                summaries = sched.segment_summaries(
                    source,
                    segmenter,
                    self.design.topology,
                    engine=engine,
                    chunk_cycles=chunk_cycles,
                )
            finally:
                if own:
                    sched.close()
            accumulator = TraceStatisticsAccumulator()
            for summary in summaries:
                accumulator.merge_summary(summary)
            return accumulator.summary()
        accumulator = TraceStatisticsAccumulator()
        for stats, _ in self.iter_statistics(workload, chunk_cycles, engine=engine):
            accumulator.accumulate(stats)
        return accumulator.summary()

    # ------------------------------------------------------------------ #
    # Timing queries
    # ------------------------------------------------------------------ #
    def error_mask(self, stats: TraceStatistics, vdd: VoltageLike) -> np.ndarray:
        """Boolean mask of cycles whose worst wire misses the main deadline.

        ``vdd`` may be a scalar (static scaling) or a per-cycle array (the
        closed-loop DVS run).  Voltages must lie on the characterisation grid.
        """
        thresholds = self._failing_threshold(vdd, self.design.clocking.main_deadline)
        return stats.worst_coupling > thresholds

    def failure_mask(self, stats: TraceStatistics, vdd: VoltageLike) -> np.ndarray:
        """Cycles that would miss even the shadow-latch deadline (must be none)."""
        thresholds = self._failing_threshold(vdd, self.design.clocking.shadow_deadline)
        return stats.worst_coupling > thresholds

    def error_count(self, stats: StatisticsLike, vdd: float) -> int:
        """Errors at a constant supply, for per-cycle or reduced statistics."""
        threshold = self.table.failing_coupling_factor(
            float(vdd), self.design.clocking.main_deadline
        )
        if isinstance(stats, TraceSummary):
            return stats.error_count(threshold)
        return int(np.count_nonzero(stats.worst_coupling > threshold))

    def error_rate(self, stats: StatisticsLike, vdd: VoltageLike) -> float:
        """Fraction of cycles with a corrected timing error at the given supply."""
        if stats.n_cycles == 0:
            return 0.0
        if isinstance(stats, TraceSummary):
            if not np.isscalar(vdd):
                raise TypeError("TraceSummary supports only a constant supply voltage")
            return self.error_count(stats, float(vdd)) / stats.n_cycles
        return float(np.count_nonzero(self.error_mask(stats, vdd))) / stats.n_cycles

    def _failing_threshold(self, vdd: VoltageLike, deadline: float) -> VoltageLike:
        """Smallest coupling factor that misses ``deadline`` at ``vdd`` (vectorised)."""
        if np.isscalar(vdd):
            return self.table.failing_coupling_factor(float(vdd), deadline)
        indices = self.grid.indices_of(np.asarray(vdd, dtype=float))
        d0 = self.table.base_delay[indices]
        d1 = self.table.coupling_delay[indices]
        with np.errstate(divide="ignore", invalid="ignore"):
            thresholds = np.where(d1 > 0.0, (deadline - d0) / d1, np.inf)
        thresholds = np.where(np.asarray(d0) > deadline, 0.0, thresholds)
        return np.clip(thresholds, 0.0, None)

    def zero_error_voltage(self, deadline: float | None = None) -> float:
        """Lowest grid voltage at which the worst-case pattern meets the deadline.

        This is the voltage a conventional (error-intolerant) scheme could
        scale to at this corner; with the default deadline it defines the
        "0 % error rate" operating points of Fig. 5.
        """
        if deadline is None:
            deadline = self.design.clocking.main_deadline
        return self.table.min_voltage_meeting(
            deadline, self.design.topology.max_coupling_factor
        )

    def minimum_safe_voltage(self, assumed_corner: PVTCorner | None = None) -> float:
        """Regulator floor: lowest voltage that still meets the shadow-latch deadline.

        The paper sets this floor using only the (time-invariant) process
        corner while conservatively assuming worst-case temperature and IR
        drop; pass ``assumed_corner`` to reproduce that policy, otherwise the
        characterised corner itself is used.  A different assumed corner is
        resolved like the main table: active chardb first, live fallback.
        """
        if assumed_corner is None or assumed_corner == self.corner:
            table = self.table
        else:
            table = self._resolve_table(assumed_corner)
        return table.min_voltage_meeting(
            self.design.clocking.shadow_deadline, self.design.topology.max_coupling_factor
        )

    # ------------------------------------------------------------------ #
    # Energy queries
    # ------------------------------------------------------------------ #
    def dynamic_energy_per_cycle(self, stats: TraceStatistics, vdd: VoltageLike) -> np.ndarray:
        """Per-cycle dynamic switching energy (self + coupling) at ``vdd``."""
        vdd_array = np.asarray(vdd, dtype=float)
        self_term = 0.5 * self.table.self_capacitance_per_wire * stats.toggles
        coupling_term = 0.5 * self.table.coupling_capacitance_per_pair * stats.coupling_weights
        return (self_term + coupling_term) * vdd_array * vdd_array

    def energy_from_voltage_totals(
        self,
        cycle_counts: np.ndarray,
        toggle_totals: np.ndarray,
        weight_totals: np.ndarray,
        n_errors: int,
    ) -> EnergyBreakdown:
        """Assemble an energy breakdown from per-grid-voltage totals.

        This is the streaming pipeline's energy reduction: ``cycle_counts``,
        ``toggle_totals`` and ``weight_totals`` hold, per grid-voltage index,
        the cycles spent at that supply and the toggles / coupling weights
        switched there.  Because the inputs are exact integer totals and the
        final contraction runs in fixed grid order, the result is independent
        of how the run was chunked.
        """
        voltages = self.grid.voltages
        cycle_time = self.design.clocking.cycle_time
        self_term = 0.5 * self.table.self_capacitance_per_wire * np.asarray(toggle_totals)
        coupling_term = (
            0.5 * self.table.coupling_capacitance_per_pair * np.asarray(weight_totals)
        )
        dynamic = float(np.sum((self_term + coupling_term) * voltages * voltages))
        leakage = float(np.sum(self.table.leakage_power * np.asarray(cycle_counts))) * cycle_time
        n_cycles = int(np.sum(cycle_counts))
        ff_params = self.flipflop_energy
        clocking = ff_params.bank_clock_energy(self.design.n_bits) * n_cycles
        recovery = float(ff_params.recovery_energy(self.design.n_bits, n_errors))
        return EnergyBreakdown(
            bus_dynamic=dynamic,
            leakage=leakage,
            flipflop_clocking=clocking,
            recovery_overhead=recovery,
        )

    def energy_at_constant_supply(
        self,
        vdd: float,
        n_cycles: int,
        toggles_total: float,
        weights_total: float,
        n_errors: int = 0,
    ) -> EnergyBreakdown:
        """Energy of aggregate totals spent entirely at one grid supply.

        The scalar companion to :meth:`energy_from_voltage_totals`; it is also
        how the streaming paths build their nominal-supply references (all
        cycles scattered into the nominal grid index).
        """
        index = self.grid.index_of(float(vdd))
        counts = np.zeros(len(self.grid))
        toggles = np.zeros(len(self.grid))
        weights = np.zeros(len(self.grid))
        counts[index] = n_cycles
        toggles[index] = toggles_total
        weights[index] = weights_total
        return self.energy_from_voltage_totals(counts, toggles, weights, n_errors)

    def _summary_energy(
        self, summary: TraceSummary, vdd: float, n_errors: int
    ) -> EnergyBreakdown:
        """Energy of a summarised workload at one constant supply."""
        return self.energy_at_constant_supply(
            vdd, summary.n_cycles, summary.toggles_total, summary.coupling_weights_total, n_errors
        )

    def energy_breakdown(
        self,
        stats: StatisticsLike,
        vdd: VoltageLike,
        n_errors: int | None = None,
    ) -> EnergyBreakdown:
        """Total energy of the interval at ``vdd`` with ``n_errors`` recoveries.

        If ``n_errors`` is not given it is computed from the error mask at the
        same supply.  Reduced :class:`TraceSummary` statistics are supported
        for constant supplies.
        """
        if isinstance(stats, TraceSummary):
            if not np.isscalar(vdd):
                raise TypeError("TraceSummary supports only a constant supply voltage")
            if n_errors is None:
                n_errors = self.error_count(stats, float(vdd))
            return self._summary_energy(stats, float(vdd), n_errors)

        cycle_time = self.design.clocking.cycle_time
        dynamic = float(np.sum(self.dynamic_energy_per_cycle(stats, vdd)))

        if np.isscalar(vdd):
            leak_power = float(self.table.leakage_power[self.grid.index_of(float(vdd))])
            leakage = leak_power * cycle_time * stats.n_cycles
        else:
            indices = self.grid.indices_of(np.asarray(vdd, dtype=float))
            leakage = float(np.sum(self.table.leakage_power[indices])) * cycle_time

        if n_errors is None:
            n_errors = int(np.count_nonzero(self.error_mask(stats, vdd)))

        ff_params = self.flipflop_energy
        clocking = ff_params.bank_clock_energy(self.design.n_bits) * stats.n_cycles
        recovery = float(ff_params.recovery_energy(self.design.n_bits, n_errors))
        return EnergyBreakdown(
            bus_dynamic=dynamic,
            leakage=leakage,
            flipflop_clocking=clocking,
            recovery_overhead=recovery,
        )

    def nominal_energy(self, stats: StatisticsLike) -> EnergyBreakdown:
        """Energy of the interval at the nominal supply with no errors.

        This is the reference against which all energy gains are reported.
        """
        return self.energy_breakdown(stats, self.design.nominal_vdd, n_errors=0)
