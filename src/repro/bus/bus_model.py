"""Cycle-level behavioural model of the characterised bus.

The expensive per-cycle work -- classifying every wire's switching pattern and
summing the coupling-energy weights -- depends only on the data trace, not on
the supply voltage.  :class:`TraceStatistics` captures those per-cycle arrays
once; :class:`CharacterizedBus` then evaluates timing errors and energy for
any (possibly per-cycle) supply voltage with a handful of vectorised numpy
operations, which is what makes multi-million-cycle DVS simulations fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.bus.bus_design import BusDesign
from repro.bus.characterization import characterize_bus, default_voltage_grid
from repro.circuit.energy_model import FlipFlopEnergyParams
from repro.circuit.lookup_table import DelayEnergyTable, VoltageGrid
from repro.circuit.pvt import PVTCorner
from repro.energy.accounting import EnergyBreakdown
from repro.interconnect.crosstalk import (
    coupling_energy_weights,
    toggle_counts,
    transitions_from_values,
    worst_coupling_factor_per_cycle,
)

VoltageLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class TraceStatistics:
    """Voltage-independent per-cycle statistics of a data trace on a bus.

    All arrays have one entry per *transition* (i.e. ``n_values - 1``): the
    first bus word only establishes the initial state.

    Attributes
    ----------
    worst_coupling:
        Largest effective Miller coupling factor among switching wires in
        each cycle (0 when no wire switches).
    toggles:
        Number of switching wires per cycle.
    coupling_weights:
        Sum over adjacent pairs of the squared relative swing (in Vdd units)
        per cycle, for coupling-energy accounting.
    """

    worst_coupling: np.ndarray
    toggles: np.ndarray
    coupling_weights: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.worst_coupling)
        for name in ("worst_coupling", "toggles", "coupling_weights"):
            value = np.asarray(getattr(self, name), dtype=float)
            if value.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},), got {value.shape}")
            object.__setattr__(self, name, value)

    @property
    def n_cycles(self) -> int:
        """Number of simulated cycles (transitions)."""
        return len(self.worst_coupling)

    def slice(self, start: int, stop: int) -> "TraceStatistics":
        """Statistics of a contiguous sub-interval of cycles."""
        return TraceStatistics(
            worst_coupling=self.worst_coupling[start:stop],
            toggles=self.toggles[start:stop],
            coupling_weights=self.coupling_weights[start:stop],
        )

    def concatenate(self, other: "TraceStatistics") -> "TraceStatistics":
        """Concatenate two runs of statistics (back-to-back program execution)."""
        return TraceStatistics(
            worst_coupling=np.concatenate([self.worst_coupling, other.worst_coupling]),
            toggles=np.concatenate([self.toggles, other.toggles]),
            coupling_weights=np.concatenate([self.coupling_weights, other.coupling_weights]),
        )

    @property
    def mean_toggle_rate(self) -> float:
        """Average fraction of a 32-bit word switching per cycle (diagnostic)."""
        return float(np.mean(self.toggles))


class CharacterizedBus:
    """A bus design characterised at one PVT corner, ready for simulation.

    Parameters
    ----------
    design:
        The structural bus design.
    corner:
        PVT corner to characterise and simulate at.
    grid:
        Optional supply-voltage grid; defaults to 20 mV steps up to nominal.
    flipflop_energy:
        Energy parameters of the receiving double-sampling flip-flop bank.
    """

    def __init__(
        self,
        design: BusDesign,
        corner: PVTCorner,
        grid: Optional[VoltageGrid] = None,
        flipflop_energy: Optional[FlipFlopEnergyParams] = None,
    ) -> None:
        self.design = design
        self.corner = corner
        self.grid = grid if grid is not None else default_voltage_grid(design)
        self.table: DelayEnergyTable = characterize_bus(design, corner, self.grid)
        self.flipflop_energy = (
            flipflop_energy if flipflop_energy is not None else FlipFlopEnergyParams()
        )

    # ------------------------------------------------------------------ #
    # Trace analysis
    # ------------------------------------------------------------------ #
    def analyze(self, values: np.ndarray) -> TraceStatistics:
        """Compute voltage-independent per-cycle statistics of a data trace.

        ``values`` is an array of shape ``(n_cycles + 1, n_bits)`` of 0/1 bus
        words (the convention used by :class:`repro.trace.trace.BusTrace`).
        """
        transitions = transitions_from_values(values)
        topology = self.design.topology
        return TraceStatistics(
            worst_coupling=worst_coupling_factor_per_cycle(transitions, topology),
            toggles=toggle_counts(transitions),
            coupling_weights=coupling_energy_weights(transitions, topology),
        )

    # ------------------------------------------------------------------ #
    # Timing queries
    # ------------------------------------------------------------------ #
    def error_mask(self, stats: TraceStatistics, vdd: VoltageLike) -> np.ndarray:
        """Boolean mask of cycles whose worst wire misses the main deadline.

        ``vdd`` may be a scalar (static scaling) or a per-cycle array (the
        closed-loop DVS run).  Voltages must lie on the characterisation grid.
        """
        thresholds = self._failing_threshold(vdd, self.design.clocking.main_deadline)
        return stats.worst_coupling > thresholds

    def failure_mask(self, stats: TraceStatistics, vdd: VoltageLike) -> np.ndarray:
        """Cycles that would miss even the shadow-latch deadline (must be none)."""
        thresholds = self._failing_threshold(vdd, self.design.clocking.shadow_deadline)
        return stats.worst_coupling > thresholds

    def error_rate(self, stats: TraceStatistics, vdd: VoltageLike) -> float:
        """Fraction of cycles with a corrected timing error at the given supply."""
        if stats.n_cycles == 0:
            return 0.0
        return float(np.count_nonzero(self.error_mask(stats, vdd))) / stats.n_cycles

    def _failing_threshold(self, vdd: VoltageLike, deadline: float) -> VoltageLike:
        """Smallest coupling factor that misses ``deadline`` at ``vdd`` (vectorised)."""
        if np.isscalar(vdd):
            return self.table.failing_coupling_factor(float(vdd), deadline)
        indices = self.grid.indices_of(np.asarray(vdd, dtype=float))
        d0 = self.table.base_delay[indices]
        d1 = self.table.coupling_delay[indices]
        with np.errstate(divide="ignore", invalid="ignore"):
            thresholds = np.where(d1 > 0.0, (deadline - d0) / d1, np.inf)
        thresholds = np.where(np.asarray(d0) > deadline, 0.0, thresholds)
        return np.clip(thresholds, 0.0, None)

    def zero_error_voltage(self, deadline: Optional[float] = None) -> float:
        """Lowest grid voltage at which the worst-case pattern meets the deadline.

        This is the voltage a conventional (error-intolerant) scheme could
        scale to at this corner; with the default deadline it defines the
        "0 % error rate" operating points of Fig. 5.
        """
        if deadline is None:
            deadline = self.design.clocking.main_deadline
        return self.table.min_voltage_meeting(
            deadline, self.design.topology.max_coupling_factor
        )

    def minimum_safe_voltage(self, assumed_corner: Optional[PVTCorner] = None) -> float:
        """Regulator floor: lowest voltage that still meets the shadow-latch deadline.

        The paper sets this floor using only the (time-invariant) process
        corner while conservatively assuming worst-case temperature and IR
        drop; pass ``assumed_corner`` to reproduce that policy, otherwise the
        characterised corner itself is used.
        """
        if assumed_corner is None or assumed_corner == self.corner:
            table = self.table
        else:
            table = characterize_bus(self.design, assumed_corner, self.grid)
        return table.min_voltage_meeting(
            self.design.clocking.shadow_deadline, self.design.topology.max_coupling_factor
        )

    # ------------------------------------------------------------------ #
    # Energy queries
    # ------------------------------------------------------------------ #
    def dynamic_energy_per_cycle(self, stats: TraceStatistics, vdd: VoltageLike) -> np.ndarray:
        """Per-cycle dynamic switching energy (self + coupling) at ``vdd``."""
        vdd_array = np.asarray(vdd, dtype=float)
        self_term = 0.5 * self.table.self_capacitance_per_wire * stats.toggles
        coupling_term = 0.5 * self.table.coupling_capacitance_per_pair * stats.coupling_weights
        return (self_term + coupling_term) * vdd_array * vdd_array

    def energy_breakdown(
        self,
        stats: TraceStatistics,
        vdd: VoltageLike,
        n_errors: Optional[int] = None,
    ) -> EnergyBreakdown:
        """Total energy of the interval at ``vdd`` with ``n_errors`` recoveries.

        If ``n_errors`` is not given it is computed from the error mask at the
        same supply.
        """
        cycle_time = self.design.clocking.cycle_time
        dynamic = float(np.sum(self.dynamic_energy_per_cycle(stats, vdd)))

        if np.isscalar(vdd):
            leak_power = float(self.table.leakage_power[self.grid.index_of(float(vdd))])
            leakage = leak_power * cycle_time * stats.n_cycles
        else:
            indices = self.grid.indices_of(np.asarray(vdd, dtype=float))
            leakage = float(np.sum(self.table.leakage_power[indices])) * cycle_time

        if n_errors is None:
            n_errors = int(np.count_nonzero(self.error_mask(stats, vdd)))

        ff_params = self.flipflop_energy
        clocking = ff_params.bank_clock_energy(self.design.n_bits) * stats.n_cycles
        recovery = float(ff_params.recovery_energy(self.design.n_bits, n_errors))
        return EnergyBreakdown(
            bus_dynamic=dynamic,
            leakage=leakage,
            flipflop_clocking=clocking,
            recovery_overhead=recovery,
        )

    def nominal_energy(self, stats: TraceStatistics) -> EnergyBreakdown:
        """Energy of the interval at the nominal supply with no errors.

        This is the reference against which all energy gains are reported.
        """
        return self.energy_breakdown(stats, self.design.nominal_vdd, n_errors=0)
