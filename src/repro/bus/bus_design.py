"""Structural description of the DVS bus (the paper's Fig. 3 test vehicle).

A :class:`BusDesign` bundles the technology, the wire geometry and parasitics,
the shielding topology, the repeater chain and the clocking constraints into a
single immutable object.  :meth:`BusDesign.paper_bus` constructs the exact
configuration evaluated in the paper: a 6 mm, 32-bit bus at minimum pitch on a
global metal layer of a 0.13 um process, with a shield after every four signal
wires, repeaters every 1.5 mm sized for a 600 ps worst-case delay at the
worst-case PVT corner, clocked at 1.5 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.circuit.delay_model import DriverDelayModel
from repro.circuit.mosfet import AlphaPowerModel
from repro.circuit.pvt import WORST_CASE_CORNER, PVTCorner
from repro.clocking import PAPER_CLOCKING, ClockingParameters
from repro.interconnect.crosstalk import NeighborTopology, grouped_shield_topology
from repro.interconnect.parasitics import (
    SegmentParasitics,
    WireParasitics,
    extract_parasitics,
    scale_coupling_ratio,
)
from repro.interconnect.repeater import RepeaterChain, size_for_target_delay
from repro.interconnect.technology import TECH_130NM, TechnologyNode
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BusDesign:
    """A fully specified on-chip bus ready for characterisation.

    Attributes
    ----------
    technology:
        Process node the bus is built in.
    n_bits:
        Number of signal wires.
    length:
        Total routed length in metres.
    n_segments:
        Number of repeated segments (repeaters every ``length / n_segments``).
    parasitics:
        Per-unit-length wire parasitics.
    topology:
        Shielding / adjacency structure of the signal wires.
    repeaters:
        The sized repeater chain of each wire.
    clocking:
        Clock frequency and receiver timing budget.
    design_corner:
        The PVT corner the repeaters were sized at (the worst-case corner for
        the paper's design philosophy).
    """

    technology: TechnologyNode
    n_bits: int
    length: float
    n_segments: int
    parasitics: WireParasitics
    topology: NeighborTopology
    repeaters: RepeaterChain
    clocking: ClockingParameters
    design_corner: PVTCorner

    def __post_init__(self) -> None:
        if self.n_bits <= 0:
            raise ValueError(f"n_bits must be positive, got {self.n_bits}")
        if self.n_segments <= 0:
            raise ValueError(f"n_segments must be positive, got {self.n_segments}")
        check_positive("length", self.length)
        if self.topology.n_wires != self.n_bits:
            raise ValueError(
                f"topology covers {self.topology.n_wires} wires but the bus has {self.n_bits}"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def segment_length(self) -> float:
        """Length of one repeated wire segment."""
        return self.length / self.n_segments

    @property
    def segment_parasitics(self) -> SegmentParasitics:
        """Lumped parasitics of one wire segment."""
        return self.parasitics.for_length(self.segment_length)

    @property
    def nominal_vdd(self) -> float:
        """Nominal supply voltage of the technology (1.2 V for the paper)."""
        return self.technology.nominal_vdd

    def driver_model(self) -> DriverDelayModel:
        """Driver delay model built from the technology's device parameters."""
        return DriverDelayModel(AlphaPowerModel(self.technology.transistor))

    def wire_self_capacitance(self) -> float:
        """Switched self-capacitance of one full wire (ground cap + repeater parasitics)."""
        wire_cap = self.parasitics.ground_cap_per_meter * self.length
        model = self.driver_model()
        repeater_cap = self.n_segments * (
            model.gate_capacitance(self.repeaters.size) + model.drain_capacitance(self.repeaters.size)
        )
        return wire_cap + repeater_cap + self.repeaters.receiver_capacitance

    def pair_coupling_capacitance(self) -> float:
        """Coupling capacitance of one adjacent pair over the full bus length."""
        return self.parasitics.coupling_cap_per_meter * self.length

    def total_repeater_size(self) -> float:
        """Total repeater drive strength on the bus (for leakage accounting)."""
        return self.repeaters.total_repeater_size(self.n_bits)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def paper_bus(
        cls,
        technology: TechnologyNode = TECH_130NM,
        *,
        n_bits: int = 32,
        length: float = 6.0e-3,
        n_segments: int = 4,
        shield_group: int = 4,
        clocking: ClockingParameters = PAPER_CLOCKING,
        design_corner: PVTCorner = WORST_CASE_CORNER,
        secondary_weight: float = 0.15,
        parasitics: WireParasitics | None = None,
    ) -> BusDesign:
        """Build the paper's bus and size its repeaters for the design corner.

        The repeaters are sized so the worst-case switching pattern meets the
        main flip-flop deadline (600 ps at 1.5 GHz with 10 % setup slack) at
        the worst-case PVT corner and nominal supply -- exactly the paper's
        design procedure.
        """
        if parasitics is None:
            geometry = technology.wire_geometry(length)
            parasitics = extract_parasitics(
                geometry, technology.resistivity, technology.dielectric_constant
            )
        topology = grouped_shield_topology(n_bits, shield_group, secondary_weight)
        driver_model = DriverDelayModel(AlphaPowerModel(technology.transistor))
        segment = parasitics.for_length(length / n_segments)
        repeaters = size_for_target_delay(
            target_delay=clocking.main_deadline,
            vdd=technology.nominal_vdd,
            corner=design_corner,
            segment=segment,
            driver_model=driver_model,
            n_segments=n_segments,
            max_coupling_factor=topology.max_coupling_factor,
        )
        return cls(
            technology=technology,
            n_bits=n_bits,
            length=length,
            n_segments=n_segments,
            parasitics=parasitics,
            topology=topology,
            repeaters=repeaters,
            clocking=clocking,
            design_corner=design_corner,
        )

    def with_modified_coupling(self, ratio_multiplier: float) -> BusDesign:
        """The Section 6 "modified bus": higher Cc/Cg at constant worst-case load.

        The repeater sizes are intentionally *not* changed, because the
        worst-case delay is unchanged by construction -- this mirrors the
        paper's statement that "repeater sizes are unchanged since the
        worst-case delay does not change".  The preserved load uses the
        topology's attainable worst-case coupling factor so the invariant
        holds for the same pattern the timing model sizes against.
        """
        modified = scale_coupling_ratio(
            self.parasitics, ratio_multiplier, self.topology.max_coupling_factor
        )
        return replace(self, parasitics=modified)

    def with_clocking(self, clocking: ClockingParameters) -> BusDesign:
        """Return a copy of this design with different clocking parameters.

        Note that the repeater sizing is not revisited; use
        :meth:`paper_bus` to re-run the design flow for a new frequency.
        """
        return replace(self, clocking=clocking)
