"""Simulation-engine selection: vectorized block kernels vs the scalar reference.

Every layer that turns bus words into per-cycle statistics accepts an
``engine`` argument:

``"vectorized"`` (the default)
    Whole-chunk integer-lane kernels (:mod:`repro.interconnect.block_kernels`)
    over the packed bit representation, with the voltage-scaling controller
    advanced per measurement *window* rather than per cycle.  This is the
    paper-scale fast path (roughly an order of magnitude faster than the
    reference); configurations the lane kernels cannot represent (buses wider
    than 64 wires, big-endian hosts) transparently use the scalar kernels for
    the affected chunks, so results never depend on the host.

``"scalar"``
    The original per-wire reference implementation
    (:mod:`repro.interconnect.crosstalk` over unpacked 0/1 arrays).  It is
    kept both as executable documentation of the model and as the oracle the
    equivalence tests hold the vectorized engine to: **both engines are
    bit-identical** on every statistic, energy total and control decision,
    for any chunk size.

``"parallel"``
    The two-pass multicore engine: a fan-out statistics pass where worker
    processes run the *vectorized* kernels over disjoint chunk ranges, then a
    cheap sequential controller-replay pass over the per-segment summaries
    (:mod:`repro.runtime.parallel`).  Results are **bit-identical** to both
    serial engines for any chunk size and worker count -- the per-segment
    reductions are exact, so merge grouping cannot change a single bit.  The
    worker count is a separate ``jobs`` argument; with one worker (or in
    environments without process pools) the two-pass pipeline runs inline,
    still bit-identical.  Layers that only compute per-chunk statistics
    (e.g. :meth:`~repro.bus.bus_model.CharacterizedBus.analyze_trace`) treat
    ``"parallel"`` as the vectorized kernels via :func:`kernel_engine`.

``None`` always means "the default engine", so callers can thread an optional
engine argument without repeating the default.
"""

from __future__ import annotations


#: The fast integer-lane block engine (the default).
ENGINE_VECTORIZED = "vectorized"
#: The scalar reference implementation the vectorized engine is tested against.
ENGINE_SCALAR = "scalar"
#: The two-pass multicore engine (vectorized kernels in worker processes).
ENGINE_PARALLEL = "parallel"
#: All selectable engines.
ENGINES = (ENGINE_VECTORIZED, ENGINE_SCALAR, ENGINE_PARALLEL)
#: Engine used when none is requested.
DEFAULT_ENGINE = ENGINE_VECTORIZED

#: Default streaming granularity per engine.  The scalar kernels allocate
#: ~1.5 kB of float temporaries per cycle, so small chunks keep them cache
#: resident; the lane kernels touch ~50 bytes per cycle and instead want
#: chunks big enough to amortise per-call numpy overhead.  Results are
#: bit-identical for any chunk size either way.
SCALAR_CHUNK_CYCLES = 25_000
VECTORIZED_CHUNK_CYCLES = 262_144


def resolve_engine(engine: str | None) -> str:
    """Validate an engine name, mapping ``None`` to the default."""
    if engine is None:
        return DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    return engine


def kernel_engine(engine: str | None) -> str:
    """The kernel implementation an engine computes per-cycle statistics with.

    The parallel engine changes *scheduling*, not arithmetic: its workers run
    the vectorized block kernels, so statistics layers that only need a kernel
    choice map ``"parallel"`` to ``"vectorized"`` here.
    """
    resolved = resolve_engine(engine)
    if resolved == ENGINE_PARALLEL:
        return ENGINE_VECTORIZED
    return resolved


def default_chunk_cycles(engine: str | None) -> int:
    """The default streaming chunk size of an engine."""
    if kernel_engine(engine) == ENGINE_VECTORIZED:
        return VECTORIZED_CHUNK_CYCLES
    return SCALAR_CHUNK_CYCLES
