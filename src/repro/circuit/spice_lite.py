"""A small linear RC transient solver (the "SPICE substitute").

The paper tabulates bus delay and energy with HSPICE.  This module provides a
miniature nodal-analysis transient solver for linear RC networks driven by
resistive step sources, sufficient to simulate a coupled, repeated bus segment
and cross-check the closed-form Elmore characterisation used by the fast path.

The solver implements:

* conductance (G) and capacitance (C) stamping for resistors, grounded
  capacitors and floating coupling capacitors,
* ideal step/piecewise-linear sources connected through a series resistance
  (a Thevenin driver, matching how the repeater is abstracted), and
* trapezoidal (Crank-Nicolson) time integration, which is A-stable and
  second-order accurate -- the standard choice for SPICE-class tools.

It intentionally does not model nonlinear devices; the nonlinearity of the
driver is captured by the alpha-power-law resistance in
:mod:`repro.circuit.mosfet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

import numpy as np

from repro.utils.validation import check_positive

SourceWaveform = Callable[[float], float]


@dataclass
class _ResistiveSource:
    node: int
    resistance: float
    waveform: SourceWaveform


@dataclass
class TransientResult:
    """Waveforms produced by :meth:`RCNetwork.simulate`."""

    times: np.ndarray
    voltages: np.ndarray  # shape (n_steps, n_nodes)
    node_names: dict[str, int] = field(default_factory=dict)

    def voltage_of(self, node: "int | str") -> np.ndarray:
        """Waveform of one node, by index or by registered name."""
        index = self.node_names[node] if isinstance(node, str) else node
        return self.voltages[:, index]

    def crossing_time(
        self, node: "int | str", threshold: float, *, rising: bool = True
    ) -> float:
        """First time the node's waveform crosses ``threshold``.

        Linear interpolation is used between time points.  Raises
        ``ValueError`` if the threshold is never crossed, which callers treat
        as "no transition within the simulated window".
        """
        wave = self.voltage_of(node)
        if rising:
            above = wave >= threshold
        else:
            above = wave <= threshold
        indices = np.nonzero(above)[0]
        if indices.size == 0:
            raise ValueError(f"node {node!r} never crosses {threshold}")
        i = int(indices[0])
        if i == 0:
            return float(self.times[0])
        t0, t1 = self.times[i - 1], self.times[i]
        v0, v1 = wave[i - 1], wave[i]
        if v1 == v0:
            return float(t1)
        frac = (threshold - v0) / (v1 - v0)
        return float(t0 + frac * (t1 - t0))


class RCNetwork:
    """A linear RC network with resistive step drivers.

    Nodes are created on demand with :meth:`node`; node 0 is *not* special --
    ground is implicit (connect elements to ``None`` for ground).
    """

    def __init__(self) -> None:
        self._n_nodes = 0
        self._names: dict[str, int] = {}
        self._resistors: list[tuple[int | None, int | None, float]] = []
        self._capacitors: list[tuple[int | None, int | None, float]] = []
        self._sources: list[_ResistiveSource] = []

    # ------------------------------------------------------------------ #
    # Topology construction
    # ------------------------------------------------------------------ #
    def node(self, name: str | None = None) -> int:
        """Create a new node and return its index, optionally registering a name."""
        index = self._n_nodes
        self._n_nodes += 1
        if name is not None:
            if name in self._names:
                raise ValueError(f"node name {name!r} already used")
            self._names[name] = index
        return index

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes in the network."""
        return self._n_nodes

    def _check_node(self, node: int | None) -> None:
        if node is not None and not (0 <= node < self._n_nodes):
            raise ValueError(f"unknown node index {node}")

    def add_resistor(self, a: int | None, b: int | None, resistance: float) -> None:
        """Add a resistor between nodes ``a`` and ``b`` (``None`` = ground)."""
        check_positive("resistance", resistance)
        self._check_node(a)
        self._check_node(b)
        self._resistors.append((a, b, resistance))

    def add_capacitor(self, a: int | None, b: int | None, capacitance: float) -> None:
        """Add a capacitor between nodes ``a`` and ``b`` (``None`` = ground)."""
        check_positive("capacitance", capacitance, strict=False)
        self._check_node(a)
        self._check_node(b)
        self._capacitors.append((a, b, capacitance))

    def add_driver(
        self, node: int, resistance: float, waveform: SourceWaveform
    ) -> None:
        """Attach a voltage source through a series resistance to ``node``.

        This is the Thevenin abstraction of a repeater: an ideal waveform
        (usually a step between rails) behind the device's effective
        switching resistance.
        """
        check_positive("resistance", resistance)
        self._check_node(node)
        self._sources.append(_ResistiveSource(node, resistance, waveform))

    # ------------------------------------------------------------------ #
    # Matrix assembly
    # ------------------------------------------------------------------ #
    def _assemble(self) -> tuple[np.ndarray, np.ndarray]:
        n = self._n_nodes
        conductance = np.zeros((n, n))
        capacitance = np.zeros((n, n))

        def stamp(matrix: np.ndarray, a: int | None, b: int | None, value: float) -> None:
            if a is not None:
                matrix[a, a] += value
            if b is not None:
                matrix[b, b] += value
            if a is not None and b is not None:
                matrix[a, b] -= value
                matrix[b, a] -= value

        for a, b, resistance in self._resistors:
            stamp(conductance, a, b, 1.0 / resistance)
        for a, b, cap in self._capacitors:
            stamp(capacitance, a, b, cap)
        for source in self._sources:
            conductance[source.node, source.node] += 1.0 / source.resistance
        return conductance, capacitance

    def _source_currents(self, time: float) -> np.ndarray:
        currents = np.zeros(self._n_nodes)
        for source in self._sources:
            currents[source.node] += source.waveform(time) / source.resistance
        return currents

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        t_end: float,
        dt: float,
        initial_voltages: Sequence[float] | None = None,
    ) -> TransientResult:
        """Run a trapezoidal transient simulation from 0 to ``t_end``.

        Parameters
        ----------
        t_end:
            Simulation end time in seconds.
        dt:
            Fixed time step in seconds.
        initial_voltages:
            Initial node voltages; defaults to all zero.
        """
        check_positive("t_end", t_end)
        check_positive("dt", dt)
        if self._n_nodes == 0:
            raise ValueError("network has no nodes")
        conductance, capacitance = self._assemble()
        n_steps = int(np.ceil(t_end / dt)) + 1
        times = np.arange(n_steps) * dt

        voltages = np.zeros((n_steps, self._n_nodes))
        if initial_voltages is not None:
            initial = np.asarray(initial_voltages, dtype=float)
            if initial.shape != (self._n_nodes,):
                raise ValueError(
                    f"initial_voltages must have shape ({self._n_nodes},), got {initial.shape}"
                )
            voltages[0] = initial

        # Trapezoidal: (C/dt + G/2) v_{k+1} = (C/dt - G/2) v_k + (i_k + i_{k+1})/2
        lhs = capacitance / dt + conductance / 2.0
        rhs_matrix = capacitance / dt - conductance / 2.0
        lhs_inv = np.linalg.pinv(lhs)

        current_prev = self._source_currents(times[0])
        for k in range(1, n_steps):
            current_next = self._source_currents(times[k])
            rhs = rhs_matrix @ voltages[k - 1] + 0.5 * (current_prev + current_next)
            voltages[k] = lhs_inv @ rhs
            current_prev = current_next

        return TransientResult(times=times, voltages=voltages, node_names=dict(self._names))


def step_waveform(level: float, start_time: float = 0.0, *, initial: float = 0.0) -> SourceWaveform:
    """Ideal step from ``initial`` to ``level`` at ``start_time``."""
    def waveform(time: float) -> float:
        return level if time >= start_time else initial

    return waveform


def build_coupled_line(
    n_wires: int,
    sections_per_wire: int,
    wire_resistance: float,
    ground_capacitance: float,
    coupling_capacitance: float,
    driver_resistances: Sequence[float],
    driver_waveforms: Sequence[SourceWaveform],
    load_capacitance: float = 0.0,
) -> tuple[RCNetwork, list[int]]:
    """Construct an ``n_wires``-bit coupled RC line as a ladder network.

    Each wire is split into ``sections_per_wire`` pi-sections.  Adjacent wires
    are coupled section-by-section with ``coupling_capacitance / sections``.
    Returns the network and the list of far-end (receiver) node indices, one
    per wire.
    """
    if n_wires <= 0 or sections_per_wire <= 0:
        raise ValueError("n_wires and sections_per_wire must be positive")
    if len(driver_resistances) != n_wires or len(driver_waveforms) != n_wires:
        raise ValueError("need one driver resistance and waveform per wire")

    network = RCNetwork()
    r_section = wire_resistance / sections_per_wire
    cg_section = ground_capacitance / sections_per_wire
    cc_section = coupling_capacitance / sections_per_wire

    nodes = [
        [network.node(f"w{w}_n{s}") for s in range(sections_per_wire + 1)]
        for w in range(n_wires)
    ]
    for w in range(n_wires):
        network.add_driver(nodes[w][0], driver_resistances[w], driver_waveforms[w])
        for s in range(sections_per_wire):
            network.add_resistor(nodes[w][s], nodes[w][s + 1], r_section)
        for s in range(sections_per_wire + 1):
            # half caps at the ends, full in the middle (pi model)
            scale = 0.5 if s in (0, sections_per_wire) else 1.0
            network.add_capacitor(nodes[w][s], None, cg_section * scale)
        if load_capacitance > 0.0:
            network.add_capacitor(nodes[w][-1], None, load_capacitance)
    for w in range(n_wires - 1):
        for s in range(sections_per_wire + 1):
            scale = 0.5 if s in (0, sections_per_wire) else 1.0
            network.add_capacitor(nodes[w][s], nodes[w + 1][s], cc_section * scale)

    receiver_nodes = [nodes[w][-1] for w in range(n_wires)]
    return network, receiver_nodes
