"""Alpha-power-law MOSFET model used for the repeater/driver devices.

The paper characterises the bus with HSPICE on a 0.13 um CMOS process.  We
replace the BSIM device models with Sakurai's alpha-power law, which captures
the two effects the DVS study depends on:

* the super-linear increase of gate delay as the supply approaches the
  threshold voltage, and
* the shift of drive strength (and threshold) with process corner and
  temperature.

The model provides drive current, an effective switching resistance, gate and
drain capacitances, and sub-threshold leakage for an inverter of a given size
(expressed as a multiple of the minimum inverter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.circuit.pvt import ProcessCorner, PVTCorner
from repro.utils.units import CELSIUS_TO_KELVIN
from repro.utils.validation import check_positive

#: Boltzmann constant over elementary charge (thermal voltage per kelvin).
BOLTZMANN_OVER_Q = 8.617333262e-5


@dataclass(frozen=True)
class TransistorParams:
    """Technology-level device parameters for the alpha-power-law model.

    The default values target a generic 0.13 um CMOS process with a nominal
    supply of 1.2 V.  They are calibrated (see ``tests/circuit`` and the
    calibration notes in DESIGN.md) so that the voltage at which the bus first
    meets its worst-case timing target at each PVT corner reproduces the
    paper's reported slack (e.g. error-free operation down to ~0.98 V at the
    typical / 100 C / no-IR-drop corner).
    """

    #: Nominal threshold voltage at 25 C per process corner (volts).
    vth0: dict[ProcessCorner, float] = field(
        default_factory=lambda: {
            ProcessCorner.SLOW: 0.350,
            ProcessCorner.TYPICAL: 0.320,
            ProcessCorner.FAST: 0.295,
        }
    )
    #: Relative drive-strength (transconductance) multiplier per corner.
    drive_factor: dict[ProcessCorner, float] = field(
        default_factory=lambda: {
            ProcessCorner.SLOW: 0.93,
            ProcessCorner.TYPICAL: 1.00,
            ProcessCorner.FAST: 1.06,
        }
    )
    #: Velocity-saturation (alpha-power) exponent.
    alpha: float = 1.6
    #: Threshold-voltage temperature coefficient (V per degree C, negative).
    vth_temp_coeff: float = -7.0e-4
    #: Mobility temperature exponent: mobility ~ (T/T0)^(-mobility_temp_exp).
    mobility_temp_exp: float = 1.0
    #: Reference temperature for drive-strength normalisation (Celsius).
    reference_temperature_c: float = 25.0
    #: Drive current of a minimum inverter at (typical, 25 C, 1.2 V) in amps.
    unit_drive_current: float = 2.2e-4
    #: Effective-resistance fitting factor (R_eff = fit * Vdd / I_on).
    resistance_fit: float = 0.80
    #: Gate capacitance of a minimum inverter (farads).
    unit_gate_cap: float = 2.0e-15
    #: Drain (self-load) capacitance of a minimum inverter (farads).
    unit_drain_cap: float = 1.6e-15
    #: Sub-threshold leakage of a minimum inverter at (typical, 25 C, 1.2 V).
    unit_leakage_current: float = 2.0e-9
    #: Sub-threshold swing ideality factor.
    subthreshold_n: float = 1.5
    #: DIBL coefficient (leakage sensitivity to Vdd, per volt of Vdd).
    dibl: float = 0.08

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha)
        check_positive("unit_drive_current", self.unit_drive_current)
        check_positive("unit_gate_cap", self.unit_gate_cap)
        check_positive("unit_drain_cap", self.unit_drain_cap)
        check_positive("unit_leakage_current", self.unit_leakage_current)
        for corner in ProcessCorner:
            if corner not in self.vth0:
                raise ValueError(f"vth0 missing entry for {corner}")
            if corner not in self.drive_factor:
                raise ValueError(f"drive_factor missing entry for {corner}")


class AlphaPowerModel:
    """Evaluate drive strength, delay resistance and leakage of an inverter.

    Parameters
    ----------
    params:
        Device parameters.  Defaults to a calibrated 0.13 um set.
    """

    def __init__(self, params: TransistorParams | None = None) -> None:
        self.params = params if params is not None else TransistorParams()

    # ------------------------------------------------------------------ #
    # Threshold / mobility
    # ------------------------------------------------------------------ #
    def threshold_voltage(self, corner: ProcessCorner, temperature_c: float) -> float:
        """Threshold voltage at the given corner and temperature."""
        p = self.params
        delta_t = temperature_c - p.reference_temperature_c
        return p.vth0[corner] + p.vth_temp_coeff * delta_t

    def mobility_factor(self, temperature_c: float) -> float:
        """Relative carrier mobility versus the reference temperature."""
        p = self.params
        t_kelvin = temperature_c + CELSIUS_TO_KELVIN
        t_ref = p.reference_temperature_c + CELSIUS_TO_KELVIN
        return (t_kelvin / t_ref) ** (-p.mobility_temp_exp)

    # ------------------------------------------------------------------ #
    # Drive current and effective resistance
    # ------------------------------------------------------------------ #
    def drive_current(
        self,
        vdd: float,
        corner: ProcessCorner,
        temperature_c: float,
        size: float = 1.0,
    ) -> float:
        """Saturation drive current of an inverter of the given size.

        Returns 0.0 when the supply is at or below the threshold voltage
        (the device no longer switches in strong inversion); callers treat a
        zero current as "infinitely slow".
        """
        check_positive("size", size)
        p = self.params
        vth = self.threshold_voltage(corner, temperature_c)
        overdrive = vdd - vth
        if overdrive <= 0.0:
            return 0.0
        strength = p.drive_factor[corner] * self.mobility_factor(temperature_c)
        nominal_overdrive = 1.2 - p.vth0[ProcessCorner.TYPICAL]
        normalised = (overdrive / nominal_overdrive) ** p.alpha
        return p.unit_drive_current * size * strength * normalised

    def effective_resistance(
        self,
        vdd: float,
        corner: ProcessCorner,
        temperature_c: float,
        size: float = 1.0,
    ) -> float:
        """Effective switching resistance of an inverter of the given size.

        Modelled as ``fit * Vdd / I_on``; returns ``math.inf`` below
        threshold.
        """
        current = self.drive_current(vdd, corner, temperature_c, size)
        if current == 0.0:
            return math.inf
        return self.params.resistance_fit * vdd / current

    def drive_resistance(self, corner_vdd: float, corner: PVTCorner, size: float = 1.0) -> float:
        """Convenience wrapper taking a :class:`PVTCorner` and the *effective*
        (post-IR-drop) supply voltage."""
        return self.effective_resistance(corner_vdd, corner.process, corner.temperature_c, size)

    # ------------------------------------------------------------------ #
    # Capacitance
    # ------------------------------------------------------------------ #
    def gate_capacitance(self, size: float = 1.0) -> float:
        """Input (gate) capacitance of an inverter of the given size."""
        check_positive("size", size)
        return self.params.unit_gate_cap * size

    def drain_capacitance(self, size: float = 1.0) -> float:
        """Output (drain/self-load) capacitance of an inverter of the given size."""
        check_positive("size", size)
        return self.params.unit_drain_cap * size

    # ------------------------------------------------------------------ #
    # Leakage
    # ------------------------------------------------------------------ #
    def leakage_current(
        self,
        vdd: float,
        corner: ProcessCorner,
        temperature_c: float,
        size: float = 1.0,
    ) -> float:
        """Sub-threshold leakage current of an inverter of the given size.

        Uses the standard exponential sub-threshold model with DIBL.  Leakage
        increases with temperature (through the thermal voltage and the lower
        threshold) and decreases as the supply is scaled down.
        """
        check_positive("size", size)
        p = self.params
        vth = self.threshold_voltage(corner, temperature_c)
        vth_ref = p.vth0[ProcessCorner.TYPICAL]
        thermal = BOLTZMANN_OVER_Q * (temperature_c + CELSIUS_TO_KELVIN)
        thermal_ref = BOLTZMANN_OVER_Q * (p.reference_temperature_c + CELSIUS_TO_KELVIN)
        exponent = (
            -(vth - p.dibl * vdd) / (p.subthreshold_n * thermal)
            + (vth_ref - p.dibl * 1.2) / (p.subthreshold_n * thermal_ref)
        )
        return p.unit_leakage_current * size * math.exp(exponent)
