"""Energy primitives: switching, coupling, leakage and flip-flop clocking.

Energy on the bus has four components in this reproduction, mirroring the
paper's accounting:

* dynamic self-capacitance switching energy of each toggling wire (including
  the repeater gate/drain capacitances along the wire),
* dynamic coupling energy between adjacent wires (and between edge wires and
  their shields), which depends on the *relative* transition of the pair,
* repeater sub-threshold leakage integrated over the clock period, and
* an error-recovery overhead dominated by clocking the receiving flip-flop
  bank for one extra cycle (plus a configurable pipeline re-execution term).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


def switching_energy(capacitance: float, vdd: float) -> float:
    """Energy dissipated per full swing of a capacitance: ``0.5 C Vdd^2``."""
    check_positive("capacitance", capacitance, strict=False)
    check_positive("vdd", vdd, strict=False)
    return 0.5 * capacitance * vdd * vdd


def coupling_energy(coupling_capacitance: float, relative_swing: float, vdd: float) -> float:
    """Energy dissipated in a coupling capacitor for a relative transition.

    ``relative_swing`` is the difference of the two nets' logical transitions,
    in units of Vdd: 0 (both quiet or moving together), 1 (one switches, one
    quiet) or 2 (opposite switching).  The dissipated energy is
    ``0.5 Cc (relative_swing * Vdd)^2``, i.e. opposite switching costs four
    times the energy of switching against a quiet neighbour -- the same
    quadratic behaviour that makes the worst-case coupling pattern both the
    slowest and the most energy-hungry.
    """
    check_positive("coupling_capacitance", coupling_capacitance, strict=False)
    swing = relative_swing * vdd
    return 0.5 * coupling_capacitance * swing * swing


def leakage_energy(leakage_current: float, vdd: float, duration: float) -> float:
    """Leakage energy over ``duration`` seconds: ``I_leak * Vdd * t``."""
    check_positive("duration", duration, strict=False)
    return leakage_current * vdd * duration


@dataclass(frozen=True)
class FlipFlopEnergyParams:
    """Energy parameters of the receiving double-sampling flip-flop bank.

    Attributes
    ----------
    clock_energy_per_ff:
        Energy to clock one double-sampling flip-flop for one cycle at the
        nominal core supply (joules).  The shadow latch and the delayed-clock
        buffer make this slightly larger than a standard flip-flop.
    recovery_overhead_per_error:
        Additional energy charged per corrected error beyond re-clocking the
        bank, representing the flush/re-execution work in the pipeline
        (joules).  The paper treats this as small because the bus is studied
        in isolation; it is configurable here so the sensitivity can be
        explored.
    core_vdd:
        Supply of the flip-flop bank and downstream pipeline (volts).  The
        flip-flops are not on the scaled bus supply: correctness of the
        shadow latch must not depend on the scaled rail.
    """

    clock_energy_per_ff: float = 4.0e-14
    recovery_overhead_per_error: float = 6.0e-13
    core_vdd: float = 1.2

    def __post_init__(self) -> None:
        check_positive("clock_energy_per_ff", self.clock_energy_per_ff)
        check_positive("recovery_overhead_per_error", self.recovery_overhead_per_error, strict=False)
        check_positive("core_vdd", self.core_vdd)

    def bank_clock_energy(self, n_flipflops: int) -> float:
        """Energy to clock the whole bank for one cycle."""
        if n_flipflops < 0:
            raise ValueError(f"n_flipflops must be >= 0, got {n_flipflops}")
        return self.clock_energy_per_ff * n_flipflops

    def recovery_energy(self, n_flipflops: int, n_errors: int | np.ndarray) -> np.ndarray | float:
        """Total recovery energy for ``n_errors`` corrected timing errors.

        Each corrected error costs one extra cycle of clocking the whole bank
        plus the configured pipeline overhead.
        """
        per_error = self.bank_clock_energy(n_flipflops) + self.recovery_overhead_per_error
        return np.asarray(n_errors, dtype=float) * per_error if isinstance(
            n_errors, np.ndarray
        ) else n_errors * per_error
