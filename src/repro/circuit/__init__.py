"""Device- and circuit-level substrate (the HSPICE substitute).

This package contains everything below the interconnect level:

* :mod:`repro.circuit.pvt` -- process / IR-drop / temperature corners,
* :mod:`repro.circuit.mosfet` -- alpha-power-law device model,
* :mod:`repro.circuit.delay_model` -- Elmore-style stage delay primitives,
* :mod:`repro.circuit.energy_model` -- switching / coupling / leakage energy,
* :mod:`repro.circuit.spice_lite` -- a small trapezoidal RC transient solver,
* :mod:`repro.circuit.lookup_table` -- 20 mV-gridded delay/energy tables.
"""

from repro.circuit.pvt import (
    BEST_CASE_CORNER,
    STANDARD_CORNERS,
    TYPICAL_CORNER,
    WORST_CASE_CORNER,
    ProcessCorner,
    PVTCorner,
    corner_pair_for_table1,
)
from repro.circuit.mosfet import AlphaPowerModel, TransistorParams
from repro.circuit.delay_model import (
    DISTRIBUTED_RC_FACTOR,
    LUMPED_RC_FACTOR,
    DriverDelayModel,
    StageLoads,
    stage_delay,
)
from repro.circuit.energy_model import (
    FlipFlopEnergyParams,
    coupling_energy,
    leakage_energy,
    switching_energy,
)
from repro.circuit.lookup_table import DEFAULT_VOLTAGE_STEP, DelayEnergyTable, VoltageGrid
from repro.circuit.spice_lite import (
    RCNetwork,
    TransientResult,
    build_coupled_line,
    step_waveform,
)

__all__ = [
    "BEST_CASE_CORNER",
    "STANDARD_CORNERS",
    "TYPICAL_CORNER",
    "WORST_CASE_CORNER",
    "ProcessCorner",
    "PVTCorner",
    "corner_pair_for_table1",
    "AlphaPowerModel",
    "TransistorParams",
    "DISTRIBUTED_RC_FACTOR",
    "LUMPED_RC_FACTOR",
    "DriverDelayModel",
    "StageLoads",
    "stage_delay",
    "FlipFlopEnergyParams",
    "coupling_energy",
    "leakage_energy",
    "switching_energy",
    "DEFAULT_VOLTAGE_STEP",
    "DelayEnergyTable",
    "VoltageGrid",
    "RCNetwork",
    "TransientResult",
    "build_coupled_line",
    "step_waveform",
]
