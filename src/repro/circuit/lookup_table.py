"""Voltage-gridded delay/energy tables (the HSPICE tabulation substitute).

The paper characterises the bus with HSPICE "for all possible data input
combinations ... for individual supply voltages (in increments of 20 mV)".
Because this reproduction uses closed-form Elmore/coupling models, the bus
delay for any data pattern reduces to an affine function of the wire's
effective Miller coupling factor ``lambda``::

    delay(Vdd, lambda) = d0(Vdd) + lambda * d1(Vdd)

so the table stores, per 20 mV grid point, the two coefficients ``d0`` and
``d1`` together with the leakage power.  Energy coefficients (self and
coupling capacitance per wire) are voltage-independent and stored once.

The same data structure is reused for any PVT corner; the corner is baked in
when the table is built (see :mod:`repro.bus.characterization`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

import numpy as np

from repro.circuit.pvt import PVTCorner
from repro.utils.validation import check_positive

#: Voltage grid step used throughout the paper (20 mV).
DEFAULT_VOLTAGE_STEP = 0.020


@dataclass(frozen=True)
class VoltageGrid:
    """A uniform grid of supply voltages, inclusive of both endpoints.

    The paper's regulator and tabulation both work on a 20 mV grid between a
    conservative minimum and the nominal 1.2 V supply.
    """

    v_min: float
    v_max: float
    step: float = DEFAULT_VOLTAGE_STEP

    def __post_init__(self) -> None:
        check_positive("v_min", self.v_min)
        check_positive("step", self.step)
        if self.v_max < self.v_min:
            raise ValueError(f"v_max ({self.v_max}) must be >= v_min ({self.v_min})")

    @property
    def voltages(self) -> np.ndarray:
        """Grid voltages in ascending order (v_min ... v_max)."""
        n_steps = int(round((self.v_max - self.v_min) / self.step))
        return self.v_min + self.step * np.arange(n_steps + 1)

    def __len__(self) -> int:
        return len(self.voltages)

    def __iter__(self) -> Iterator[float]:
        return iter(self.voltages.tolist())

    def index_of(self, vdd: float) -> int:
        """Index of the grid point nearest to ``vdd``.

        Raises ``ValueError`` if ``vdd`` lies more than half a step outside
        the grid, which would indicate a regulator / table mismatch.
        """
        voltages = self.voltages
        index = int(np.argmin(np.abs(voltages - vdd)))
        if abs(voltages[index] - vdd) > self.step / 2 + 1e-12:
            raise ValueError(
                f"voltage {vdd:.4f} V is outside the grid "
                f"[{self.v_min:.3f}, {self.v_max:.3f}] V"
            )
        return index

    def indices_of(self, vdds: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`index_of` for an array of voltages.

        Raises ``ValueError`` if any voltage is more than half a step outside
        the grid.
        """
        vdds = np.asarray(vdds, dtype=float)
        indices = np.rint((vdds - self.v_min) / self.step).astype(int)
        if np.any(indices < 0) or np.any(indices >= len(self)):
            raise ValueError("one or more voltages are outside the grid")
        if np.any(np.abs(self.voltages[indices] - vdds) > self.step / 2 + 1e-12):
            raise ValueError("one or more voltages are off-grid by more than half a step")
        return indices

    def snap(self, vdd: float) -> float:
        """The grid voltage nearest to ``vdd``."""
        return float(self.voltages[self.index_of(vdd)])

    def clamp(self, vdd: float) -> float:
        """Clamp an arbitrary voltage onto the grid range and snap it."""
        clamped = min(max(vdd, self.v_min), self.v_max)
        return self.snap(clamped)


@dataclass
class DelayEnergyTable:
    """Per-voltage delay coefficients and energy/leakage data for one corner.

    Attributes
    ----------
    grid:
        The supply-voltage grid the table is sampled on.
    corner:
        The PVT corner the table was characterised at.
    base_delay:
        ``d0`` coefficient per grid voltage (seconds): bus delay with zero
        effective coupling.
    coupling_delay:
        ``d1`` coefficient per grid voltage (seconds per unit Miller factor).
    leakage_power:
        Total repeater leakage power of the bus per grid voltage (watts).
    self_capacitance_per_wire:
        Switched self-capacitance (wire ground capacitance plus repeater
        parasitics) of a single wire over the full bus length (farads).
    coupling_capacitance_per_pair:
        Coupling capacitance between one adjacent wire pair (or a wire and
        its shield) over the full bus length (farads).
    """

    grid: VoltageGrid
    corner: PVTCorner
    base_delay: np.ndarray
    coupling_delay: np.ndarray
    leakage_power: np.ndarray
    self_capacitance_per_wire: float
    coupling_capacitance_per_pair: float
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.grid)
        for name in ("base_delay", "coupling_delay", "leakage_power"):
            value = np.asarray(getattr(self, name), dtype=float)
            if value.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},), got {value.shape}")
            setattr(self, name, value)
        check_positive("self_capacitance_per_wire", self.self_capacitance_per_wire)
        check_positive("coupling_capacitance_per_pair", self.coupling_capacitance_per_pair)

    # ------------------------------------------------------------------ #
    # Delay queries
    # ------------------------------------------------------------------ #
    def delay(self, vdd: float, coupling_factor: float) -> float:
        """Bus delay at a grid voltage for a given effective Miller factor."""
        index = self.grid.index_of(vdd)
        return float(self.base_delay[index] + coupling_factor * self.coupling_delay[index])

    def delays(self, vdd: float, coupling_factors: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`delay` over an array of coupling factors."""
        index = self.grid.index_of(vdd)
        return self.base_delay[index] + np.asarray(coupling_factors) * self.coupling_delay[index]

    def worst_delay(self, vdd: float, max_coupling_factor: float = 4.0) -> float:
        """Delay of the worst-case switching pattern at a grid voltage."""
        return self.delay(vdd, max_coupling_factor)

    def failing_coupling_factor(self, vdd: float, deadline: float) -> float:
        """Smallest effective coupling factor whose delay exceeds ``deadline``.

        Any cycle whose worst wire has an effective coupling factor at or
        above the returned value misses the deadline at this voltage.  Returns
        ``inf`` when even the worst-case pattern meets the deadline.
        """
        index = self.grid.index_of(vdd)
        d0 = float(self.base_delay[index])
        d1 = float(self.coupling_delay[index])
        if d1 <= 0.0:
            return 0.0 if d0 > deadline else float("inf")
        threshold = (deadline - d0) / d1
        return threshold if threshold >= 0.0 else 0.0

    def min_voltage_meeting(self, deadline: float, coupling_factor: float = 4.0) -> float:
        """Lowest grid voltage at which the given pattern still meets ``deadline``.

        Raises ``ValueError`` if no grid voltage meets the deadline (the bus
        is mis-designed for that corner).
        """
        delays = self.base_delay + coupling_factor * self.coupling_delay
        meeting = np.nonzero(delays <= deadline)[0]
        if meeting.size == 0:
            raise ValueError(
                f"no grid voltage meets a {deadline * 1e12:.0f} ps deadline at "
                f"coupling factor {coupling_factor} for corner {self.corner.label}"
            )
        return float(self.grid.voltages[int(meeting[0])])

    # ------------------------------------------------------------------ #
    # Energy queries
    # ------------------------------------------------------------------ #
    def leakage_energy_per_cycle(self, vdd: float, cycle_time: float) -> float:
        """Leakage energy of the whole bus over one clock period."""
        check_positive("cycle_time", cycle_time)
        index = self.grid.index_of(vdd)
        return float(self.leakage_power[index]) * cycle_time

    def dynamic_energy(self, vdd: float, switched_self_caps: float, coupling_weight: float) -> float:
        """Dynamic energy for one cycle.

        ``switched_self_caps`` is the number of toggling wires (possibly
        fractional when averaged), ``coupling_weight`` is the sum over
        adjacent pairs of the squared relative swing in units of Vdd^2 (i.e.
        ``sum r_ij^2`` with ``r`` in {0, 1, 2}).
        """
        self_term = 0.5 * self.self_capacitance_per_wire * switched_self_caps
        coupling_term = 0.5 * self.coupling_capacitance_per_pair * coupling_weight
        return (self_term + coupling_term) * vdd * vdd
