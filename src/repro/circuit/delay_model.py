"""Driver / repeater delay primitives.

These are the Elmore-style closed forms used to translate driver resistance,
wire parasitics and load capacitance into a 50 %-crossing delay.  The same
constants appear in both the bus characterisation path and the lightweight
transient solver cross-checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.mosfet import AlphaPowerModel
from repro.circuit.pvt import PVTCorner
from repro.utils.validation import check_positive

#: 50 % crossing factor for a lumped RC charged through a driver (ln 2).
LUMPED_RC_FACTOR = 0.69

#: 50 % crossing factor for the distributed (wire) portion of an RC line.
DISTRIBUTED_RC_FACTOR = 0.38


@dataclass(frozen=True)
class StageLoads:
    """Capacitive and resistive loads of one repeated stage.

    Attributes
    ----------
    wire_resistance:
        Total series resistance of the stage's wire segment (ohms).
    wire_capacitance:
        Total *effective* capacitance of the wire segment, including
        Miller-factored coupling (farads).
    receiver_capacitance:
        Lumped capacitance at the far end of the segment (the next
        repeater's gate, or the receiving flip-flop input) (farads).
    driver_self_capacitance:
        Drain capacitance of the driving repeater (farads).
    """

    wire_resistance: float
    wire_capacitance: float
    receiver_capacitance: float
    driver_self_capacitance: float

    def __post_init__(self) -> None:
        check_positive("wire_resistance", self.wire_resistance, strict=False)
        check_positive("wire_capacitance", self.wire_capacitance, strict=False)
        check_positive("receiver_capacitance", self.receiver_capacitance, strict=False)
        check_positive("driver_self_capacitance", self.driver_self_capacitance, strict=False)


def stage_delay(driver_resistance: float, loads: StageLoads) -> float:
    """Elmore 50 % delay of one repeater stage driving a distributed RC wire.

    ``delay = 0.69 R_drv (C_self + C_wire + C_rx)
            + R_wire (0.38 C_wire + 0.69 C_rx)``

    which is the standard repeater-insertion delay expression (e.g. Bakoglu).
    Returns ``inf`` if the driver resistance is infinite (supply at or below
    threshold).
    """
    if math.isinf(driver_resistance):
        return math.inf
    total_load = (
        loads.driver_self_capacitance + loads.wire_capacitance + loads.receiver_capacitance
    )
    driver_term = LUMPED_RC_FACTOR * driver_resistance * total_load
    wire_term = loads.wire_resistance * (
        DISTRIBUTED_RC_FACTOR * loads.wire_capacitance
        + LUMPED_RC_FACTOR * loads.receiver_capacitance
    )
    return driver_term + wire_term


class DriverDelayModel:
    """Maps (supply, PVT corner, repeater size) to a driver resistance.

    A thin convenience layer over :class:`AlphaPowerModel` that applies the
    corner's IR droop to the supply before evaluating the device model, which
    is how the paper models local supply droop at the repeaters.
    """

    def __init__(self, device_model: AlphaPowerModel | None = None) -> None:
        self.device_model = device_model if device_model is not None else AlphaPowerModel()

    def driver_resistance(self, vdd: float, corner: PVTCorner, size: float) -> float:
        """Effective driver resistance at the corner's post-droop supply."""
        check_positive("vdd", vdd)
        effective_vdd = corner.effective_supply(vdd)
        return self.device_model.effective_resistance(
            effective_vdd, corner.process, corner.temperature_c, size
        )

    def gate_capacitance(self, size: float) -> float:
        """Gate capacitance of a repeater of the given size."""
        return self.device_model.gate_capacitance(size)

    def drain_capacitance(self, size: float) -> float:
        """Drain capacitance of a repeater of the given size."""
        return self.device_model.drain_capacitance(size)

    def leakage_current(self, vdd: float, corner: PVTCorner, size: float) -> float:
        """Leakage current of a repeater at the corner's post-droop supply."""
        effective_vdd = corner.effective_supply(vdd)
        return self.device_model.leakage_current(
            effective_vdd, corner.process, corner.temperature_c, size
        )
