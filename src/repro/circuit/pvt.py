"""Process/voltage/temperature (PVT) corner definitions.

The paper evaluates the bus across combinations of

* process corner: slow, typical, fast,
* temperature: 25 C or 100 C,
* local IR (supply) drop at the repeaters: none or 10 % of the supply.

The five named corners used in Fig. 5 / Fig. 10 are exposed as
:data:`STANDARD_CORNERS`; the worst-case design corner (slow, 100 C, 10 % IR
drop) and the "typical" corner (typical process, 100 C, no IR drop) used in
Table 1 are additionally exposed as module-level constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.validation import check_fraction, check_in_range


class ProcessCorner(enum.Enum):
    """Global process corner of the repeater devices."""

    SLOW = "slow"
    TYPICAL = "typical"
    FAST = "fast"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class PVTCorner:
    """A combined process / IR-drop / temperature operating corner.

    Parameters
    ----------
    process:
        Global process corner of the drivers and repeaters.
    temperature_c:
        Junction temperature in degrees Celsius (the paper uses 25 C or
        100 C, but any value is accepted).
    ir_drop:
        Fractional local supply droop seen by the repeaters (0.0 for no
        droop, 0.10 for the paper's 10 % droop).
    """

    process: ProcessCorner
    temperature_c: float
    ir_drop: float = 0.0

    def __post_init__(self) -> None:
        check_in_range("temperature_c", self.temperature_c, -55.0, 150.0)
        check_fraction("ir_drop", self.ir_drop)

    @property
    def label(self) -> str:
        """Human-readable label matching the paper's legend style."""
        ir = f"{self.ir_drop * 100:.0f}% IR drop" if self.ir_drop else "No IR drop"
        return f"{self.process.value.capitalize()} process, {self.temperature_c:.0f}C, {ir}"

    def effective_supply(self, vdd: float) -> float:
        """Supply voltage actually seen by the drivers after IR droop."""
        return vdd * (1.0 - self.ir_drop)

    def with_ir_drop(self, ir_drop: float) -> PVTCorner:
        """Return a copy of this corner with a different IR-drop assumption."""
        return PVTCorner(self.process, self.temperature_c, ir_drop)

    def with_temperature(self, temperature_c: float) -> PVTCorner:
        """Return a copy of this corner with a different temperature."""
        return PVTCorner(self.process, temperature_c, self.ir_drop)


#: Worst-case design corner used to size the repeaters (paper §3).
WORST_CASE_CORNER = PVTCorner(ProcessCorner.SLOW, 100.0, 0.10)

#: "Typical" corner used for the right half of Table 1 and Fig. 4(b) / Fig. 8.
TYPICAL_CORNER = PVTCorner(ProcessCorner.TYPICAL, 100.0, 0.0)

#: Best-case corner appearing in Fig. 5 (fast process, 25 C, no IR drop).
BEST_CASE_CORNER = PVTCorner(ProcessCorner.FAST, 25.0, 0.0)

#: The five corners plotted in Fig. 5 / Fig. 10, keyed by the paper's
#: numeric labels (1 = slowest ... 5 = fastest).
STANDARD_CORNERS: dict[int, PVTCorner] = {
    1: WORST_CASE_CORNER,
    2: PVTCorner(ProcessCorner.SLOW, 100.0, 0.0),
    3: TYPICAL_CORNER,
    4: PVTCorner(ProcessCorner.FAST, 100.0, 0.0),
    5: BEST_CASE_CORNER,
}


def corner_pair_for_table1() -> tuple[PVTCorner, PVTCorner]:
    """The two corners evaluated in Table 1 (worst-case and typical)."""
    return WORST_CASE_CORNER, TYPICAL_CORNER
