"""Clocking parameters shared by the bus design and the DVS control system.

The paper's bus runs at a fixed 1.5 GHz clock.  The repeaters are sized so the
worst-case bus delay is 600 ps, leaving 10 % of the cycle for the receiving
flip-flop's setup time and clock skew.  The shadow latch of the double
sampling flip-flop is clocked 33 % of a cycle later than the main flip-flop,
which defines the latest arrival time that can still be *corrected* rather
than causing a functional failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class ClockingParameters:
    """Clock frequency and the timing budget of the double-sampling receiver.

    Attributes
    ----------
    frequency:
        Fixed clock frequency in hertz (1.5 GHz in the paper).
    setup_slack_fraction:
        Fraction of the cycle reserved for setup time and clock skew at the
        main flip-flop (10 % in the paper), so the bus delay budget is
        ``(1 - setup_slack_fraction) * cycle_time``.
    shadow_delay_fraction:
        Delay of the shadow-latch clock relative to the main clock, as a
        fraction of the cycle (33 % in the paper -- the maximum allowed by the
        short-path/hold constraint of the bus).
    """

    frequency: float = 1.5e9
    setup_slack_fraction: float = 0.10
    shadow_delay_fraction: float = 0.33

    def __post_init__(self) -> None:
        check_positive("frequency", self.frequency)
        check_fraction("setup_slack_fraction", self.setup_slack_fraction)
        check_fraction("shadow_delay_fraction", self.shadow_delay_fraction)

    @property
    def cycle_time(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency

    @property
    def main_deadline(self) -> float:
        """Latest bus arrival time for error-free capture by the main flip-flop."""
        return self.cycle_time * (1.0 - self.setup_slack_fraction)

    @property
    def shadow_deadline(self) -> float:
        """Latest bus arrival time the shadow latch can still capture correctly.

        Arrivals later than this are functional failures that the error
        recovery mechanism cannot fix; the voltage regulator's minimum-voltage
        floor is chosen so they never occur.
        """
        return self.main_deadline + self.shadow_delay_fraction * self.cycle_time

    def cycles_for_time(self, duration: float) -> int:
        """Number of whole clock cycles covering ``duration`` seconds."""
        check_positive("duration", duration, strict=False)
        return int(round(duration * self.frequency))


#: The paper's clocking configuration (1.5 GHz, 10 % setup slack, 33 % shadow delay).
PAPER_CLOCKING = ClockingParameters()
