"""Cycle-by-cycle behavioural reference simulation of the DVS bus.

The production simulator (:class:`~repro.core.dvs_system.DVSBusSystem`) is
vectorised: it reduces every cycle to its worst effective coupling factor and
evaluates whole blocks of cycles with a handful of numpy comparisons.  That
is what makes million-cycle runs cheap, but it is also a shortcut whose
correctness deserves an independent check.

:class:`BehavioralDVSSimulator` is that check.  It drives an actual
:class:`~repro.core.double_sampling_ff.FlipFlopBank` one cycle at a time with
per-wire arrival times, counts bank error signals through the same
:class:`~repro.core.error_detection.ErrorCounter`, and commands the same
controller and regulator.  It is orders of magnitude slower (a Python loop
per cycle, a flip-flop object per wire) and is therefore used on short traces
only -- in the test suite, where it must agree with the vectorised simulator
error for error and voltage step for voltage step, and in the examples, where
its explicitness is the point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bus.bus_model import CharacterizedBus
from repro.circuit.pvt import PVTCorner
from repro.core.double_sampling_ff import FlipFlopBank
from repro.core.error_detection import DEFAULT_WINDOW_CYCLES, ErrorCounter, WindowMeasurement
from repro.core.policies import BangBangPolicy, ControlPolicy
from repro.core.regulator import VoltageEvent, VoltageRegulator
from repro.core.voltage_controller import WindowedVoltageController
from repro.interconnect.crosstalk import effective_coupling_factors, transitions_from_values
from repro.trace.trace import BusTrace


@dataclass(frozen=True)
class BehavioralRunResult:
    """Everything the behavioural reference simulation records.

    Attributes
    ----------
    n_cycles:
        Simulated cycles.
    total_errors:
        Cycles in which the bank error signal was asserted.
    error_mask:
        Per-cycle bank error flags.
    corrected_words:
        The word stored in the bank after each cycle's recovery; always equal
        to the transmitted data word (the recovery guarantee).
    windows:
        Completed error-measurement windows.
    voltage_events:
        Supply changes applied by the regulator (cycle, voltage).
    per_cycle_voltage:
        Supply voltage of every cycle.
    final_voltage:
        Supply voltage after the last cycle.
    """

    n_cycles: int
    total_errors: int
    error_mask: np.ndarray
    corrected_words: np.ndarray
    windows: list[WindowMeasurement]
    voltage_events: list[VoltageEvent]
    per_cycle_voltage: np.ndarray
    final_voltage: float

    @property
    def average_error_rate(self) -> float:
        """Errors per cycle over the whole run."""
        if self.n_cycles == 0:
            return 0.0
        return self.total_errors / self.n_cycles


class BehavioralDVSSimulator:
    """Flip-flop-level closed-loop DVS simulation (the reference behaviour).

    The constructor mirrors :class:`~repro.core.dvs_system.DVSBusSystem` so a
    configuration can be handed to either simulator unchanged.
    """

    def __init__(
        self,
        bus: CharacterizedBus,
        policy: ControlPolicy | None = None,
        window_cycles: int = DEFAULT_WINDOW_CYCLES,
        ramp_delay_cycles: int = 3000,
        v_floor: float | None = None,
    ) -> None:
        self.bus = bus
        self.policy = policy if policy is not None else BangBangPolicy()
        self.window_cycles = window_cycles
        self.ramp_delay_cycles = ramp_delay_cycles
        if v_floor is None:
            assumed = PVTCorner(bus.corner.process, 100.0, 0.10)
            v_floor = bus.minimum_safe_voltage(assumed)
        self.v_floor = bus.grid.snap(max(v_floor, bus.grid.v_min))

    def run(
        self,
        trace: BusTrace,
        initial_voltage: float | None = None,
        max_cycles: int | None = 50_000,
    ) -> BehavioralRunResult:
        """Simulate the closed loop one cycle at a time.

        ``max_cycles`` guards against accidentally feeding this simulator a
        workload sized for the vectorised one; pass ``None`` to lift the
        guard deliberately.
        """
        n_cycles = trace.n_cycles
        if max_cycles is not None and n_cycles > max_cycles:
            raise ValueError(
                f"behavioural simulation of {n_cycles} cycles would be very slow; "
                f"raise max_cycles (currently {max_cycles}) explicitly if you mean it"
            )
        design = self.bus.design
        nominal = design.nominal_vdd
        start_voltage = nominal if initial_voltage is None else initial_voltage

        regulator = VoltageRegulator(
            grid=self.bus.grid,
            v_min=self.v_floor,
            v_max=nominal,
            initial_voltage=start_voltage,
            ramp_delay_cycles=self.ramp_delay_cycles,
        )
        controller = WindowedVoltageController(
            regulator=regulator, policy=self.policy, window_cycles=self.window_cycles
        )
        counter = ErrorCounter(self.window_cycles)
        bank = FlipFlopBank(design.n_bits, design.clocking)
        bank.reset(trace.values[0])

        transitions = transitions_from_values(trace.values)
        factors = effective_coupling_factors(transitions, design.topology)

        error_mask = np.zeros(n_cycles, dtype=bool)
        corrected = np.empty((n_cycles, design.n_bits), dtype=np.uint8)
        per_cycle_voltage = np.empty(n_cycles)

        for cycle in range(n_cycles):
            regulator.apply_until(cycle)
            vdd = regulator.current_voltage
            per_cycle_voltage[cycle] = vdd
            arrivals = self.bus.table.delays(vdd, factors[cycle])
            result = bank.capture_word(trace.values[cycle + 1], arrivals)
            error_mask[cycle] = result.error
            corrected[cycle] = result.corrected_word
            for measurement in counter.record_cycle(result.error):
                controller.on_window(measurement)
        counter.flush()

        return BehavioralRunResult(
            n_cycles=n_cycles,
            total_errors=int(np.count_nonzero(error_mask)),
            error_mask=error_mask,
            corrected_words=corrected,
            windows=counter.completed_windows,
            voltage_events=regulator.events,
            per_cycle_voltage=per_cycle_voltage,
            final_voltage=regulator.current_voltage,
        )
