"""The fixed voltage-scaling (fixed VS) baseline of Table 1.

The baseline represents conventional adaptive-supply schemes (correlating
VCOs, delay-line speed detectors, triple-latch monitors): they can observe the
*global process corner* but, because they cannot tolerate timing errors, they
must keep enough margin for worst-case temperature, worst-case IR drop and the
worst-case switching pattern at all times.  The fixed VS voltage is therefore
the lowest supply at which the worst-case pattern still meets the main
flip-flop deadline assuming 100 C and a 10 % supply droop for the known
process corner -- regardless of the conditions that actually prevail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.bus.bus_model import CharacterizedBus, TraceStatistics, TraceSummary
from repro.circuit.lookup_table import VoltageGrid
from repro.circuit.pvt import ProcessCorner, PVTCorner
from repro.energy.accounting import EnergyBreakdown
from repro.energy.gains import breakdown_gain_percent
from repro.trace.stream import TraceSource
from repro.trace.trace import BusTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.runtime.parallel import ParallelChunkScheduler

#: Margins a conventional scheme must keep: worst-case temperature and IR drop.
ASSUMED_WORST_TEMPERATURE_C = 100.0
ASSUMED_WORST_IR_DROP = 0.10


@dataclass(frozen=True)
class FixedScalingResult:
    """Outcome of the fixed VS baseline on one workload at one corner."""

    voltage: float
    energy: EnergyBreakdown
    reference_energy: EnergyBreakdown
    error_rate: float

    @property
    def energy_gain_percent(self) -> float:
        """Energy gain versus running at the nominal supply, in percent."""
        return breakdown_gain_percent(self.reference_energy, self.energy)


def fixed_scaling_voltage(
    bus: CharacterizedBus,
    process_corner: ProcessCorner | None = None,
    grid: VoltageGrid | None = None,
) -> float:
    """The supply a conventional error-intolerant scheme would choose.

    Parameters
    ----------
    bus:
        The characterised bus (its design and grid are reused).
    process_corner:
        The global process corner the scheme has identified; defaults to the
        corner the bus is actually operating at.
    grid:
        Optional override of the voltage grid.
    """
    if process_corner is None:
        process_corner = bus.corner.process
    assumed_corner = PVTCorner(
        process_corner, ASSUMED_WORST_TEMPERATURE_C, ASSUMED_WORST_IR_DROP
    )
    # Db-first like every other surface lookup: the assumed-margin corner is
    # part of the standard database grid, so --chardb runs never re-enter the
    # circuit models here either.  (Imported lazily: repro.chardb pulls in
    # repro.runtime, which circles back into the analysis layer.)
    from repro.chardb.active import resolve_table

    table = resolve_table(bus.design, assumed_corner, grid if grid is not None else bus.grid)
    return table.min_voltage_meeting(
        bus.design.clocking.main_deadline, bus.design.topology.max_coupling_factor
    )


def evaluate_fixed_scaling(
    bus: CharacterizedBus,
    stats: TraceStatistics | TraceSummary | BusTrace | TraceSource,
    process_corner: ProcessCorner | None = None,
    chunk_cycles: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
    scheduler: "ParallelChunkScheduler" | None = None,
) -> FixedScalingResult:
    """Run the fixed VS baseline on a workload and report its energy gain.

    The workload is evaluated at the *actual* corner of ``bus`` while the
    voltage choice only uses the assumed margins, exactly like the baseline
    column of Table 1.  The resulting error rate is reported as a sanity
    check: it must be zero whenever the actual corner is no worse than the
    assumed margins.

    The baseline runs at one constant voltage, so reduced
    :class:`TraceSummary` statistics are fully sufficient; traces and
    :class:`~repro.trace.stream.TraceSource` workloads are reduced on the
    fly in O(chunk) memory, which is what makes the 10 M-cycle Table 1
    baseline column feasible.  With ``engine="parallel"``, ``jobs > 1`` or
    an explicit scheduler, that reduction fans out over worker processes --
    the exact merge makes the result bit-identical either way.
    """
    if isinstance(stats, (BusTrace, TraceSource)):
        stats = bus.summarize(
            stats, chunk_cycles=chunk_cycles, engine=engine, jobs=jobs, scheduler=scheduler
        )
    voltage = fixed_scaling_voltage(bus, process_corner)
    error_rate = bus.error_rate(stats, voltage)
    n_errors = int(round(error_rate * stats.n_cycles))
    energy = bus.energy_breakdown(stats, voltage, n_errors=n_errors)
    reference = bus.nominal_energy(stats)
    return FixedScalingResult(
        voltage=voltage,
        energy=energy,
        reference_energy=reference,
        error_rate=error_rate,
    )
