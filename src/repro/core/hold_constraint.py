"""The short-path (hold) constraint that caps the shadow-latch clock delay.

Section 2 of the paper: "This hold constraint limits the amount of clock
delay that can be accommodated on the shadow latch and hence the degree of
voltage scaling below the point of first failure ... In our analysis, it was
found that the shadow latch clock could be delayed by as much as 33% of the
clock cycle without violating the short-path constraint."

The constraint is a race between consecutive transfers: the shadow latch of
cycle *n* stays transparent until the delayed clock edge, so the *fastest*
possible arrival of cycle *n+1*'s data must not reach the latch before that
edge (plus the latch hold time).  On a bus the fastest arrival is simply the
quiet-pattern (no coupling) delay at the fastest credible operating point --
unlike random logic there are no near-zero-delay paths, which is exactly why
the paper calls bus structures "highly suitable" for this style of error
correction.

This module computes that limit for a characterised bus design so the
paper's 33 % figure is a *derived* quantity here rather than a copied one,
and so the Section 6 caveat (a faster typical path forces a smaller shadow
delay) can be checked quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.bus.bus_design import BusDesign
from repro.circuit.pvt import BEST_CASE_CORNER, PVTCorner
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class HoldAnalysis:
    """Result of the short-path analysis for one bus design.

    Attributes
    ----------
    fastest_corner:
        The corner at which the fastest (quiet-pattern) delay occurs.
    fastest_delay:
        That quiet-pattern delay at the nominal supply (seconds) -- the
        earliest any next-cycle data can reach the receiver.
    hold_time:
        Shadow-latch hold requirement assumed by the analysis (seconds).
    max_shadow_delay_fraction:
        Largest shadow-clock delay (as a fraction of the cycle) that does not
        violate the hold constraint.
    configured_fraction:
        The design's actual shadow-delay fraction, for comparison.
    """

    fastest_corner: PVTCorner
    fastest_delay: float
    hold_time: float
    max_shadow_delay_fraction: float
    configured_fraction: float

    @property
    def is_satisfied(self) -> bool:
        """Whether the configured shadow delay respects the hold constraint."""
        return self.configured_fraction <= self.max_shadow_delay_fraction + 1e-12

    @property
    def margin_fraction(self) -> float:
        """Head-room between the configured delay and the limit (cycle fraction)."""
        return self.max_shadow_delay_fraction - self.configured_fraction


def fastest_bus_delay(
    design: BusDesign,
    corners: Sequence[PVTCorner] | None = None,
    vdd: float | None = None,
) -> tuple:
    """The quiet-pattern bus delay at the fastest of the given corners.

    Returns ``(delay_seconds, corner)``.  The fastest credible condition for
    a hold race is the best process/temperature corner with no IR drop at the
    full nominal supply (hold races get worse, not better, when the victim
    cycle runs fast).
    """
    if corners is None:
        corners = (BEST_CASE_CORNER,)
    if not corners:
        raise ValueError("need at least one corner to analyse")
    if vdd is None:
        vdd = design.nominal_vdd
    check_positive("vdd", vdd)

    driver_model = design.driver_model()
    segment = design.segment_parasitics
    best_delay = None
    best_corner = None
    for corner in corners:
        coefficients = design.repeaters.delay_coefficients(vdd, corner, segment, driver_model)
        quiet_delay = coefficients.delay(0.0)
        if best_delay is None or quiet_delay < best_delay:
            best_delay = quiet_delay
            best_corner = corner
    return float(best_delay), best_corner


def analyze_hold_constraint(
    design: BusDesign,
    corners: Sequence[PVTCorner] | None = None,
    hold_time: float = 0.0,
    vdd: float | None = None,
) -> HoldAnalysis:
    """Largest admissible shadow-clock delay for a bus design.

    The shadow latch of cycle *n* closes at ``main_deadline + f * T`` (with
    ``f`` the shadow-delay fraction and ``T`` the cycle time); the earliest
    next-cycle data arrives at ``T + fastest_delay``.  Requiring the arrival
    to come after the latch closes plus the hold time gives::

        f <= (T + fastest_delay - hold - main_deadline) / T

    which, with the paper's 10 % setup slack (``main_deadline = 0.9 T``), is
    ``fastest_delay / T + 0.10 - hold / T``.
    """
    if hold_time < 0.0:
        raise ValueError(f"hold_time must be >= 0, got {hold_time}")
    clocking = design.clocking
    fastest, corner = fastest_bus_delay(design, corners, vdd)
    cycle = clocking.cycle_time
    limit = (cycle + fastest - hold_time - clocking.main_deadline) / cycle
    limit = max(0.0, min(limit, 1.0))
    return HoldAnalysis(
        fastest_corner=corner,
        fastest_delay=fastest,
        hold_time=hold_time,
        max_shadow_delay_fraction=limit,
        configured_fraction=clocking.shadow_delay_fraction,
    )
