"""Oracle (future-knowledge) per-window voltage selection.

Section 5 of the paper first examines "the optimal supply voltage selection
(with the knowledge of future program switching behavior) over time while
maintaining a fixed error rate" (Fig. 6).  This module implements that
oracle: for every measurement window it picks the lowest grid voltage whose
error rate within the window does not exceed the target, ignoring regulator
ramp delays and feedback lag.

The oracle is useful both to reproduce Fig. 6 (the distribution of time spent
at each voltage per program) and as an upper bound on what the closed-loop
controller can achieve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.bus.bus_model import CharacterizedBus, TraceStatistics
from repro.bus.engine import ENGINE_PARALLEL, resolve_engine
from repro.core.error_detection import DEFAULT_WINDOW_CYCLES
from repro.energy.accounting import EnergyBreakdown
from repro.energy.gains import breakdown_gain_percent
from repro.trace.stream import TraceSource, as_trace_source
from repro.trace.trace import BusTrace
from repro.utils.validation import check_fraction

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.runtime.parallel import ParallelChunkScheduler


@dataclass(frozen=True)
class OracleSchedule:
    """Per-window oracle voltage schedule and its realised statistics.

    Attributes
    ----------
    window_cycles:
        Length of each scheduling window.
    window_voltages:
        Chosen supply voltage of every window.
    window_error_rates:
        Realised error rate of every window at its chosen voltage.
    target_error_rate:
        The error budget the oracle enforced per window.
    energy / reference_energy:
        Energy of the schedule and of the nominal-supply reference.
    """

    window_cycles: int
    window_voltages: np.ndarray
    window_error_rates: np.ndarray
    target_error_rate: float
    energy: EnergyBreakdown
    reference_energy: EnergyBreakdown

    @property
    def n_windows(self) -> int:
        """Number of scheduled windows."""
        return len(self.window_voltages)

    @property
    def average_error_rate(self) -> float:
        """Cycle-weighted average error rate over the schedule."""
        if self.n_windows == 0:
            return 0.0
        return float(np.mean(self.window_error_rates))

    @property
    def energy_gain_percent(self) -> float:
        """Energy gain of the schedule versus the nominal supply, in percent."""
        return breakdown_gain_percent(self.reference_energy, self.energy)

    def voltage_residency(self) -> dict[float, float]:
        """Fraction of execution time spent at each supply voltage (Fig. 6)."""
        voltages, counts = np.unique(np.round(self.window_voltages, 6), return_counts=True)
        total = counts.sum()
        return {float(v): float(c) / total for v, c in zip(voltages, counts)}


def min_error_free_voltage_per_cycle(
    bus: CharacterizedBus, stats: TraceStatistics
) -> np.ndarray:
    """Lowest grid voltage at which each cycle individually would be error-free.

    For every grid voltage the table gives the largest coupling factor that
    still meets the main deadline; because that threshold is monotonically
    non-decreasing in the supply, a single ``searchsorted`` per trace maps
    every cycle's worst coupling factor to its minimum safe voltage.
    """
    grid = bus.grid
    deadline = bus.design.clocking.main_deadline
    thresholds = np.array(
        [bus.table.failing_coupling_factor(v, deadline) for v in grid.voltages]
    )
    # A cycle with worst coupling factor c is safe at voltage index i iff
    # c <= thresholds[i]; find the first such index for every cycle.
    indices = np.searchsorted(thresholds, stats.worst_coupling, side="left")
    indices = np.clip(indices, 0, len(grid) - 1)
    return grid.voltages[indices]


def _resolve_floor(bus: CharacterizedBus, v_floor: float | None) -> float:
    """The oracle's voltage floor, defaulting to the regulator safety floor."""
    if v_floor is None:
        from repro.circuit.pvt import PVTCorner  # local import to avoid cycle at module load

        assumed = PVTCorner(bus.corner.process, 100.0, 0.10)
        v_floor = bus.minimum_safe_voltage(assumed)
    return bus.grid.snap(max(v_floor, bus.grid.v_min))


def _budgeted_window_choice(
    histogram: np.ndarray,
    window_fill: int,
    target_error_rate: float,
    floor_index: int,
) -> tuple[int, int]:
    """The oracle's per-window decision from a grid-index histogram.

    ``histogram[i]`` counts cycles whose minimum safe voltage is grid index
    ``i``; bin ``n_grid`` holds cycles unsafe even at the top grid voltage.
    Returns ``(chosen_index, realised_errors)``.  Shared by the serial
    streaming path and the parallel per-window replay so the (integer-exact)
    selection logic exists exactly once.
    """
    n_grid = len(histogram) - 1
    # tail[i] = cycles whose minimum safe voltage exceeds grid voltage i
    # (cycles unsafe even at v_max error at every grid voltage).
    tail = (histogram[::-1].cumsum()[::-1] - histogram)[:n_grid]
    selection_tail = tail.copy()
    selection_tail[-1] = 0  # the selection clips unsatisfiable cycles to v_max
    budget = int(np.floor(target_error_rate * window_fill))
    eligible = np.nonzero(selection_tail <= budget)[0]
    chosen_index = max(int(eligible[0]), floor_index)
    return chosen_index, int(tail[chosen_index])


def _streamed_oracle_schedule(
    bus: CharacterizedBus,
    workload: BusTrace | TraceSource,
    target_error_rate: float,
    window_cycles: int,
    v_floor: float,
    chunk_cycles: int | None,
    engine: str | None,
) -> OracleSchedule:
    """The oracle over a streamed workload, in O(chunk) memory.

    Per window the oracle only needs *how many* cycles demand each grid
    voltage, so each window reduces to a histogram over grid indices; the
    budgeted choice and the realised error count are exact tail sums of that
    histogram, and energy accumulates per grid-voltage level exactly as in
    the streamed DVS run -- so the schedule is independent of chunking and
    matches the monolithic path window for window.
    """
    grid = bus.grid
    n_grid = len(grid)
    deadline = bus.design.clocking.main_deadline
    thresholds = np.array(
        [bus.table.failing_coupling_factor(v, deadline) for v in grid.voltages]
    )
    floor_index = grid.index_of(v_floor)

    window_voltages: list[float] = []
    window_error_rates: list[float] = []
    level_cycles = np.zeros(n_grid, dtype=np.int64)
    level_toggles = np.zeros(n_grid)
    level_weights = np.zeros(n_grid)
    total_errors = 0

    # Bin n_grid holds cycles that error even at the top grid voltage.  The
    # voltage *selection* treats them as satisfied at v_max -- matching the
    # clipped per-cycle requirement of the monolithic path -- but the realised
    # error counts must include them, exactly as ``bus.error_mask`` does.
    histogram = np.zeros(n_grid + 1, dtype=np.int64)
    window_toggles = 0.0
    window_weights = 0.0
    window_fill = 0

    def close_window() -> None:
        nonlocal window_toggles, window_weights, window_fill, total_errors
        chosen_index, errors = _budgeted_window_choice(
            histogram, window_fill, target_error_rate, floor_index
        )
        window_voltages.append(float(grid.voltages[chosen_index]))
        window_error_rates.append(errors / window_fill)
        level_cycles[chosen_index] += window_fill
        level_toggles[chosen_index] += window_toggles
        level_weights[chosen_index] += window_weights
        total_errors += errors
        histogram[:] = 0
        window_toggles = 0.0
        window_weights = 0.0
        window_fill = 0

    for stats, _ in bus.iter_statistics(workload, chunk_cycles, engine=engine):
        position = 0
        while position < stats.n_cycles:
            take = min(window_cycles - window_fill, stats.n_cycles - position)
            segment = slice(position, position + take)
            indices = np.searchsorted(
                thresholds, stats.worst_coupling[segment], side="left"
            )
            # int64 bin counts: integer addition is associative.
            histogram += np.bincount(indices, minlength=n_grid + 1).astype(np.int64)  # repro: noqa[DET004]
            # Per-window float sums; bit-identity across chunk shapes is
            # proven by test_oracle_streamed_matches_monolithic.
            window_toggles += float(np.sum(stats.toggles[segment]))  # repro: noqa[DET004]
            window_weights += float(np.sum(stats.coupling_weights[segment]))  # repro: noqa[DET004]
            window_fill += take
            position += take
            if window_fill == window_cycles:
                close_window()
    if window_fill:
        close_window()

    energy = bus.energy_from_voltage_totals(
        level_cycles, level_toggles, level_weights, total_errors
    )
    reference = bus.energy_at_constant_supply(
        bus.design.nominal_vdd,
        int(level_cycles.sum()),
        float(level_toggles.sum()),
        float(level_weights.sum()),
    )
    return OracleSchedule(
        window_cycles=window_cycles,
        window_voltages=np.array(window_voltages),
        window_error_rates=np.array(window_error_rates),
        target_error_rate=target_error_rate,
        energy=energy,
        reference_energy=reference,
    )


def _parallel_oracle_schedule(
    bus: CharacterizedBus,
    workload: BusTrace | TraceSource,
    target_error_rate: float,
    window_cycles: int,
    v_floor: float,
    chunk_cycles: int | None,
    engine: str | None,
    jobs: int | None,
    scheduler: "ParallelChunkScheduler" | None,
) -> OracleSchedule:
    """The oracle via the two-pass parallel engine.

    The statistics pass reduces each scheduling window to an exact
    :class:`~repro.bus.bus_model.TraceSummary` (the segmenter splits at
    window starts only -- the oracle has no regulator state), and the replay
    scatters each summary's worst-coupling histogram onto grid indices and
    applies the identical :func:`_budgeted_window_choice`.  Both the
    histogram (integer counts) and the energy totals are exact, so the
    schedule is bit-identical to the serial streaming path.
    """
    from repro.runtime.parallel import ChunkSegmenter, ParallelChunkScheduler

    source = as_trace_source(workload)
    segmenter = ChunkSegmenter(n_cycles=source.n_cycles, window_cycles=window_cycles)
    own = scheduler is None
    sched = (
        scheduler
        if scheduler is not None
        else ParallelChunkScheduler(n_workers=jobs if jobs is not None else 1)
    )
    try:
        summaries = sched.segment_summaries(
            source,
            segmenter,
            bus.design.topology,
            engine=engine,
            chunk_cycles=chunk_cycles,
        )
    finally:
        if own:
            sched.close()

    grid = bus.grid
    n_grid = len(grid)
    deadline = bus.design.clocking.main_deadline
    thresholds = np.array(
        [bus.table.failing_coupling_factor(v, deadline) for v in grid.voltages]
    )
    floor_index = grid.index_of(v_floor)

    window_voltages: list[float] = []
    window_error_rates: list[float] = []
    level_cycles = np.zeros(n_grid, dtype=np.int64)
    level_toggles = np.zeros(n_grid)
    level_weights = np.zeros(n_grid)
    total_errors = 0

    for summary in summaries:
        window_fill = summary.n_cycles
        histogram = np.zeros(n_grid + 1, dtype=np.int64)
        indices = np.searchsorted(thresholds, summary.worst_coupling_values, side="left")
        np.add.at(histogram, indices, summary.worst_coupling_counts)
        chosen_index, errors = _budgeted_window_choice(
            histogram, window_fill, target_error_rate, floor_index
        )
        window_voltages.append(float(grid.voltages[chosen_index]))
        window_error_rates.append(errors / window_fill)
        level_cycles[chosen_index] += window_fill
        level_toggles[chosen_index] += summary.toggles_total
        level_weights[chosen_index] += summary.coupling_weights_total
        total_errors += errors

    energy = bus.energy_from_voltage_totals(
        level_cycles, level_toggles, level_weights, total_errors
    )
    reference = bus.energy_at_constant_supply(
        bus.design.nominal_vdd,
        int(level_cycles.sum()),
        float(level_toggles.sum()),
        float(level_weights.sum()),
    )
    return OracleSchedule(
        window_cycles=window_cycles,
        window_voltages=np.array(window_voltages),
        window_error_rates=np.array(window_error_rates),
        target_error_rate=target_error_rate,
        energy=energy,
        reference_energy=reference,
    )


def oracle_voltage_schedule(
    bus: CharacterizedBus,
    stats: TraceStatistics | BusTrace | TraceSource,
    target_error_rate: float,
    window_cycles: int = DEFAULT_WINDOW_CYCLES,
    v_floor: float | None = None,
    chunk_cycles: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
    scheduler: "ParallelChunkScheduler" | None = None,
) -> OracleSchedule:
    """Choose the optimal per-window voltages for a target error rate.

    Parameters
    ----------
    bus:
        Characterised bus at the corner of interest.
    stats:
        The workload: pre-computed trace statistics, a trace, or a
        :class:`~repro.trace.stream.TraceSource` (streamed in O(chunk)
        memory with a window-for-window identical schedule).
    target_error_rate:
        Maximum tolerated fraction of error cycles per window (0 gives the
        zero-error schedule).
    window_cycles:
        Window granularity of the schedule (the paper uses 10 000 cycles).
    v_floor:
        Minimum allowed voltage; defaults to the regulator safety floor for
        the bus's process corner (shadow-latch setup under assumed worst-case
        temperature and IR drop).
    chunk_cycles:
        Streaming granularity for trace/source workloads.
    engine:
        Kernel engine for streamed statistics (:mod:`repro.bus.engine`);
        results are bit-identical for every engine, including
        ``"parallel"``.
    jobs:
        Worker processes for the parallel engine (``jobs > 1`` implies
        ``engine="parallel"``).
    scheduler:
        An existing :class:`~repro.runtime.parallel.ParallelChunkScheduler`
        to reuse; implies the parallel engine.  The caller retains
        ownership.
    """
    check_fraction("target_error_rate", target_error_rate)
    if window_cycles <= 0:
        raise ValueError(f"window_cycles must be positive, got {window_cycles}")
    floor = _resolve_floor(bus, v_floor)
    parallel = (
        scheduler is not None
        or (jobs is not None and jobs > 1)
        or resolve_engine(engine) == ENGINE_PARALLEL
    )
    if isinstance(stats, (BusTrace, TraceSource)):
        if parallel:
            return _parallel_oracle_schedule(
                bus,
                stats,
                target_error_rate,
                window_cycles,
                floor,
                chunk_cycles,
                engine,
                jobs,
                scheduler,
            )
        return _streamed_oracle_schedule(
            bus, stats, target_error_rate, window_cycles, floor, chunk_cycles, engine
        )
    v_floor = floor

    per_cycle_voltage = min_error_free_voltage_per_cycle(bus, stats)
    n_cycles = stats.n_cycles
    n_windows = int(np.ceil(n_cycles / window_cycles))

    window_voltages = np.empty(n_windows)
    window_error_rates = np.empty(n_windows)
    voltage_per_cycle = np.empty(n_cycles)

    for window in range(n_windows):
        start = window * window_cycles
        stop = min(start + window_cycles, n_cycles)
        requirement = per_cycle_voltage[start:stop]
        budget = int(np.floor(target_error_rate * (stop - start)))
        if budget <= 0:
            chosen = requirement.max() if len(requirement) else bus.grid.v_max
        else:
            # Tolerate the `budget` most demanding cycles: the voltage only has
            # to satisfy the (n - budget)-th largest requirement.
            chosen = np.partition(requirement, len(requirement) - budget - 1)[
                len(requirement) - budget - 1
            ]
        chosen = max(float(chosen), v_floor)
        chosen = bus.grid.snap(chosen)
        window_voltages[window] = chosen
        voltage_per_cycle[start:stop] = chosen
        window_stats = stats.slice(start, stop)
        window_error_rates[window] = bus.error_rate(window_stats, chosen)

    total_errors = int(np.count_nonzero(bus.error_mask(stats, voltage_per_cycle)))
    energy = bus.energy_breakdown(stats, voltage_per_cycle, n_errors=total_errors)
    reference = bus.nominal_energy(stats)
    return OracleSchedule(
        window_cycles=window_cycles,
        window_voltages=window_voltages,
        window_error_rates=window_error_rates,
        target_error_rate=target_error_rate,
        energy=energy,
        reference_energy=reference,
    )
