"""Behavioural model of the double-sampling (Razor-style) flip-flop.

The flip-flop of the paper's Fig. 2 samples its input twice: once at the main
clock edge (into the master/slave pair) and once at a delayed clock (into the
shadow latch).  If the bus data arrives after the main edge but before the
delayed edge, the main flip-flop captures a stale value while the shadow latch
captures the correct one; the XOR of the two asserts ``Error_L`` and the
correct value is restored through the multiplexer in the master feedback path,
at the cost of one recovery cycle.

This module models that behaviour at the timing-annotated cycle level:

* :class:`DoubleSamplingFlipFlop` -- a single bit, driven by arrival times,
* :class:`FlipFlopBank` -- the 32-bit bank at the receiving end of the bus,
  whose per-bit ``Error_L`` signals are ORed into the bank error signal that
  the voltage-control system polls.

The closed-loop DVS simulation uses a vectorised shortcut (only the
worst-delay wire per cycle matters for the error decision), but this model is
the reference behaviour the shortcut is tested against, and it is what the
examples use to demonstrate error detection and recovery on individual
transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.clocking import ClockingParameters, PAPER_CLOCKING


class ShadowLatchViolationError(RuntimeError):
    """Raised when data arrives after even the shadow-latch deadline.

    The design guarantees this never happens by keeping the supply above the
    conservative minimum voltage; encountering it in simulation indicates a
    broken regulator floor or a mis-characterised bus.
    """


@dataclass(frozen=True)
class CaptureResult:
    """Outcome of one flip-flop capture.

    Attributes
    ----------
    output:
        Value presented at the flip-flop output ``Q`` right after the main
        clock edge (possibly stale when a timing error occurred).
    corrected_output:
        Value available after error recovery (always the correct data).
    error:
        Whether ``Error_L`` was asserted (main and shadow samples differ).
    """

    output: int
    corrected_output: int
    error: bool


class DoubleSamplingFlipFlop:
    """A single-bit double-sampling flip-flop.

    Parameters
    ----------
    clocking:
        Clock period and the main/shadow deadlines.
    hold_time:
        Minimum input-stable time after the delayed clock required by the
        shadow latch.  Together with ``shadow_delay_fraction`` this expresses
        the short-path (hold) constraint discussed in Section 2.
    """

    def __init__(
        self,
        clocking: ClockingParameters = PAPER_CLOCKING,
        hold_time: float = 0.0,
    ) -> None:
        if hold_time < 0.0:
            raise ValueError(f"hold_time must be >= 0, got {hold_time}")
        self.clocking = clocking
        self.hold_time = hold_time
        self._state = 0

    @property
    def state(self) -> int:
        """Current stored value (after any recovery of the previous cycle)."""
        return self._state

    def reset(self, value: int = 0) -> None:
        """Force the stored value (power-on reset)."""
        self._state = 1 if value else 0

    def capture(self, data: int, arrival_time: float) -> CaptureResult:
        """Capture one cycle's data given its arrival time after the launch edge.

        Parameters
        ----------
        data:
            The logically correct data value for this cycle.
        arrival_time:
            Time at which the input settled to ``data``, measured from the
            launching clock edge (i.e. the bus delay for this transition).
        """
        data = 1 if data else 0
        if arrival_time > self.clocking.shadow_deadline:
            raise ShadowLatchViolationError(
                f"data arrived at {arrival_time * 1e12:.0f} ps, after the shadow deadline "
                f"({self.clocking.shadow_deadline * 1e12:.0f} ps)"
            )
        if arrival_time <= self.clocking.main_deadline:
            main_sample = data
        else:
            # The main edge saw the previous cycle's value still on the wire.
            main_sample = self._state
        shadow_sample = data
        error = main_sample != shadow_sample
        self._state = shadow_sample
        return CaptureResult(output=main_sample, corrected_output=shadow_sample, error=error)

    def check_hold_constraint(self, earliest_arrival: float) -> bool:
        """Whether a short path arriving at ``earliest_arrival`` satisfies hold.

        The shadow latch is transparent until ``shadow_deadline``; data from
        the *next* cycle must not arrive before the shadow latch of the
        current cycle has closed plus the hold time.  ``earliest_arrival`` is
        measured from the launching clock edge of the next cycle, so the
        constraint is ``cycle_time + earliest_arrival >= shadow_deadline + hold``
        i.e. ``earliest_arrival >= shadow_deadline + hold - cycle_time``.
        """
        minimum = self.clocking.shadow_deadline + self.hold_time - self.clocking.cycle_time
        return earliest_arrival >= minimum


class FlipFlopBank:
    """The bank of double-sampling flip-flops at the receiving end of the bus.

    The per-bit error signals are ORed into a single bank error signal: one or
    more late bits in a cycle count as *one* bus timing error, matching the
    paper's error-rate definition.
    """

    def __init__(
        self,
        n_bits: int,
        clocking: ClockingParameters = PAPER_CLOCKING,
        hold_time: float = 0.0,
    ) -> None:
        if n_bits <= 0:
            raise ValueError(f"n_bits must be positive, got {n_bits}")
        self.n_bits = n_bits
        self.clocking = clocking
        self._flops = [DoubleSamplingFlipFlop(clocking, hold_time) for _ in range(n_bits)]
        self._error_count = 0
        self._cycle_count = 0

    @property
    def state(self) -> np.ndarray:
        """Current stored word as a 0/1 array (LSB first)."""
        return np.array([flop.state for flop in self._flops], dtype=np.uint8)

    @property
    def error_count(self) -> int:
        """Number of cycles so far in which the bank error signal was asserted."""
        return self._error_count

    @property
    def cycle_count(self) -> int:
        """Number of captures performed."""
        return self._cycle_count

    def reset(self, word: Sequence[int] | None = None) -> None:
        """Reset all flip-flops (optionally to a specific word) and clear counters."""
        values = [0] * self.n_bits if word is None else list(word)
        if len(values) != self.n_bits:
            raise ValueError(f"reset word must have {self.n_bits} bits")
        for flop, value in zip(self._flops, values):
            flop.reset(value)
        self._error_count = 0
        self._cycle_count = 0

    def capture_word(
        self, data: Sequence[int], arrival_times: Sequence[float]
    ) -> BankCaptureResult:
        """Capture one bus word given per-bit arrival times.

        Returns the bank-level result; the stored state is updated to the
        corrected word, so a subsequent capture sees the recovered data, as in
        the real circuit.
        """
        data = np.asarray(data)
        arrival_times = np.asarray(arrival_times, dtype=float)
        if data.shape != (self.n_bits,) or arrival_times.shape != (self.n_bits,):
            raise ValueError(
                f"data and arrival_times must both have shape ({self.n_bits},)"
            )
        outputs = np.empty(self.n_bits, dtype=np.uint8)
        corrected = np.empty(self.n_bits, dtype=np.uint8)
        errors = np.zeros(self.n_bits, dtype=bool)
        for index, flop in enumerate(self._flops):
            result = flop.capture(int(data[index]), float(arrival_times[index]))
            outputs[index] = result.output
            corrected[index] = result.corrected_output
            errors[index] = result.error
        bank_error = bool(errors.any())
        self._cycle_count += 1
        if bank_error:
            self._error_count += 1
        return BankCaptureResult(
            output_word=outputs,
            corrected_word=corrected,
            bit_errors=errors,
            error=bank_error,
        )

    def observed_error_rate(self) -> float:
        """Fraction of captured cycles with an asserted bank error signal."""
        if self._cycle_count == 0:
            return 0.0
        return self._error_count / self._cycle_count


@dataclass(frozen=True)
class BankCaptureResult:
    """Result of capturing one word in the flip-flop bank.

    Attributes
    ----------
    output_word:
        The word visible at the bank outputs right after the main edge
        (possibly containing stale bits).
    corrected_word:
        The word after error recovery (always correct).
    bit_errors:
        Per-bit ``Error_L`` signals.
    error:
        The bank-level error signal (OR of the per-bit signals); asserting it
        costs one recovery cycle in the pipeline.
    """

    output_word: np.ndarray
    corrected_word: np.ndarray
    bit_errors: np.ndarray
    error: bool
