"""The windowed voltage controller of the paper's Fig. 7.

The controller polls the bank error counter every ``window_cycles`` cycles
and asks its policy for a voltage change, which it forwards to the regulator.
It is deliberately small: all the intelligence is in the policy
(:mod:`repro.core.policies`) and all the physical behaviour (step size,
ramp delay, safety floor) is in the regulator (:mod:`repro.core.regulator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.error_detection import DEFAULT_WINDOW_CYCLES, WindowMeasurement
from repro.core.policies import BangBangPolicy, ControlPolicy
from repro.core.regulator import VoltageEvent, VoltageRegulator


@dataclass(frozen=True)
class ControlDecision:
    """Record of one controller decision (for analysis and plotting)."""

    window: WindowMeasurement
    requested_delta: float
    scheduled_event: VoltageEvent | None


@dataclass
class WindowedVoltageController:
    """Polls window error rates and drives the regulator.

    Parameters
    ----------
    regulator:
        The voltage regulator to command.
    policy:
        Control policy mapping window error rate to a requested change; the
        default is the paper's 1 %/2 % bang-bang policy.
    window_cycles:
        Decision interval in cycles (10 000 in the paper).
    """

    regulator: VoltageRegulator
    policy: ControlPolicy = field(default_factory=BangBangPolicy)
    window_cycles: int = DEFAULT_WINDOW_CYCLES
    decisions: list[ControlDecision] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.window_cycles <= 0:
            raise ValueError(f"window_cycles must be positive, got {self.window_cycles}")
        if self.window_cycles < self.regulator.ramp_delay_cycles:
            raise ValueError(
                "the decision window must be at least as long as the regulator ramp "
                f"delay ({self.window_cycles} < {self.regulator.ramp_delay_cycles}); "
                "otherwise decisions would pile up while a change is still pending"
            )

    def on_window(self, measurement: WindowMeasurement) -> ControlDecision:
        """Handle one completed measurement window.

        The policy's requested change is forwarded to the regulator, which
        clamps it to the grid and its floor/ceiling and schedules it after the
        ramp delay.
        """
        delta = self.policy.decide(measurement.error_rate)
        decision_cycle = measurement.start_cycle + measurement.n_cycles
        event: VoltageEvent | None = None
        if delta != 0.0:
            event = self.regulator.request_change(delta, decision_cycle)
        decision = ControlDecision(
            window=measurement, requested_delta=delta, scheduled_event=event
        )
        self.decisions.append(decision)
        return decision
