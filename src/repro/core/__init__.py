"""The paper's contribution: error-correcting DVS for on-chip buses.

* :mod:`repro.core.double_sampling_ff` -- the Razor-style flip-flop and bank,
* :mod:`repro.core.error_detection` -- windowed error-rate measurement,
* :mod:`repro.core.policies` / :mod:`repro.core.voltage_controller` -- the
  control loop of Fig. 7,
* :mod:`repro.core.regulator` -- the step/ramp voltage regulator,
* :mod:`repro.core.dvs_system` -- the closed-loop system,
* :mod:`repro.core.fixed_vs` -- the conventional fixed voltage-scaling baseline,
* :mod:`repro.core.oracle` -- future-knowledge optimal voltage selection.
"""

from repro.core.double_sampling_ff import (
    BankCaptureResult,
    CaptureResult,
    DoubleSamplingFlipFlop,
    FlipFlopBank,
    ShadowLatchViolationError,
)
from repro.core.error_detection import DEFAULT_WINDOW_CYCLES, ErrorCounter, WindowMeasurement
from repro.core.policies import BangBangPolicy, ControlPolicy, ProportionalPolicy
from repro.core.regulator import (
    PAPER_SLEW_SECONDS_PER_VOLT,
    VoltageEvent,
    VoltageRegulator,
    ramp_delay_cycles_for_step,
)
from repro.core.voltage_controller import ControlDecision, WindowedVoltageController
from repro.core.fixed_vs import (
    ASSUMED_WORST_IR_DROP,
    ASSUMED_WORST_TEMPERATURE_C,
    FixedScalingResult,
    evaluate_fixed_scaling,
    fixed_scaling_voltage,
)
from repro.core.oracle import (
    OracleSchedule,
    min_error_free_voltage_per_cycle,
    oracle_voltage_schedule,
)
from repro.core.dvs_system import DVSBusSystem, DVSRunResult
from repro.core.behavioral import BehavioralDVSSimulator, BehavioralRunResult
from repro.core.hold_constraint import HoldAnalysis, analyze_hold_constraint, fastest_bus_delay

__all__ = [
    "BankCaptureResult",
    "CaptureResult",
    "DoubleSamplingFlipFlop",
    "FlipFlopBank",
    "ShadowLatchViolationError",
    "DEFAULT_WINDOW_CYCLES",
    "ErrorCounter",
    "WindowMeasurement",
    "BangBangPolicy",
    "ControlPolicy",
    "ProportionalPolicy",
    "PAPER_SLEW_SECONDS_PER_VOLT",
    "VoltageEvent",
    "VoltageRegulator",
    "ramp_delay_cycles_for_step",
    "ControlDecision",
    "WindowedVoltageController",
    "ASSUMED_WORST_IR_DROP",
    "ASSUMED_WORST_TEMPERATURE_C",
    "FixedScalingResult",
    "evaluate_fixed_scaling",
    "fixed_scaling_voltage",
    "OracleSchedule",
    "min_error_free_voltage_per_cycle",
    "oracle_voltage_schedule",
    "DVSBusSystem",
    "DVSRunResult",
    "BehavioralDVSSimulator",
    "BehavioralRunResult",
    "HoldAnalysis",
    "analyze_hold_constraint",
    "fastest_bus_delay",
]
