"""Closed-loop DVS bus system: the paper's proposed scheme, end to end.

:class:`DVSBusSystem` ties together the characterised bus, the windowed error
counter, the control policy and the voltage regulator into the feedback loop
of the paper's Fig. 7:

1. the flip-flop bank's error signal is counted over 10 000-cycle windows,
2. at the end of each window the policy requests a voltage change
   (lower by 20 mV below 1 % errors, raise by 20 mV above 2 %),
3. the regulator applies the change 3 000 cycles later (its ramp delay) and
   never goes below the conservative shadow-latch safety floor.

The simulation is vectorised per constant-voltage block: the per-cycle work
(worst coupling factor, switched capacitance) is computed once by
:class:`~repro.bus.bus_model.CharacterizedBus.analyze`, and each block between
voltage events reduces to a few numpy comparisons, so multi-million-cycle runs
take milliseconds per benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.bus.bus_model import CharacterizedBus, TraceStatistics
from repro.circuit.pvt import PVTCorner
from repro.core.error_detection import DEFAULT_WINDOW_CYCLES, ErrorCounter
from repro.core.policies import BangBangPolicy, ControlPolicy
from repro.core.regulator import VoltageEvent, VoltageRegulator
from repro.core.voltage_controller import WindowedVoltageController
from repro.energy.accounting import EnergyBreakdown
from repro.energy.gains import breakdown_gain_percent
from repro.trace.trace import BusTrace


@dataclass(frozen=True)
class DVSRunResult:
    """Everything measured during one closed-loop DVS run.

    Attributes
    ----------
    n_cycles:
        Simulated cycles.
    total_errors:
        Corrected timing errors (each costs one recovery cycle).
    failures:
        Cycles that would have missed even the shadow-latch deadline; the
        regulator floor guarantees this is zero, and the simulator checks it.
    window_error_rates / window_start_cycles:
        Instantaneous error rate of each completed 10 000-cycle window (the
        dots of Fig. 8).
    window_voltages:
        Supply voltage at the *start* of each completed window.
    voltage_events:
        The piecewise-constant supply trajectory (cycle, voltage).
    energy / reference_energy:
        Energy breakdown of the run and of the same workload at nominal
        supply with no errors.
    minimum_voltage_reached / final_voltage:
        Diagnostics of how far the controller scaled the rail.
    per_cycle_voltage:
        Optional full per-cycle voltage array (kept only when requested).
    """

    n_cycles: int
    total_errors: int
    failures: int
    window_error_rates: np.ndarray
    window_start_cycles: np.ndarray
    window_voltages: np.ndarray
    voltage_events: List[VoltageEvent]
    energy: EnergyBreakdown
    reference_energy: EnergyBreakdown
    minimum_voltage_reached: float
    final_voltage: float
    per_cycle_voltage: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def average_error_rate(self) -> float:
        """Errors per cycle over the whole run."""
        if self.n_cycles == 0:
            return 0.0
        return self.total_errors / self.n_cycles

    @property
    def energy_gain_percent(self) -> float:
        """Energy gain versus the nominal supply, in percent (Table 1 metric)."""
        return breakdown_gain_percent(self.reference_energy, self.energy)

    @property
    def performance_penalty(self) -> float:
        """Fractional IPC loss under the paper's 1-cycle-per-error assumption."""
        return self.average_error_rate


class DVSBusSystem:
    """The proposed DVS scheme: error-correcting bus plus closed-loop control.

    Parameters
    ----------
    bus:
        Characterised bus at the PVT corner being simulated.
    policy:
        Voltage-control policy; defaults to the paper's 1 %/2 % bang-bang
        policy with 20 mV steps.
    window_cycles:
        Error-measurement window (10 000 cycles in the paper).
    ramp_delay_cycles:
        Regulator ramp delay between decision and application (3 000 cycles).
    v_floor:
        Regulator safety floor; by default it is derived from the shadow-latch
        deadline assuming worst-case temperature and IR drop for the bus's
        *process* corner, which is the only corner attribute the paper allows
        the floor to be tuned with.
    """

    def __init__(
        self,
        bus: CharacterizedBus,
        policy: Optional[ControlPolicy] = None,
        window_cycles: int = DEFAULT_WINDOW_CYCLES,
        ramp_delay_cycles: int = 3000,
        v_floor: Optional[float] = None,
    ) -> None:
        self.bus = bus
        self.policy = policy if policy is not None else BangBangPolicy()
        self.window_cycles = window_cycles
        self.ramp_delay_cycles = ramp_delay_cycles
        if v_floor is None:
            assumed = PVTCorner(bus.corner.process, 100.0, 0.10)
            v_floor = bus.minimum_safe_voltage(assumed)
        self.v_floor = bus.grid.snap(max(v_floor, bus.grid.v_min))

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def run(
        self,
        workload: Union[BusTrace, TraceStatistics],
        initial_voltage: Optional[float] = None,
        keep_cycle_voltage: bool = False,
        warmup_cycles: int = 0,
    ) -> DVSRunResult:
        """Simulate the closed loop over a workload.

        Parameters
        ----------
        workload:
            Either a raw :class:`BusTrace` or pre-computed
            :class:`TraceStatistics` (useful when the same trace is evaluated
            under several configurations).
        initial_voltage:
            Supply at cycle 0; defaults to the nominal supply, as in Fig. 8.
        keep_cycle_voltage:
            Keep the full per-cycle voltage array in the result (costs one
            float per cycle of memory).
        warmup_cycles:
            Number of leading cycles excluded from the energy and error-rate
            accounting (the controller still runs through them).  The paper's
            10-million-cycle runs make the initial descent from the nominal
            supply negligible; shorter reproduction runs use a warm-up so the
            reported gain reflects steady-state behaviour rather than the
            start-up transient.  The voltage/error time series always cover
            the whole run.
        """
        stats = (
            self.bus.analyze(workload.values) if isinstance(workload, BusTrace) else workload
        )
        n_cycles = stats.n_cycles
        if warmup_cycles < 0 or warmup_cycles >= n_cycles:
            raise ValueError(
                f"warmup_cycles must be in [0, {n_cycles}), got {warmup_cycles}"
            )
        nominal = self.bus.design.nominal_vdd
        start_voltage = nominal if initial_voltage is None else initial_voltage

        regulator = VoltageRegulator(
            grid=self.bus.grid,
            v_min=self.v_floor,
            v_max=nominal,
            initial_voltage=start_voltage,
            ramp_delay_cycles=self.ramp_delay_cycles,
        )
        controller = WindowedVoltageController(
            regulator=regulator, policy=self.policy, window_cycles=self.window_cycles
        )
        counter = ErrorCounter(self.window_cycles)

        voltage_per_cycle = np.empty(n_cycles)
        window_voltages: List[float] = []
        total_errors = 0
        failures = 0

        deadline = self.bus.design.clocking.main_deadline
        shadow_deadline = self.bus.design.clocking.shadow_deadline
        worst = stats.worst_coupling

        cycle = 0
        while cycle < n_cycles:
            window_end = min(cycle + self.window_cycles, n_cycles)
            window_voltages.append(regulator.current_voltage)
            block_start = cycle
            while block_start < window_end:
                regulator.apply_until(block_start)
                pending = regulator.pending_change
                block_end = window_end
                if pending is not None and block_start < pending.cycle < window_end:
                    block_end = pending.cycle
                voltage = regulator.current_voltage
                voltage_per_cycle[block_start:block_end] = voltage

                threshold = self.bus.table.failing_coupling_factor(voltage, deadline)
                shadow_threshold = self.bus.table.failing_coupling_factor(
                    voltage, shadow_deadline
                )
                block_worst = worst[block_start:block_end]
                block_errors = int(np.count_nonzero(block_worst > threshold))
                failures += int(np.count_nonzero(block_worst > shadow_threshold))
                total_errors += block_errors

                completed = counter.record(block_end - block_start, block_errors)
                for measurement in completed:
                    controller.on_window(measurement)
                block_start = block_end
            cycle = window_end
        counter.flush()

        if failures:
            raise RuntimeError(
                f"{failures} cycle(s) missed the shadow-latch deadline; the regulator "
                "floor is not conservative enough for this corner"
            )

        # Energy and error-rate accounting over the measured (post-warm-up) region.
        measured_stats = stats.slice(warmup_cycles, n_cycles) if warmup_cycles else stats
        measured_voltage = voltage_per_cycle[warmup_cycles:]
        measured_errors = int(
            np.count_nonzero(self.bus.error_mask(measured_stats, measured_voltage))
        )
        energy = self.bus.energy_breakdown(
            measured_stats, measured_voltage, n_errors=measured_errors
        )
        reference = self.bus.nominal_energy(measured_stats)
        windows = counter.completed_windows
        result = DVSRunResult(
            n_cycles=len(measured_voltage),
            total_errors=measured_errors,
            failures=failures,
            window_error_rates=np.array([w.error_rate for w in windows]),
            window_start_cycles=np.array([w.start_cycle for w in windows]),
            window_voltages=np.array(window_voltages[: len(windows)]),
            voltage_events=regulator.events,
            energy=energy,
            reference_energy=reference,
            minimum_voltage_reached=float(np.min(voltage_per_cycle)),
            final_voltage=regulator.current_voltage,
            per_cycle_voltage=voltage_per_cycle if keep_cycle_voltage else None,
        )
        return result
