"""Closed-loop DVS bus system: the paper's proposed scheme, end to end.

:class:`DVSBusSystem` ties together the characterised bus, the windowed error
counter, the control policy and the voltage regulator into the feedback loop
of the paper's Fig. 7:

1. the flip-flop bank's error signal is counted over 10 000-cycle windows,
2. at the end of each window the policy requests a voltage change
   (lower by 20 mV below 1 % errors, raise by 20 mV above 2 %),
3. the regulator applies the change 3 000 cycles later (its ramp delay) and
   never goes below the conservative shadow-latch safety floor.

The simulation is *streamed*: the workload -- a trace, pre-computed
statistics, or a :class:`~repro.trace.stream.TraceSource` -- is consumed one
chunk at a time through :class:`DVSRunState`, which carries the regulator,
controller and error-counter state plus exact per-grid-voltage energy
accumulators across chunk boundaries.  Within a chunk each constant-voltage
block reduces to a few numpy comparisons, so paper-scale (10 M cycle) runs
take seconds per benchmark while peak memory stays O(chunk).

Because the control trajectory is a deterministic function of integer
per-window error counts, and the energy accumulators are exact integer
totals contracted in fixed grid order, a chunked run is **bit-identical** to
a monolithic one for any chunk size -- a guarantee the streaming-equivalence
tests enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from collections.abc import Callable

import numpy as np

from repro.bus.bus_model import CharacterizedBus, TraceStatistics, TraceSummary
from repro.bus.engine import ENGINE_PARALLEL, resolve_engine
from repro.circuit.pvt import PVTCorner
from repro.core.error_detection import DEFAULT_WINDOW_CYCLES, ErrorCounter
from repro.core.policies import BangBangPolicy, ControlPolicy
from repro.core.regulator import VoltageEvent, VoltageRegulator
from repro.core.voltage_controller import WindowedVoltageController
from repro.energy.accounting import EnergyBreakdown
from repro.energy.gains import breakdown_gain_percent
from repro.trace.stream import TraceSource, as_trace_source
from repro.trace.trace import BusTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.runtime.parallel import ChunkSegmenter, ParallelChunkScheduler

#: A per-chunk progress callback: ``callback(done_cycles, total_cycles)``.
ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class DVSRunResult:
    """Everything measured during one closed-loop DVS run.

    Attributes
    ----------
    n_cycles:
        Simulated cycles.
    total_errors:
        Corrected timing errors (each costs one recovery cycle).
    failures:
        Cycles that would have missed even the shadow-latch deadline; the
        regulator floor guarantees this is zero, and the simulator checks it.
    window_error_rates / window_start_cycles:
        Instantaneous error rate of each completed 10 000-cycle window (the
        dots of Fig. 8).
    window_voltages:
        Supply voltage at the *start* of each completed window.
    voltage_events:
        The piecewise-constant supply trajectory (cycle, voltage).
    energy / reference_energy:
        Energy breakdown of the run and of the same workload at nominal
        supply with no errors.
    minimum_voltage_reached / final_voltage:
        Diagnostics of how far the controller scaled the rail.
    per_cycle_voltage:
        Optional full per-cycle voltage array (kept only when requested).
    """

    n_cycles: int
    total_errors: int
    failures: int
    window_error_rates: np.ndarray
    window_start_cycles: np.ndarray
    window_voltages: np.ndarray
    voltage_events: list[VoltageEvent]
    energy: EnergyBreakdown
    reference_energy: EnergyBreakdown
    minimum_voltage_reached: float
    final_voltage: float
    per_cycle_voltage: np.ndarray | None = field(default=None, repr=False)

    @property
    def average_error_rate(self) -> float:
        """Errors per cycle over the whole run."""
        if self.n_cycles == 0:
            return 0.0
        return self.total_errors / self.n_cycles

    @property
    def energy_gain_percent(self) -> float:
        """Energy gain versus the nominal supply, in percent (Table 1 metric)."""
        return breakdown_gain_percent(self.reference_energy, self.energy)

    @property
    def performance_penalty(self) -> float:
        """Fractional IPC loss under the paper's 1-cycle-per-error assumption."""
        return self.average_error_rate


class DVSRunState:
    """The closed loop mid-run: feed chunk statistics, then finish.

    Created by :meth:`DVSBusSystem.stream`; callers that already walk a
    workload chunk by chunk (e.g. the Table 1 driver, which reduces the same
    chunks for the fixed-VS baseline in the same pass) feed each chunk's
    :class:`TraceStatistics` in order and collect the
    :class:`DVSRunResult` from :meth:`finish`.
    """

    def __init__(
        self,
        system: DVSBusSystem,
        n_cycles: int,
        initial_voltage: float | None,
        keep_cycle_voltage: bool,
        warmup_cycles: int,
    ) -> None:
        if warmup_cycles < 0 or warmup_cycles >= n_cycles:
            raise ValueError(
                f"warmup_cycles must be in [0, {n_cycles}), got {warmup_cycles}"
            )
        self._system = system
        bus = system.bus
        self._n_cycles = n_cycles
        self._warmup = warmup_cycles
        nominal = bus.design.nominal_vdd
        start_voltage = nominal if initial_voltage is None else initial_voltage

        self._regulator = VoltageRegulator(
            grid=bus.grid,
            v_min=system.v_floor,
            v_max=nominal,
            initial_voltage=start_voltage,
            ramp_delay_cycles=system.ramp_delay_cycles,
        )
        self._controller = WindowedVoltageController(
            regulator=self._regulator,
            policy=system.policy,
            window_cycles=system.window_cycles,
        )
        self._counter = ErrorCounter(system.window_cycles)

        # Error thresholds per grid-voltage index (the block loop only ever
        # sees on-grid voltages, so both deadlines tabulate once).
        deadline = bus.design.clocking.main_deadline
        shadow = bus.design.clocking.shadow_deadline
        self._thr_main = np.array(
            [bus.table.failing_coupling_factor(v, deadline) for v in bus.grid.voltages]
        )
        self._thr_shadow = np.array(
            [bus.table.failing_coupling_factor(v, shadow) for v in bus.grid.voltages]
        )

        # Exact per-grid-voltage accumulators over the measured (post-warm-up)
        # region; these make the final energy independent of chunking.
        n_grid = len(bus.grid)
        self._meas_cycles = np.zeros(n_grid, dtype=np.int64)
        self._meas_toggles = np.zeros(n_grid)
        self._meas_weights = np.zeros(n_grid)
        self._meas_errors = 0

        self._window_voltages: list[float] = []
        self._next_window_start = 0
        self._failures = 0
        self._min_voltage = float("inf")
        self._cursor = 0  # next global cycle expected by feed()
        self._voltage_per_cycle = np.empty(n_cycles) if keep_cycle_voltage else None

    @property
    def n_cycles(self) -> int:
        """Total cycles this run will cover."""
        return self._n_cycles

    @property
    def cycles_fed(self) -> int:
        """Cycles consumed so far."""
        return self._cursor

    def feed(self, stats: TraceStatistics) -> None:
        """Advance the closed loop over the next chunk of per-cycle statistics."""
        n = stats.n_cycles
        start = self._cursor
        if start + n > self._n_cycles:
            raise ValueError(
                f"chunk of {n} cycles overruns the declared run length "
                f"({start} + {n} > {self._n_cycles})"
            )
        regulator = self._regulator
        grid = self._system.bus.grid
        window_cycles = self._system.window_cycles
        worst = stats.worst_coupling
        toggles = stats.toggles
        weights = stats.coupling_weights
        warmup = self._warmup

        position = 0
        while position < n:
            cycle = start + position
            if cycle == self._next_window_start:
                # Window voltages are sampled *before* any change that lands
                # exactly on the window boundary is applied.
                self._window_voltages.append(regulator.current_voltage)
                self._next_window_start += window_cycles
            regulator.apply_until(cycle)
            voltage = regulator.current_voltage
            v_index = grid.index_of(voltage)

            window_end = (cycle // window_cycles + 1) * window_cycles
            block_end = min(window_end, start + n, self._n_cycles)
            pending = regulator.pending_change
            if pending is not None and cycle < pending.cycle < block_end:
                block_end = pending.cycle

            block = slice(position, position + (block_end - cycle))
            block_worst = worst[block]
            block_errors = int(np.count_nonzero(block_worst > self._thr_main[v_index]))
            self._failures += int(
                np.count_nonzero(block_worst > self._thr_shadow[v_index])
            )
            if self._voltage_per_cycle is not None:
                self._voltage_per_cycle[cycle:block_end] = voltage
            self._min_voltage = min(self._min_voltage, voltage)

            # Measured (post-warm-up) accounting for energy and error rate.
            measured_start = max(cycle, warmup)
            if measured_start < block_end:
                mslice = slice(position + (measured_start - cycle), block.stop)
                self._meas_cycles[v_index] += block_end - measured_start
                self._meas_toggles[v_index] += float(np.sum(toggles[mslice]))
                self._meas_weights[v_index] += float(np.sum(weights[mslice]))
                if measured_start == cycle:
                    self._meas_errors += block_errors
                else:
                    self._meas_errors += int(
                        np.count_nonzero(worst[mslice] > self._thr_main[v_index])
                    )

            for measurement in self._counter.record(block_end - cycle, block_errors):
                self._controller.on_window(measurement)
            position += block_end - cycle
        self._cursor = start + n

    def feed_summary(self, summary: TraceSummary) -> None:
        """Advance the closed loop over one *constant-state segment* summary.

        This is the parallel engine's replay step: the summary must cover
        exactly the next segment between two control boundaries (window
        starts, ramp applications, the warm-up edge -- see
        :meth:`DVSBusSystem.control_segmenter`), over which the supply
        voltage and the accounting regime are provably constant.  Within
        such a segment the serial block loop of :meth:`feed` reduces to the
        summary's exact totals, so replaying segment summaries reproduces
        the serial run bit-identically.  Raises if the segment would
        straddle a boundary (a summary cannot be split after the fact).
        """
        n = summary.n_cycles
        start = self._cursor
        end = start + n
        if end > self._n_cycles:
            raise ValueError(
                f"segment of {n} cycles overruns the declared run length "
                f"({start} + {n} > {self._n_cycles})"
            )
        if n == 0:
            return
        regulator = self._regulator
        grid = self._system.bus.grid
        window_cycles = self._system.window_cycles
        cycle = start
        if cycle == self._next_window_start:
            # Same ordering as feed(): the window voltage is sampled before
            # any change landing exactly on the window boundary is applied.
            self._window_voltages.append(regulator.current_voltage)
            self._next_window_start += window_cycles
        regulator.apply_until(cycle)
        voltage = regulator.current_voltage
        v_index = grid.index_of(voltage)

        window_end = (cycle // window_cycles + 1) * window_cycles
        boundary = min(window_end, self._n_cycles)
        pending = regulator.pending_change
        if pending is not None and cycle < pending.cycle < boundary:
            boundary = pending.cycle
        if end > boundary:
            raise ValueError(
                f"segment [{start}, {end}) straddles a control boundary at "
                f"{boundary}; re-segment the run with control_segmenter()"
            )
        if cycle < self._warmup < end:
            raise ValueError(
                f"segment [{start}, {end}) straddles the warm-up boundary at "
                f"{self._warmup}; re-segment the run with control_segmenter()"
            )

        block_errors = summary.error_count(float(self._thr_main[v_index]))
        self._failures += summary.error_count(float(self._thr_shadow[v_index]))
        if self._voltage_per_cycle is not None:
            self._voltage_per_cycle[cycle:end] = voltage
        self._min_voltage = min(self._min_voltage, voltage)

        if cycle >= self._warmup:
            self._meas_cycles[v_index] += n
            self._meas_toggles[v_index] += summary.toggles_total
            self._meas_weights[v_index] += summary.coupling_weights_total
            self._meas_errors += block_errors

        for measurement in self._counter.record(n, block_errors):
            self._controller.on_window(measurement)
        self._cursor = end

    def finish(self) -> DVSRunResult:
        """Close the run and assemble the :class:`DVSRunResult`."""
        if self._cursor != self._n_cycles:
            raise ValueError(
                f"run was declared for {self._n_cycles} cycles but only "
                f"{self._cursor} were fed"
            )
        self._counter.flush()
        if self._failures:
            raise RuntimeError(
                f"{self._failures} cycle(s) missed the shadow-latch deadline; the "
                "regulator floor is not conservative enough for this corner"
            )
        bus = self._system.bus
        energy = bus.energy_from_voltage_totals(
            self._meas_cycles, self._meas_toggles, self._meas_weights, self._meas_errors
        )
        reference = bus.energy_at_constant_supply(
            bus.design.nominal_vdd,
            int(self._meas_cycles.sum()),
            float(self._meas_toggles.sum()),
            float(self._meas_weights.sum()),
        )

        windows = self._counter.completed_windows
        return DVSRunResult(
            n_cycles=self._n_cycles - self._warmup,
            total_errors=self._meas_errors,
            failures=self._failures,
            window_error_rates=np.array([w.error_rate for w in windows]),
            window_start_cycles=np.array([w.start_cycle for w in windows]),
            window_voltages=np.array(self._window_voltages[: len(windows)]),
            voltage_events=self._regulator.events,
            energy=energy,
            reference_energy=reference,
            minimum_voltage_reached=self._min_voltage,
            final_voltage=self._regulator.current_voltage,
            per_cycle_voltage=self._voltage_per_cycle,
        )


class DVSBusSystem:
    """The proposed DVS scheme: error-correcting bus plus closed-loop control.

    The workload itself only enters at :meth:`run` / :meth:`stream` time and
    is always consumed chunk by chunk; constructing the system is cheap and
    workload-free.

    Parameters
    ----------
    bus:
        Characterised bus at the PVT corner being simulated (either live or
        loaded via :meth:`CharacterizedBus.from_database` -- the two are
        bit-identical).
    policy:
        Voltage-control policy; defaults to the paper's 1 %/2 % bang-bang
        policy with 20 mV steps.
    window_cycles:
        Error-measurement window (10 000 cycles in the paper).
    ramp_delay_cycles:
        Regulator ramp delay between decision and application (3 000 cycles).
    v_floor:
        Regulator safety floor; by default it is derived from the shadow-latch
        deadline assuming worst-case temperature and IR drop for the bus's
        *process* corner, which is the only corner attribute the paper allows
        the floor to be tuned with.  The derivation probes
        :meth:`CharacterizedBus.minimum_safe_voltage` at (process, 100 C,
        10 % IR drop); the standard characterization database bakes these
        floor corners in, so ``--chardb`` runs never re-enter the circuit
        models here either.
    """

    def __init__(
        self,
        bus: CharacterizedBus,
        policy: ControlPolicy | None = None,
        window_cycles: int = DEFAULT_WINDOW_CYCLES,
        ramp_delay_cycles: int = 3000,
        v_floor: float | None = None,
    ) -> None:
        self.bus = bus
        self.policy = policy if policy is not None else BangBangPolicy()
        self.window_cycles = window_cycles
        self.ramp_delay_cycles = ramp_delay_cycles
        if v_floor is None:
            assumed = PVTCorner(bus.corner.process, 100.0, 0.10)
            v_floor = bus.minimum_safe_voltage(assumed)
        self.v_floor = bus.grid.snap(max(v_floor, bus.grid.v_min))

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def stream(
        self,
        n_cycles: int,
        initial_voltage: float | None = None,
        keep_cycle_voltage: bool = False,
        warmup_cycles: int = 0,
    ) -> DVSRunState:
        """Open a chunk-by-chunk run of ``n_cycles`` cycles.

        Use this when the caller drives the chunk loop itself (e.g. to share
        one pass over a :class:`~repro.trace.stream.TraceSource` between the
        closed loop and other reductions); otherwise :meth:`run` does the
        walking.
        """
        return DVSRunState(self, n_cycles, initial_voltage, keep_cycle_voltage, warmup_cycles)

    def control_segmenter(self, n_cycles: int, warmup_cycles: int = 0) -> ChunkSegmenter:
        """Segment boundaries over which this system's control state is constant.

        The supply voltage can only change at window starts and regulator
        ramp applications -- cycles fixed by the configuration, never by the
        data -- and the accounting regime flips once at the warm-up edge.
        The parallel engine reduces each such segment to an exact summary
        and replays them through :meth:`DVSRunState.feed_summary`.
        """
        from repro.runtime.parallel import ChunkSegmenter

        return ChunkSegmenter(
            n_cycles=n_cycles,
            window_cycles=self.window_cycles,
            ramp_delay_cycles=self.ramp_delay_cycles,
            warmup_cycles=warmup_cycles,
        )

    def run(
        self,
        workload: BusTrace | TraceStatistics | TraceSource,
        initial_voltage: float | None = None,
        keep_cycle_voltage: bool = False,
        warmup_cycles: int = 0,
        chunk_cycles: int | None = None,
        progress: ProgressCallback | None = None,
        engine: str | None = None,
        jobs: int | None = None,
        scheduler: "ParallelChunkScheduler" | None = None,
    ) -> DVSRunResult:
        """Simulate the closed loop over a workload.

        Parameters
        ----------
        workload:
            A raw :class:`BusTrace`, pre-computed :class:`TraceStatistics`
            (useful when the same trace is evaluated under several
            configurations), or a :class:`~repro.trace.stream.TraceSource`
            streamed chunk by chunk in O(chunk) memory.
        initial_voltage:
            Supply at cycle 0; defaults to the nominal supply, as in Fig. 8.
        keep_cycle_voltage:
            Keep the full per-cycle voltage array in the result (costs one
            float per cycle of memory -- the one deliberately O(n) option).
        warmup_cycles:
            Number of leading cycles excluded from the energy and error-rate
            accounting (the controller still runs through them).  The paper's
            10-million-cycle runs make the initial descent from the nominal
            supply negligible; shorter reproduction runs use a warm-up so the
            reported gain reflects steady-state behaviour rather than the
            start-up transient.  The voltage/error time series always cover
            the whole run.
        chunk_cycles:
            Streaming granularity for trace/source workloads.  Results are
            bit-identical for any value; it only trades memory against numpy
            batch efficiency.
        progress:
            Optional ``callback(done_cycles, total_cycles)`` invoked after
            every chunk (see :class:`repro.runtime.progress.ChunkProgress`).
        engine:
            Kernel engine computing the per-cycle statistics
            (:mod:`repro.bus.engine`): the default ``"vectorized"`` runs the
            integer-lane block kernels over packed chunks, ``"scalar"`` the
            per-wire reference path, and ``"parallel"`` the two-pass
            multicore pipeline.  Results are bit-identical in every case.
        jobs:
            Worker processes for the parallel engine.  ``jobs > 1`` implies
            ``engine="parallel"``; ``engine="parallel"`` without ``jobs``
            runs the same two-pass pipeline inline (one process).
        scheduler:
            An existing :class:`~repro.runtime.parallel.ParallelChunkScheduler`
            to reuse (keeps one worker pool warm across many runs); implies
            the parallel engine.  The caller retains ownership.
        """
        if isinstance(workload, TraceStatistics):
            total = workload.n_cycles
        elif isinstance(workload, (BusTrace, TraceSource)):
            total = workload.n_cycles
        else:
            raise TypeError(f"cannot simulate a workload of type {type(workload).__name__}")
        from repro.telemetry import get_telemetry

        telemetry = get_telemetry()
        state = self.stream(
            total,
            initial_voltage=initial_voltage,
            keep_cycle_voltage=keep_cycle_voltage,
            warmup_cycles=warmup_cycles,
        )
        parallel = (
            scheduler is not None
            or (jobs is not None and jobs > 1)
            or resolve_engine(engine) == ENGINE_PARALLEL
        ) and not isinstance(workload, TraceStatistics)
        with telemetry.span(
            "dvs.run", workload=getattr(workload, "name", ""), cycles=total
        ):
            if parallel:
                # Two-pass pipeline: parallel per-segment statistics, then a
                # sequential replay of the closed loop over the summaries.
                # Segments end exactly at the (data-independent) control
                # boundaries, so the replay is bit-identical to the serial
                # block loop below.
                from repro.runtime.parallel import ParallelChunkScheduler

                source = as_trace_source(workload)
                segmenter = self.control_segmenter(total, warmup_cycles=warmup_cycles)
                own = scheduler is None
                sched = (
                    scheduler
                    if scheduler is not None
                    else ParallelChunkScheduler(n_workers=jobs if jobs is not None else 1)
                )
                try:
                    summaries = sched.segment_summaries(
                        source,
                        segmenter,
                        self.bus.design.topology,
                        engine=engine,
                        chunk_cycles=chunk_cycles,
                        progress=progress,
                    )
                finally:
                    if own:
                        sched.close()
                with telemetry.span("dvs.replay", segments=len(summaries)):
                    for summary in summaries:
                        state.feed_summary(summary)
            else:
                for stats, start in self.bus.iter_statistics(
                    workload, chunk_cycles, engine=engine
                ):
                    with telemetry.span("dvs.chunk", start_cycle=start):
                        state.feed(stats)
                    if progress is not None:
                        progress(state.cycles_fed, total)
            result = state.finish()
        if telemetry.enabled:
            # Controller-side accounting for the end-of-run summary: how much
            # was simulated, how hard the closed loop worked, and how often
            # the regulator actually moved the rail.
            telemetry.count("dvs.cycles_simulated", result.n_cycles)
            telemetry.count("dvs.errors_corrected", result.total_errors)
            telemetry.count("dvs.windows_measured", len(result.window_error_rates))
            telemetry.count("dvs.voltage_transitions", len(result.voltage_events))
            telemetry.gauge("dvs.final_voltage_v", result.final_voltage)
            telemetry.gauge("dvs.min_voltage_v", result.minimum_voltage_reached)
        return result
