"""Behavioural voltage-regulator model.

The paper's control system changes the bus supply in 20 mV steps, but a real
regulator ramps slowly (about 1 us per 10 mV), so a decided change only takes
effect 2 us -- 3 000 cycles at 1.5 GHz -- after the decision.  The regulator is
also responsible for the *safety floor*: it never goes below the conservative
minimum voltage at which the worst-case switching pattern still meets the
shadow-latch deadline (assuming worst-case temperature and IR drop for the
known process corner), so error recovery always succeeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.lookup_table import VoltageGrid
from repro.utils.validation import check_positive

#: Regulator slew rate assumed by the paper (seconds per volt): 1 us / 10 mV.
PAPER_SLEW_SECONDS_PER_VOLT = 1e-6 / 0.010


@dataclass(frozen=True)
class VoltageEvent:
    """A supply-voltage change applied at a specific cycle."""

    cycle: int
    voltage: float


@dataclass
class VoltageRegulator:
    """Step-wise voltage regulator with a ramp (application) delay.

    Parameters
    ----------
    grid:
        The voltage grid the regulator can sit on (20 mV steps).
    v_min:
        Safety floor: the lowest voltage the regulator will ever apply.
    v_max:
        Ceiling, normally the nominal supply.
    initial_voltage:
        Voltage at cycle 0 (the paper's Fig. 8 run starts from nominal).
    ramp_delay_cycles:
        Cycles between a change decision and the new voltage taking effect
        (3 000 cycles for a 20 mV step at 1.5 GHz with the paper's regulator).
    """

    grid: VoltageGrid
    v_min: float
    v_max: float
    initial_voltage: float
    ramp_delay_cycles: int = 3000
    _events: list[VoltageEvent] = field(default_factory=list, repr=False)
    _pending: VoltageEvent | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_positive("ramp_delay_cycles", self.ramp_delay_cycles, strict=False)
        if self.v_min > self.v_max:
            raise ValueError(f"v_min ({self.v_min}) must be <= v_max ({self.v_max})")
        self.v_min = self.grid.snap(self.v_min)
        self.v_max = self.grid.snap(self.v_max)
        initial = min(max(self.initial_voltage, self.v_min), self.v_max)
        initial = self.grid.snap(initial)
        self.initial_voltage = initial
        self._events = [VoltageEvent(cycle=0, voltage=initial)]
        self._pending = None

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def current_voltage(self) -> float:
        """Voltage after the most recently applied event."""
        return self._events[-1].voltage

    @property
    def pending_change(self) -> VoltageEvent | None:
        """The scheduled-but-not-yet-applied change, if any."""
        return self._pending

    @property
    def events(self) -> list[VoltageEvent]:
        """All applied voltage events (cycle, voltage), in order."""
        return list(self._events)

    # ------------------------------------------------------------------ #
    # Operation
    # ------------------------------------------------------------------ #
    def request_change(self, delta: float, decision_cycle: int) -> VoltageEvent | None:
        """Request a voltage change of ``delta`` volts at ``decision_cycle``.

        The change is clamped to the regulator's floor/ceiling, snapped to the
        grid and scheduled ``ramp_delay_cycles`` later.  Requests for a zero
        effective change return ``None``.  A request while another change is
        still pending is rejected with ``RuntimeError`` -- the paper's
        controller cannot issue one because its decision interval (10 000
        cycles) exceeds the ramp delay.
        """
        if self._pending is not None:
            raise RuntimeError("a voltage change is already pending")
        if decision_cycle < self._events[-1].cycle:
            raise ValueError("decision_cycle must not precede the last applied event")
        target = self.current_voltage + delta
        target = min(max(target, self.v_min), self.v_max)
        target = self.grid.snap(target)
        if abs(target - self.current_voltage) < 1e-12:
            return None
        event = VoltageEvent(cycle=decision_cycle + self.ramp_delay_cycles, voltage=target)
        self._pending = event
        return event

    def apply_until(self, cycle: int) -> list[VoltageEvent]:
        """Apply any pending change whose application cycle is <= ``cycle``."""
        applied: list[VoltageEvent] = []
        if self._pending is not None and self._pending.cycle <= cycle:
            self._events.append(self._pending)
            applied.append(self._pending)
            self._pending = None
        return applied

    def voltage_breakpoints(self, n_cycles: int) -> list[tuple[int, int, float]]:
        """Piecewise-constant voltage segments covering ``[0, n_cycles)``.

        Returns a list of ``(start_cycle, end_cycle, voltage)`` tuples that a
        vectorised energy computation can consume directly.
        """
        segments: list[tuple[int, int, float]] = []
        events = self._events
        for index, event in enumerate(events):
            start = event.cycle
            end = events[index + 1].cycle if index + 1 < len(events) else n_cycles
            start = max(start, 0)
            end = min(end, n_cycles)
            if start < end:
                segments.append((start, end, event.voltage))
        return segments


def ramp_delay_cycles_for_step(
    step_voltage: float,
    clock_frequency: float,
    slew_seconds_per_volt: float = PAPER_SLEW_SECONDS_PER_VOLT,
) -> int:
    """Cycles needed to ramp one voltage step at a given regulator slew rate.

    For the paper's parameters (20 mV step, 1 us / 10 mV, 1.5 GHz) this is the
    3 000-cycle delay quoted in Section 5.
    """
    check_positive("step_voltage", step_voltage)
    check_positive("clock_frequency", clock_frequency)
    check_positive("slew_seconds_per_volt", slew_seconds_per_volt)
    return int(round(step_voltage * slew_seconds_per_volt * clock_frequency))
