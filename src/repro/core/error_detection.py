"""Windowed error-rate measurement (the error counter of Fig. 7).

The control system of the paper counts bank error signals over 10 000-cycle
windows; the counter is reset at the end of every window and the voltage
controller acts on the measured rate.  :class:`ErrorCounter` models exactly
that, and additionally keeps the history of completed windows for analysis
(instantaneous error rates of Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Window length used by the paper's control system.
DEFAULT_WINDOW_CYCLES = 10_000


@dataclass(frozen=True)
class WindowMeasurement:
    """Error statistics of one completed measurement window."""

    start_cycle: int
    n_cycles: int
    n_errors: int

    @property
    def error_rate(self) -> float:
        """Errors per cycle in this window."""
        if self.n_cycles == 0:
            return 0.0
        return self.n_errors / self.n_cycles


class ErrorCounter:
    """Accumulates bank error signals and reports per-window error rates.

    The counter accepts *batched* updates (``record(n_cycles, n_errors)``) so
    the vectorised simulator can feed it block results; it also accepts
    single-cycle updates for the behavioural flip-flop bank path.
    """

    def __init__(self, window_cycles: int = DEFAULT_WINDOW_CYCLES) -> None:
        if window_cycles <= 0:
            raise ValueError(f"window_cycles must be positive, got {window_cycles}")
        self.window_cycles = window_cycles
        self._cycle_in_window = 0
        self._errors_in_window = 0
        self._total_cycles = 0
        self._total_errors = 0
        self._completed: list[WindowMeasurement] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(self, n_cycles: int, n_errors: int) -> list[WindowMeasurement]:
        """Record a block of cycles containing ``n_errors`` bank errors.

        The block must not straddle a window boundary (the caller aligns its
        blocks to windows); completed windows are returned so the caller can
        drive the voltage controller.
        """
        if n_cycles < 0 or n_errors < 0:
            raise ValueError("cycle and error counts must be non-negative")
        if n_errors > n_cycles:
            raise ValueError(f"cannot have {n_errors} errors in {n_cycles} cycles")
        if self._cycle_in_window + n_cycles > self.window_cycles:
            raise ValueError(
                "a recorded block must not straddle a window boundary "
                f"({self._cycle_in_window} + {n_cycles} > {self.window_cycles})"
            )
        self._cycle_in_window += n_cycles
        self._errors_in_window += n_errors
        self._total_cycles += n_cycles
        self._total_errors += n_errors

        completed: list[WindowMeasurement] = []
        if self._cycle_in_window == self.window_cycles:
            completed.append(self._close_window())
        return completed

    def record_cycle(self, error: bool) -> list[WindowMeasurement]:
        """Record a single cycle (behavioural flip-flop bank path)."""
        return self.record(1, 1 if error else 0)

    def flush(self) -> list[WindowMeasurement]:
        """Close a partially filled window at the end of a run (if any)."""
        if self._cycle_in_window == 0:
            return []
        return [self._close_window()]

    def _close_window(self) -> WindowMeasurement:
        start = self._total_cycles - self._cycle_in_window
        measurement = WindowMeasurement(
            start_cycle=start,
            n_cycles=self._cycle_in_window,
            n_errors=self._errors_in_window,
        )
        self._completed.append(measurement)
        self._cycle_in_window = 0
        self._errors_in_window = 0
        return measurement

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def completed_windows(self) -> list[WindowMeasurement]:
        """All completed measurement windows, in order."""
        return list(self._completed)

    @property
    def total_cycles(self) -> int:
        """Total cycles recorded (including the current partial window)."""
        return self._total_cycles

    @property
    def total_errors(self) -> int:
        """Total errors recorded (including the current partial window)."""
        return self._total_errors

    @property
    def average_error_rate(self) -> float:
        """Error rate over everything recorded so far."""
        if self._total_cycles == 0:
            return 0.0
        return self._total_errors / self._total_cycles
