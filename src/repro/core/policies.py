"""Voltage-control policies.

The paper uses a deliberately simple bang-bang policy: if the error rate of
the last window is below 1 % the supply is lowered by 20 mV, if it is above
2 % the supply is raised by 20 mV, otherwise it is left alone.  The paper
notes that a proportional controller could be used instead but argues the
simple policy works well without the hardware overhead; both are provided
here so that claim can be examined (see the ablation benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.utils.validation import check_fraction, check_positive

#: The paper's voltage step (20 mV).
DEFAULT_VOLTAGE_STEP = 0.020


class ControlPolicy(Protocol):
    """Protocol of a voltage-control policy.

    A policy maps the error rate measured over the last window to a requested
    supply-voltage change in volts (negative = scale down).
    """

    def decide(self, window_error_rate: float) -> float:
        """Requested voltage change for the observed window error rate."""
        ...


@dataclass(frozen=True)
class BangBangPolicy:
    """The paper's threshold policy: +/- one step, or hold.

    Attributes
    ----------
    low_threshold:
        Error rate below which the voltage is lowered (1 % in the paper).
    high_threshold:
        Error rate above which the voltage is raised (2 % in the paper).
    step:
        Voltage step magnitude in volts (20 mV in the paper).
    """

    low_threshold: float = 0.01
    high_threshold: float = 0.02
    step: float = DEFAULT_VOLTAGE_STEP

    def __post_init__(self) -> None:
        check_fraction("low_threshold", self.low_threshold)
        check_fraction("high_threshold", self.high_threshold)
        check_positive("step", self.step)
        if self.low_threshold > self.high_threshold:
            raise ValueError(
                f"low_threshold ({self.low_threshold}) must be <= "
                f"high_threshold ({self.high_threshold})"
            )

    def decide(self, window_error_rate: float) -> float:
        """Lower below the band, raise above it, hold inside it."""
        check_fraction("window_error_rate", window_error_rate)
        if window_error_rate < self.low_threshold:
            return -self.step
        if window_error_rate > self.high_threshold:
            return +self.step
        return 0.0


@dataclass(frozen=True)
class ProportionalPolicy:
    """A proportional policy quantised to multiples of the voltage step.

    The requested change is proportional to the difference between the
    observed error rate and the target rate, quantised to whole 20 mV steps
    and clamped to ``max_steps`` per decision.  The paper dismisses this as
    hard to tune (the bus error rate is a strongly non-linear function of the
    supply); it is provided for the ablation study.

    Attributes
    ----------
    target_error_rate:
        Error rate the controller steers towards.
    gain:
        Voltage change per unit of error-rate difference (volts per 100 %).
    step:
        Quantisation step in volts.
    max_steps:
        Maximum number of steps per decision.
    """

    target_error_rate: float = 0.015
    gain: float = 1.0
    step: float = DEFAULT_VOLTAGE_STEP
    max_steps: int = 3

    def __post_init__(self) -> None:
        check_fraction("target_error_rate", self.target_error_rate)
        check_positive("gain", self.gain)
        check_positive("step", self.step)
        if self.max_steps <= 0:
            raise ValueError(f"max_steps must be positive, got {self.max_steps}")

    def decide(self, window_error_rate: float) -> float:
        """Move towards the target error rate, in whole quantised steps."""
        check_fraction("window_error_rate", window_error_rate)
        raw = self.gain * (window_error_rate - self.target_error_rate)
        n_steps = int(round(raw / self.step))
        n_steps = max(-self.max_steps, min(self.max_steps, n_steps))
        return n_steps * self.step
