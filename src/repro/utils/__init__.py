"""Small shared utilities: units, validation helpers, and RNG management."""

from repro.utils.units import (
    CELSIUS_TO_KELVIN,
    fF,
    GHz,
    kelvin,
    MHz,
    mV,
    nm,
    ohm_per_square,
    pF,
    ps,
    um,
    volts_from_mv,
)
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_positive,
    check_probability,
)
from repro.utils.rng import make_rng, spawn_rngs

__all__ = [
    "CELSIUS_TO_KELVIN",
    "fF",
    "GHz",
    "kelvin",
    "MHz",
    "mV",
    "nm",
    "ohm_per_square",
    "pF",
    "ps",
    "um",
    "volts_from_mv",
    "check_fraction",
    "check_in_range",
    "check_positive",
    "check_probability",
    "make_rng",
    "spawn_rngs",
]
