"""Random-number-generator helpers.

All stochastic components (trace generators, noise injection) accept either a
seed or a ``numpy.random.Generator``.  Centralising the conversion keeps every
experiment reproducible from a single integer seed.

Two derivation helpers underpin the repo-wide bit-identical-reproducibility
invariant:

* :func:`rng_seed_sequence` recovers the :class:`numpy.random.SeedSequence`
  behind *any* seed-like value -- including a ``Generator``, whose own root
  sequence is reused rather than replaced with fresh entropy, and
* :func:`derive_seed_sequence` derives child sequences *statelessly* (no
  spawn-counter mutation), so any child can be (re)created in any order and
  two calls with equal seeds always produce equal streams.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or generator.

    Passing an existing generator returns it unchanged, so components can be
    chained off a single RNG without re-seeding.  A
    :class:`~numpy.random.SeedSequence` seeds a fresh generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def rng_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """The root :class:`~numpy.random.SeedSequence` of a seed-like value.

    A :class:`numpy.random.Generator` contributes the seed sequence it was
    built from, so child streams derived here stay on the caller's stream
    instead of silently re-seeding from fresh entropy; ``None`` draws fresh
    OS entropy (explicitly non-reproducible).
    """
    if isinstance(seed, np.random.Generator):
        root = seed.bit_generator.seed_seq
        if isinstance(root, np.random.SeedSequence):
            return root
        raise TypeError(
            "generator seeds must be built from a numpy SeedSequence "
            "(use numpy.random.default_rng or repro.utils.rng.spawn_rngs)"
        )
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def derive_seed_sequence(
    root: np.random.SeedSequence, key: Sequence[int]
) -> np.random.SeedSequence:
    """A child sequence of ``root`` identified by ``key``, derived statelessly.

    Equivalent to ``root.spawn(...)`` indexing but without mutating the
    root's spawn counter: the child depends only on ``(root, key)``, so equal
    inputs give equal streams no matter how many children were derived in
    between -- the property every chunk-size-invariant trace source relies
    on.
    """
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(root.spawn_key) + tuple(int(k) for k in key)
    )


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Deterministically derive ``count`` independent generators from a seed.

    Used to give each benchmark trace its own stream so that adding or
    reordering benchmarks does not perturb the others.  A passed
    :class:`~numpy.random.Generator` contributes its own root sequence (it is
    *not* replaced with fresh entropy), so two calls with generators built
    from equal seeds return generators producing identical streams.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    root = rng_seed_sequence(seed)
    return [np.random.default_rng(derive_seed_sequence(root, (index,))) for index in range(count)]
