"""Random-number-generator helpers.

All stochastic components (trace generators, noise injection) accept either a
seed or a ``numpy.random.Generator``.  Centralising the conversion keeps every
experiment reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or generator.

    Passing an existing generator returns it unchanged, so components can be
    chained off a single RNG without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Deterministically derive ``count`` independent generators from a seed.

    Used to give each benchmark trace its own stream so that adding or
    reordering benchmarks does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    children = root.spawn(count)
    return [np.random.default_rng(child) for child in children]
