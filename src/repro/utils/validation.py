"""Argument-validation helpers shared across the library.

These raise ``ValueError`` with uniform, descriptive messages so that public
constructors can validate their inputs in one line each.
"""

from __future__ import annotations



def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float | None = None,
    high: float | None = None,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies within ``[low, high]`` (or ``(low, high)``)."""
    if low is not None:
        if inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value!r}")
        if not inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value!r}")
    if high is not None:
        if inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value!r}")
        if not inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` is a fraction in [0, 1] (alias of probability)."""
    return check_probability(name, value)
