"""Unit helpers.

All internal quantities in :mod:`repro` use SI base units (seconds, volts,
farads, ohms, metres, joules).  The helpers in this module convert from the
engineering units the paper quotes (millivolts, picoseconds, micrometres,
femtofarads, gigahertz, ...) into SI so that call sites read like the paper.
"""

from __future__ import annotations

CELSIUS_TO_KELVIN = 273.15


def mV(value: float) -> float:
    """Convert millivolts to volts."""
    return value * 1e-3


def volts_from_mv(value_mv: float) -> float:
    """Alias of :func:`mV`, for call sites that read better with this name."""
    return mV(value_mv)


def ps(value: float) -> float:
    """Convert picoseconds to seconds."""
    return value * 1e-12


def um(value: float) -> float:
    """Convert micrometres to metres."""
    return value * 1e-6


def nm(value: float) -> float:
    """Convert nanometres to metres."""
    return value * 1e-9


def fF(value: float) -> float:
    """Convert femtofarads to farads."""
    return value * 1e-15


def pF(value: float) -> float:
    """Convert picofarads to farads."""
    return value * 1e-12


def GHz(value: float) -> float:
    """Convert gigahertz to hertz."""
    return value * 1e9


def MHz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * 1e6


def kelvin(celsius: float) -> float:
    """Convert a temperature in Celsius to Kelvin."""
    return celsius + CELSIUS_TO_KELVIN


def ohm_per_square(sheet_resistance: float) -> float:
    """Identity helper that documents a sheet-resistance argument (ohm/sq)."""
    return sheet_resistance
