"""Job execution: cache lookup, worker pool, deterministic result assembly.

:func:`run_jobs` is the runtime's engine.  It takes an ordered sequence of
:class:`~repro.runtime.spec.JobSpec`, satisfies as many as possible from the
content-addressed cache, executes the misses (serially or on a
``multiprocessing`` pool) and returns an :class:`ExecutionReport` whose
outcomes are in the *input* order regardless of completion order -- so a
parallel run is observationally identical to a serial one.

Determinism contract
--------------------
* Tasks are pure functions of their parameters (see
  :mod:`repro.runtime.tasks`), so scheduling cannot change any result.
* The pool uses ``imap_unordered`` for throughput, but outcomes are slotted
  back by index; the report never depends on completion order.
* If the pool cannot be created (restricted environments, missing ``fork``),
  execution silently falls back to the serial path -- same results, one
  process.

Telemetry
---------
When a collector is installed (:func:`repro.telemetry.get_telemetry`), the
batch runs under an ``executor.run_jobs`` span and each executed job under a
``job`` span with its task name.  Pool workers cannot write into the parent's
collector, so each worker task records into a fresh one and ships its
snapshot back with the result; the parent merges the snapshots onto its own
timeline (``fork`` children share the monotonic clock), records the task
latency into the ``executor.task_seconds`` histogram, and cache hit/miss
counters keep flowing from :class:`~repro.runtime.cache.ResultCache` itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.cache import ResultCache
from repro.runtime.progress import null_progress
from repro.runtime.spec import JobSpec
from repro.telemetry import get_telemetry

__all__ = ["JobOutcome", "ExecutionReport", "run_jobs"]

ProgressCallback = Callable[[int, int, JobSpec, bool, float], None]


@dataclass(frozen=True)
class JobOutcome:
    """One job's result and how it was obtained."""

    spec: JobSpec
    result: Dict[str, Any]
    cached: bool
    duration_s: float

    @property
    def key(self) -> str:
        """The job's content-addressed cache key."""
        return self.spec.key


@dataclass(frozen=True)
class ExecutionReport:
    """Everything :func:`run_jobs` did, in input order."""

    outcomes: Tuple[JobOutcome, ...]
    n_cached: int
    n_executed: int
    n_workers: int
    wall_time_s: float

    @property
    def results(self) -> List[Dict[str, Any]]:
        """The per-job result dicts, in input order."""
        return [outcome.result for outcome in self.outcomes]

    def summary(self) -> str:
        """One line for logs: job counts, hits, workers, wall time."""
        return (
            f"{len(self.outcomes)} jobs: {self.n_executed} executed, "
            f"{self.n_cached} cache hits, {self.n_workers} worker(s), "
            f"{self.wall_time_s:.2f} s"
        )


def _execute_payload(
    payload: Tuple[int, str, Dict[str, Any], bool],
) -> Tuple[int, Dict[str, Any], float, Optional[Dict[str, Any]]]:
    """Worker entry point: run one task, return (index, result, duration, telemetry).

    Module-level (hence picklable by reference) and dependent only on the
    payload, so it behaves identically in the parent process and in pool
    workers.  With ``capture`` set (pool mode under an active collector) the
    task runs under a fresh telemetry collector whose snapshot is returned
    for the parent to merge; without it (serial mode) the task records
    straight into the parent's collector and the snapshot slot is ``None``.
    """
    from repro.runtime.tasks import run_job_params
    from repro.telemetry import Telemetry, use_telemetry

    index, task_name, params, capture = payload
    started = time.perf_counter()
    if capture:
        telemetry = Telemetry(label=f"worker:{task_name}")
        with use_telemetry(telemetry):
            with telemetry.span("job", task=task_name):
                result = run_job_params(task_name, params)
        return index, result, time.perf_counter() - started, telemetry.snapshot()
    with get_telemetry().span("job", task=task_name):
        result = run_job_params(task_name, params)
    return index, result, time.perf_counter() - started, None


def _worker_count(requested: Optional[int], n_misses: int) -> int:
    """Clamp the requested worker count to something useful.

    An explicit request is honoured even beyond ``os.cpu_count()`` (the
    oversubscription is harmless and single-CPU CI boxes still exercise the
    pool path); there is never any point in more workers than misses.
    """
    if requested is None or requested <= 1 or n_misses <= 1:
        return 1
    return max(1, min(requested, n_misses))


def _make_pool(n_workers: int):
    """A ``fork`` worker pool, or ``None`` when pools are unavailable."""
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        context = multiprocessing.get_context()
    try:
        return context.Pool(processes=n_workers)
    except (OSError, PermissionError):  # pragma: no cover - sandboxed environments
        return None


def run_jobs(
    jobs: Sequence[JobSpec],
    cache: Optional[ResultCache] = None,
    n_workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> ExecutionReport:
    """Run a batch of jobs with caching and optional parallelism.

    Parameters
    ----------
    jobs:
        Ordered job specs; the report's outcomes follow this order.
    cache:
        Result cache to consult and populate; ``None`` disables caching.
    n_workers:
        Worker processes for the cache misses.  ``None`` or ``1`` runs
        serially; larger values use a ``fork`` pool, clamped only to the
        miss count (an explicit request beyond ``os.cpu_count()`` is
        honoured -- see :func:`_worker_count`).  Results are identical
        either way.
    progress:
        Callback ``(done, total, job, cached, duration_s)`` invoked after
        every job (cache hits first, then executions as they finish).
    """
    report = progress if progress is not None else null_progress
    telemetry = get_telemetry()
    started = time.perf_counter()
    total = len(jobs)
    keys = [job.key for job in jobs]

    with telemetry.span("executor.run_jobs", jobs=total):
        outcomes: List[Optional[JobOutcome]] = [None] * total
        misses: List[int] = []
        done = 0
        for index, (job, key) in enumerate(zip(jobs, keys)):
            record = cache.get(key) if cache is not None else None
            if record is not None and "result" in record:
                outcomes[index] = JobOutcome(job, record["result"], cached=True, duration_s=0.0)
                done += 1
                report(done, total, job, True, 0.0)
            else:
                misses.append(index)

        n_workers = _worker_count(n_workers, len(misses))

        def complete(
            index: int,
            result: Dict[str, Any],
            duration: float,
            snapshot: Optional[Dict[str, Any]] = None,
        ) -> None:
            """Record one finished job: outcome slot, cache entry, progress.

            Called the moment each execution completes (in either mode), so an
            interrupted batch keeps every result finished so far and long
            sweeps report progress continuously.  ``snapshot`` is a pool
            worker's telemetry, merged onto the parent's timeline here.
            """
            nonlocal done
            job = jobs[index]
            outcomes[index] = JobOutcome(job, result, cached=False, duration_s=duration)
            if snapshot is not None:
                telemetry.merge_snapshot(snapshot)
            telemetry.count("executor.jobs_executed")
            telemetry.observe("executor.task_seconds", duration)
            if cache is not None:
                cache.put(
                    keys[index],
                    {
                        "task": job.task,
                        "params": dict(job.params),
                        "result": result,
                        "duration_s": duration,
                    },
                )
            done += 1
            report(done, total, job, False, duration)

        pool = _make_pool(n_workers) if n_workers > 1 else None
        # Pool workers record into their own collector and ship the snapshot
        # back (the parent's collector is invisible to them after fork); the
        # serial path records straight into the parent's.
        capture = pool is not None and telemetry.enabled
        payloads = [
            (index, jobs[index].task, dict(jobs[index].params), capture) for index in misses
        ]
        if pool is None:
            n_workers = 1
            for payload in payloads:
                complete(*_execute_payload(payload))
        else:
            with pool:
                for completion in pool.imap_unordered(_execute_payload, payloads, chunksize=1):
                    complete(*completion)
        telemetry.gauge("executor.workers", n_workers)

    finished = [outcome for outcome in outcomes if outcome is not None]
    assert len(finished) == total, "executor lost a job outcome"
    return ExecutionReport(
        outcomes=tuple(finished),
        n_cached=total - len(misses),
        n_executed=len(misses),
        n_workers=n_workers,
        wall_time_s=time.perf_counter() - started,
    )
