"""Job execution: cache lookup, worker pool, deterministic result assembly.

:func:`run_jobs` is the runtime's engine.  It takes an ordered sequence of
:class:`~repro.runtime.spec.JobSpec`, satisfies as many as possible from the
content-addressed cache, executes the misses (serially, or on a transient
:class:`~repro.runtime.workqueue.WorkQueue` of persistent worker processes)
and returns an :class:`ExecutionReport` whose outcomes are in the *input*
order regardless of completion order -- so a parallel run is observationally
identical to a serial one.

Determinism contract
--------------------
* Tasks are pure functions of their parameters (see
  :mod:`repro.runtime.tasks`), so scheduling cannot change any result.
* Queue workers complete jobs in whatever order they finish, but outcomes
  are slotted back by index; the report never depends on completion order.
* If worker processes cannot be forked (restricted environments), execution
  silently falls back to the serial path -- same results, one process.

The batch-shaped entry point is a thin client of the same
:class:`~repro.runtime.workqueue.WorkQueue` that backs the ``repro serve``
job server: it opens a queue sized to the misses, submits them all, drains
the handles in input order, and closes the queue.  Long-running callers (the
server) hold one queue open instead and get dedupe, batching, quotas and
cancellation on top of the identical execution semantics.

Telemetry
---------
When a collector is installed (:func:`repro.telemetry.get_telemetry`), the
batch runs under an ``executor.run_jobs`` span and each executed job under a
``job`` span with its task name.  Queue workers cannot write into the
parent's collector, so each worker task records into a fresh one and ships
its snapshot back with the result; the queue merges the snapshots onto the
parent timeline (``fork`` children share the monotonic clock), the parent
records the task latency into the ``executor.task_seconds`` histogram, and
cache hit/miss counters keep flowing from
:class:`~repro.runtime.cache.ResultCache` itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any
from collections.abc import Callable, Sequence

from repro.runtime.cache import ResultCache
from repro.runtime.progress import null_progress
from repro.runtime.spec import JobSpec
from repro.telemetry import get_telemetry

__all__ = ["JobOutcome", "ExecutionReport", "run_jobs"]

ProgressCallback = Callable[[int, int, JobSpec, bool, float], None]


@dataclass(frozen=True)
class JobOutcome:
    """One job's result and how it was obtained."""

    spec: JobSpec
    result: dict[str, Any]
    cached: bool
    duration_s: float

    @property
    def key(self) -> str:
        """The job's content-addressed cache key."""
        return self.spec.key


@dataclass(frozen=True)
class ExecutionReport:
    """Everything :func:`run_jobs` did, in input order."""

    outcomes: tuple[JobOutcome, ...]
    n_cached: int
    n_executed: int
    n_workers: int
    wall_time_s: float

    @property
    def results(self) -> list[dict[str, Any]]:
        """The per-job result dicts, in input order."""
        return [outcome.result for outcome in self.outcomes]

    def summary(self) -> str:
        """One line for logs: job counts, hits, workers, wall time."""
        return (
            f"{len(self.outcomes)} jobs: {self.n_executed} executed, "
            f"{self.n_cached} cache hits, {self.n_workers} worker(s), "
            f"{self.wall_time_s:.2f} s"
        )


def _execute_serial(
    index: int, task_name: str, params: dict[str, Any]
) -> tuple[int, dict[str, Any], float]:
    """Serial execution of one task, recording straight into the parent collector."""
    from repro.runtime.tasks import run_job_params

    started = time.perf_counter()
    with get_telemetry().span("job", task=task_name):
        result = run_job_params(task_name, params)
    return index, result, time.perf_counter() - started


def _worker_count(requested: int | None, n_misses: int) -> int:
    """Clamp the requested worker count to something useful.

    An explicit request is honoured even beyond ``os.cpu_count()`` (the
    oversubscription is harmless and single-CPU CI boxes still exercise the
    pool path); there is never any point in more workers than misses.
    """
    if requested is None or requested <= 1 or n_misses <= 1:
        return 1
    return max(1, min(requested, n_misses))


def _make_queue(n_workers: int, cache: ResultCache | None, n_misses: int):
    """A process-backed :class:`WorkQueue`, or ``None`` when ``fork`` is unavailable."""
    from repro.runtime.workqueue import WorkQueue

    # max_batch=1: a batch run wants maximal fan-out, not server-style
    # grouping (queue workers keep their characterisation memos warm across
    # jobs regardless, which is all the batching buys for a dense sweep).
    queue = WorkQueue(n_workers=n_workers, cache=cache, max_pending=max(1, n_misses), max_batch=1)
    if not queue.workers_are_processes:  # pragma: no cover - sandboxed environments
        queue.close()
        return None
    return queue


def run_jobs(
    jobs: Sequence[JobSpec],
    cache: ResultCache | None = None,
    n_workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> ExecutionReport:
    """Run a batch of jobs with caching and optional parallelism.

    Parameters
    ----------
    jobs:
        Ordered job specs; the report's outcomes follow this order.
    cache:
        Result cache to consult and populate; ``None`` disables caching.
    n_workers:
        Worker processes for the cache misses.  ``None`` or ``1`` runs
        serially; larger values use a ``fork`` pool, clamped only to the
        miss count (an explicit request beyond ``os.cpu_count()`` is
        honoured -- see :func:`_worker_count`).  Results are identical
        either way.
    progress:
        Callback ``(done, total, job, cached, duration_s)`` invoked after
        every job (cache hits first, then executions as they finish).
    """
    report = progress if progress is not None else null_progress
    telemetry = get_telemetry()
    started = time.perf_counter()
    total = len(jobs)
    keys = [job.key for job in jobs]

    with telemetry.span("executor.run_jobs", jobs=total):
        outcomes: list[JobOutcome | None] = [None] * total
        misses: list[int] = []
        done = 0
        for index, (job, key) in enumerate(zip(jobs, keys)):
            record = cache.get(key) if cache is not None else None
            if record is not None and "result" in record:
                outcomes[index] = JobOutcome(job, record["result"], cached=True, duration_s=0.0)
                done += 1
                report(done, total, job, True, 0.0)
            else:
                misses.append(index)

        n_workers = _worker_count(n_workers, len(misses))

        def complete(
            index: int,
            result: dict[str, Any],
            duration: float,
            store: bool = True,
        ) -> None:
            """Record one finished job: outcome slot, cache entry, progress.

            Called the moment each execution completes (in either mode), so an
            interrupted batch keeps every result finished so far and long
            sweeps report progress continuously.  Queue mode passes
            ``store=False``: the work queue already wrote the cache entry and
            merged the worker's telemetry snapshot at completion time.
            """
            nonlocal done
            job = jobs[index]
            outcomes[index] = JobOutcome(job, result, cached=False, duration_s=duration)
            telemetry.count("executor.jobs_executed")
            telemetry.observe("executor.task_seconds", duration)
            if store and cache is not None:
                cache.put(
                    keys[index],
                    {
                        "task": job.task,
                        "params": dict(job.params),
                        "result": result,
                        "duration_s": duration,
                    },
                )
            done += 1
            report(done, total, job, False, duration)

        queue = _make_queue(n_workers, cache, len(misses)) if n_workers > 1 else None
        if queue is None:
            n_workers = 1
            for index in misses:
                complete(*_execute_serial(index, jobs[index].task, dict(jobs[index].params)))
        else:
            # The cache was already pre-scanned above, so misses are submitted
            # with read_cache=False: every one must actually execute.
            try:
                handles = [(index, queue.submit(jobs[index], read_cache=False)) for index in misses]
                for index, handle in handles:
                    complete(index, handle.result(), handle.duration_s, store=False)
            except BaseException:
                queue.close(drain=False)
                raise
            queue.close(drain=True)
        telemetry.gauge("executor.workers", n_workers)

    finished = [outcome for outcome in outcomes if outcome is not None]
    assert len(finished) == total, "executor lost a job outcome"
    return ExecutionReport(
        outcomes=tuple(finished),
        n_cached=total - len(misses),
        n_executed=len(misses),
        n_workers=n_workers,
        wall_time_s=time.perf_counter() - started,
    )
