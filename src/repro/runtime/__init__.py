"""repro.runtime: parallel experiment-orchestration engine.

The runtime turns the repository's simulation primitives into a
production-style execution system:

* **Specs** (:mod:`~repro.runtime.spec`) -- declarative :class:`JobSpec` /
  :class:`SweepSpec` grids over corners x workloads x encodings x bus
  designs x controller settings.
* **Cache** (:mod:`~repro.runtime.cache`) -- a content-addressed on-disk
  store keyed by a stable hash of task + parameters, so regenerating a
  figure or re-running an overlapping sweep never re-simulates a point.
* **Executor** (:mod:`~repro.runtime.executor`) -- batch execution over a
  transient work queue with a serial fallback; tasks are deterministic
  functions of their parameters, so parallel results are bit-identical to
  serial ones.
* **Work queue** (:mod:`~repro.runtime.workqueue`) -- the persistent
  submit/cancel/status queue behind ``repro serve``: in-flight dedupe by
  cache key, shape-compatible batching, per-client quotas, backpressure,
  kill-based cancellation and worker-death recovery.
* **Tasks** (:mod:`~repro.runtime.tasks`) -- the registry of named,
  picklable simulation units (`dvs_run`, `characterize`, `experiment`).
* **Parallel engine** (:mod:`~repro.runtime.parallel`) -- the
  :class:`ParallelChunkScheduler` behind ``engine="parallel"``: a persistent
  worker pool that fans the chunk statistics pass of a *single* run out
  across processes and reduces the per-segment summaries deterministically
  (bit-identical to the serial engines).
* **Store** (:mod:`~repro.runtime.store`) -- JSONL result records plus a
  run manifest and artifact registry for downstream reporting.
* **Sweeps** (:mod:`~repro.runtime.sweeps`) -- named, ready-to-run grids
  (``python -m repro sweep <name>``), including a 300-point design-space
  map.

Quickstart
----------
>>> from repro.runtime import SweepSpec, run_jobs, shared_cache
>>> spec = SweepSpec(
...     name="demo", task="dvs_run",
...     base={"n_cycles": 2_000},
...     axes={"benchmark": ("crafty", "mgrid"), "corner": ("typical", "worst")},
...     seed=2005,
... )
>>> report = run_jobs(spec.expand(), cache=shared_cache(), n_workers=4)
>>> [round(r["energy_gain_percent"], 1) for r in report.results]  # doctest: +SKIP
[35.2, 11.8, 30.9, 10.4]
"""

from repro.runtime.cache import CacheStats, ResultCache, default_cache_dir, shared_cache
from repro.runtime.executor import ExecutionReport, JobOutcome, run_jobs
from repro.runtime.hashing import canonical_json, derive_seed, stable_hash
from repro.runtime.progress import (
    ChunkProgress,
    ProgressPrinter,
    auto_chunk_progress,
    null_progress,
)
from repro.runtime.parallel import (
    ChunkSegmenter,
    ParallelChunkScheduler,
    ParallelExecutionError,
    tree_merge_summaries,
)
from repro.runtime.spec import JobSpec, SweepSpec
from repro.runtime.store import ResultStore, load_results
from repro.runtime.sweeps import SWEEPS, format_sweep_report, get_sweep
from repro.runtime.workqueue import (
    InlineRunner,
    JobCancelledError,
    JobHandle,
    ProcessRunner,
    QueueClosedError,
    QueueFullError,
    QuotaExceededError,
    WorkerDiedError,
    WorkQueue,
)
from repro.runtime.tasks import (
    CORNERS,
    ENCODER_NAMES,
    available_tasks,
    corner_params,
    get_task,
    resolve_corner,
    run_job_params,
    task,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "shared_cache",
    "ExecutionReport",
    "JobOutcome",
    "run_jobs",
    "canonical_json",
    "derive_seed",
    "stable_hash",
    "ChunkProgress",
    "ProgressPrinter",
    "auto_chunk_progress",
    "null_progress",
    "ChunkSegmenter",
    "ParallelChunkScheduler",
    "ParallelExecutionError",
    "tree_merge_summaries",
    "JobSpec",
    "SweepSpec",
    "InlineRunner",
    "JobCancelledError",
    "JobHandle",
    "ProcessRunner",
    "QueueClosedError",
    "QueueFullError",
    "QuotaExceededError",
    "WorkQueue",
    "WorkerDiedError",
    "ResultStore",
    "load_results",
    "SWEEPS",
    "format_sweep_report",
    "get_sweep",
    "CORNERS",
    "ENCODER_NAMES",
    "available_tasks",
    "corner_params",
    "get_task",
    "resolve_corner",
    "run_job_params",
    "task",
]
