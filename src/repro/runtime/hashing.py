"""Stable content hashing for job specs and cache keys.

The result cache is *content addressed*: a job's identity is the SHA-256 of a
canonical JSON rendering of its task name and parameters.  The rendering must
be byte-identical across processes, interpreter invocations and platforms, so
the canonicaliser is deliberately strict about what it accepts:

* only JSON-representable scalars (``None``, ``bool``, ``int``, ``float``,
  ``str``) plus lists/tuples and string-keyed mappings,
* mapping keys are sorted, so insertion order never leaks into the hash,
* tuples and lists hash identically (axes are often built from either),
* floats rely on Python 3's shortest-repr ``float`` formatting, which is
  deterministic for a given value on every supported platform.

Anything else (numpy arrays, dataclasses, sets, ...) raises ``TypeError``
with the offending path, instead of silently hashing an unstable ``repr``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any
from collections.abc import Mapping

__all__ = ["canonical_json", "stable_hash", "derive_seed"]

#: Bump when the canonical rendering changes incompatibly; part of every hash
#: so stale cache entries from an older scheme can never alias a new key.
HASH_SCHEME_VERSION = 1


def _normalize(value: Any, path: str) -> Any:
    """Recursively convert ``value`` into plain JSON types, or raise."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise TypeError(f"non-finite float at {path} cannot be hashed stably")
        return value
    if isinstance(value, (list, tuple)):
        return [_normalize(item, f"{path}[{i}]") for i, item in enumerate(value)]
    if isinstance(value, Mapping):
        normalized = {}
        for key in value:
            if not isinstance(key, str):
                raise TypeError(f"mapping key {key!r} at {path} must be a string")
            normalized[key] = _normalize(value[key], f"{path}.{key}")
        return normalized
    raise TypeError(
        f"value of type {type(value).__name__} at {path} is not stably hashable; "
        "convert it to JSON scalars / lists / string-keyed dicts first"
    )


def canonical_json(value: Any) -> str:
    """Deterministic JSON rendering of ``value`` (sorted keys, no whitespace)."""
    return json.dumps(
        _normalize(value, "$"), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def stable_hash(value: Any) -> str:
    """Hex SHA-256 of the canonical JSON rendering of ``value``.

    The same logical value always produces the same digest, across processes
    and platforms; any parameter change produces a different digest.
    """
    payload = f"v{HASH_SCHEME_VERSION}:{canonical_json(value)}"
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def derive_seed(base_seed: int, salt: Any) -> int:
    """A deterministic per-job RNG seed derived from a base seed and a salt.

    Used by :class:`~repro.runtime.spec.SweepSpec` to give every grid point
    its own seed: the derivation depends only on the base seed and the point's
    parameters, never on scheduling, so serial and parallel execution (and
    overlapping sweeps that share points) see identical seeds.
    """
    digest = stable_hash({"base_seed": int(base_seed), "salt": salt})
    return int(digest[:8], 16) & 0x7FFFFFFF
