"""Progress reporting for sweep execution.

The executor calls a reporter after every job completes (whether it ran or
hit the cache).  Reporters are plain callables so tests can substitute a
recording stub; :class:`ProgressPrinter` is the human-facing default, writing
one line per completed job to ``stderr`` (never ``stdout``, which carries the
actual results).
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.runtime.spec import JobSpec

__all__ = ["ProgressPrinter", "null_progress"]


def null_progress(
    done: int, total: int, job: JobSpec, cached: bool, duration_s: float
) -> None:
    """A reporter that reports nothing (the library default)."""


class ProgressPrinter:
    """Line-per-job progress on a stream, with a cache-hit tally at the end.

    Parameters
    ----------
    stream:
        Output stream; defaults to ``stderr``.
    quiet:
        When true, suppress per-job lines and only allow :meth:`summary`.
    """

    def __init__(self, stream: Optional[TextIO] = None, quiet: bool = False) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.quiet = quiet
        self.n_cached = 0
        self.n_executed = 0
        self._started = time.perf_counter()

    def __call__(
        self, done: int, total: int, job: JobSpec, cached: bool, duration_s: float
    ) -> None:
        if cached:
            self.n_cached += 1
        else:
            self.n_executed += 1
        if self.quiet:
            return
        status = "hit " if cached else "run "
        width = len(str(total))
        self.stream.write(
            f"[{done:>{width}}/{total}] {status} {job.label}  ({duration_s * 1000:.0f} ms)\n"
        )
        self.stream.flush()

    def summary(self) -> str:
        """One line: totals, hit count and wall time so far."""
        elapsed = time.perf_counter() - self._started
        total = self.n_cached + self.n_executed
        return (
            f"{total} jobs: {self.n_executed} executed, {self.n_cached} cache hits "
            f"in {elapsed:.2f} s"
        )
