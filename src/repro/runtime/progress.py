"""Progress reporting for sweep execution and long streamed runs.

Two reporter shapes live here:

* job-level reporters, called by the sweep executor after every job
  completes (whether it ran or hit the cache) -- :class:`ProgressPrinter`
  is the human-facing default, writing one line per completed job to
  ``stderr`` (never ``stdout``, which carries the actual results);
* :class:`ChunkProgress`, a cycle-level reporter for long streamed
  simulations (paper-scale Table 1 / Fig. 8 runs), showing throughput and an
  ETA as chunks complete.

Reporters are plain callables so tests can substitute a recording stub.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.runtime.spec import JobSpec

__all__ = [
    "PROGRESS_THRESHOLD_CYCLES",
    "ChunkProgress",
    "ProgressPrinter",
    "auto_chunk_progress",
    "null_progress",
]

#: Streamed runs at or above this length get automatic chunk-level progress
#: reporting on a TTY stderr (suppressed in tests and pipelines).
PROGRESS_THRESHOLD_CYCLES = 2_000_000


def null_progress(
    done: int, total: int, job: JobSpec, cached: bool, duration_s: float
) -> None:
    """A reporter that reports nothing (the library default)."""


class ProgressPrinter:
    """Line-per-job progress on a stream, with a cache-hit tally at the end.

    Parameters
    ----------
    stream:
        Output stream; defaults to ``stderr``.
    quiet:
        When true, suppress per-job lines and only allow :meth:`summary`.
    """

    def __init__(self, stream: Optional[TextIO] = None, quiet: bool = False) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.quiet = quiet
        self.n_cached = 0
        self.n_executed = 0
        self._started = time.perf_counter()

    def __call__(
        self, done: int, total: int, job: JobSpec, cached: bool, duration_s: float
    ) -> None:
        if cached:
            self.n_cached += 1
        else:
            self.n_executed += 1
        if self.quiet:
            return
        status = "hit " if cached else "run "
        width = len(str(total))
        self.stream.write(
            f"[{done:>{width}}/{total}] {status} {job.label}  ({duration_s * 1000:.0f} ms)\n"
        )
        self.stream.flush()

    def summary(self) -> str:
        """One line: totals, hit count and wall time so far."""
        elapsed = time.perf_counter() - self._started
        total = self.n_cached + self.n_executed
        return (
            f"{total} jobs: {self.n_executed} executed, {self.n_cached} cache hits "
            f"in {elapsed:.2f} s"
        )


def _format_cycles(cycles: float) -> str:
    """Compact cycle counts: 950k, 2.5M, 10M."""
    if cycles >= 1e6:
        value = cycles / 1e6
        return f"{value:.0f}M" if value >= 10 else f"{value:.1f}M"
    if cycles >= 1e3:
        return f"{cycles / 1e3:.0f}k"
    return f"{cycles:.0f}"


class ChunkProgress:
    """Chunk-level progress for long streamed simulations, with an ETA.

    Matches the :data:`repro.core.dvs_system.ProgressCallback` shape --
    ``callback(done_cycles, total_cycles)`` -- so it plugs straight into
    :meth:`DVSBusSystem.run` and the streaming experiment drivers.  Output
    goes to ``stderr`` and is throttled to at most one update per
    ``min_interval_s`` (plus a final line at completion), so per-chunk
    callbacks stay effectively free.
    """

    def __init__(
        self,
        label: str = "stream",
        stream: Optional[TextIO] = None,
        min_interval_s: float = 0.5,
        quiet: bool = False,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.quiet = quiet
        self._started = time.perf_counter()
        self._last_report = 0.0
        self._last_done = 0

    def __call__(self, done_cycles: int, total_cycles: int) -> None:
        self._last_done = done_cycles
        if self.quiet:
            return
        now = time.perf_counter()
        finished = done_cycles >= total_cycles
        if not finished and now - self._last_report < self.min_interval_s:
            return
        self._last_report = now
        elapsed = max(now - self._started, 1e-9)
        rate = done_cycles / elapsed
        if finished:
            eta = "done"
        elif rate > 0:
            eta = f"ETA {max(total_cycles - done_cycles, 0) / rate:.0f}s"
        else:  # pragma: no cover - zero-rate guard
            eta = "ETA ?"
        percent = 100.0 * done_cycles / total_cycles if total_cycles else 100.0
        self.stream.write(
            f"[{self.label}] {_format_cycles(done_cycles)}/{_format_cycles(total_cycles)} "
            f"cycles ({percent:.0f}%)  {_format_cycles(rate)} cyc/s  {eta}\n"
        )
        self.stream.flush()

    @property
    def cycles_done(self) -> int:
        """Cycles reported so far (for tests and wrap-up summaries)."""
        return self._last_done

    def rate(self) -> float:
        """Average throughput so far, in cycles per second."""
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        return self._last_done / elapsed


def auto_chunk_progress(total_cycles: int, label: str) -> Optional[ChunkProgress]:
    """A :class:`ChunkProgress` for long interactive runs, else ``None``.

    Progress is reported only when the run is at least
    :data:`PROGRESS_THRESHOLD_CYCLES` long *and* stderr is a TTY, so tests
    and pipelines stay silent while paper-scale interactive runs get an ETA.
    """
    if total_cycles < PROGRESS_THRESHOLD_CYCLES:
        return None
    if not getattr(sys.stderr, "isatty", lambda: False)():
        return None
    return ChunkProgress(label=label)
