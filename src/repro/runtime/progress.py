"""Progress reporting for sweep execution and long streamed runs.

Two reporter shapes live here:

* job-level reporters, called by the sweep executor after every job
  completes (whether it ran or hit the cache) -- :class:`ProgressPrinter`
  is the human-facing default, writing one line per completed job to
  ``stderr`` (never ``stdout``, which carries the actual results);
* :class:`ChunkProgress`, a cycle-level reporter for long streamed
  simulations (paper-scale Table 1 / Fig. 8 runs), showing throughput and an
  ETA as chunks complete.

:class:`ChunkProgress` is built on the telemetry layer: every call feeds the
``progress.cycles_reported`` counter, and the completed stream is recorded as
a ``stream:<label>`` span (so it shows up in Chrome traces alongside the
kernels it paced).  Its console behaviour depends on where stderr goes -- a
TTY gets one carriage-return-updated status line, a pipe or CI log gets *no*
intermediate output and a single summary line at completion, so logs are
never sprayed with per-chunk updates.

Reporters are plain callables so tests can substitute a recording stub.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from repro.runtime.spec import JobSpec
from repro.telemetry import get_telemetry

__all__ = [
    "PROGRESS_THRESHOLD_CYCLES",
    "ChunkProgress",
    "ProgressPrinter",
    "auto_chunk_progress",
    "null_progress",
]

#: Streamed runs at or above this length get automatic chunk-level progress
#: reporting on a TTY stderr (suppressed in tests and pipelines).
PROGRESS_THRESHOLD_CYCLES = 2_000_000


def null_progress(
    done: int, total: int, job: JobSpec, cached: bool, duration_s: float
) -> None:
    """A reporter that reports nothing (the library default)."""


class ProgressPrinter:
    """Line-per-job progress on a stream, with a cache-hit tally at the end.

    Parameters
    ----------
    stream:
        Output stream; defaults to ``stderr``.
    quiet:
        When true, suppress per-job lines and only allow :meth:`summary`.
    """

    def __init__(self, stream: TextIO | None = None, quiet: bool = False) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.quiet = quiet
        self.n_cached = 0
        self.n_executed = 0
        self._started = time.perf_counter()

    def __call__(
        self, done: int, total: int, job: JobSpec, cached: bool, duration_s: float
    ) -> None:
        if cached:
            self.n_cached += 1
        else:
            self.n_executed += 1
        if self.quiet:
            return
        status = "hit " if cached else "run "
        width = len(str(total))
        self.stream.write(
            f"[{done:>{width}}/{total}] {status} {job.label}  ({duration_s * 1000:.0f} ms)\n"
        )
        self.stream.flush()

    def summary(self) -> str:
        """One line: totals, hit count and wall time so far."""
        elapsed = time.perf_counter() - self._started
        total = self.n_cached + self.n_executed
        return (
            f"{total} jobs: {self.n_executed} executed, {self.n_cached} cache hits "
            f"in {elapsed:.2f} s"
        )


def _format_cycles(cycles: float) -> str:
    """Compact cycle counts: 950k, 2.5M, 10M."""
    if cycles >= 1e6:
        value = cycles / 1e6
        return f"{value:.0f}M" if value >= 10 else f"{value:.1f}M"
    if cycles >= 1e3:
        return f"{cycles / 1e3:.0f}k"
    return f"{cycles:.0f}"


class ChunkProgress:
    """Chunk-level progress for long streamed simulations, with an ETA.

    Matches the :data:`repro.core.dvs_system.ProgressCallback` shape --
    ``callback(done_cycles, total_cycles)`` -- so it plugs straight into
    :meth:`DVSBusSystem.run` and the streaming experiment drivers.

    Console output goes to ``stderr`` and adapts to it:

    * on a TTY, one status line is rewritten in place (``\\r``, no escape
      codes) at most every ``min_interval_s``, finishing with a newline;
    * on anything else (CI logs, pipes), intermediate updates are suppressed
      entirely and completion prints a single summary line.

    Independent of the console, every call feeds the installed telemetry
    collector: the ``progress.cycles_reported`` counter advances per call and
    the finished stream is recorded as a ``stream:<label>`` span.
    """

    def __init__(
        self,
        label: str = "stream",
        stream: TextIO | None = None,
        min_interval_s: float = 0.5,
        quiet: bool = False,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.quiet = quiet
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._started = time.perf_counter()
        self._last_report = 0.0
        self._last_done = 0
        self._line_width = 0
        self._finished = False

    def _status_line(self, done_cycles: int, total_cycles: int, now: float) -> str:
        elapsed = max(now - self._started, 1e-9)
        rate = done_cycles / elapsed
        finished = done_cycles >= total_cycles
        if finished:
            eta = f"done in {elapsed:.1f}s"
        elif rate > 0:
            eta = f"ETA {max(total_cycles - done_cycles, 0) / rate:.0f}s"
        else:  # pragma: no cover - zero-rate guard
            eta = "ETA ?"
        percent = 100.0 * done_cycles / total_cycles if total_cycles else 100.0
        return (
            f"[{self.label}] {_format_cycles(done_cycles)}/{_format_cycles(total_cycles)} "
            f"cycles ({percent:.0f}%)  {_format_cycles(rate)} cyc/s  {eta}"
        )

    def __call__(self, done_cycles: int, total_cycles: int) -> None:
        delta = done_cycles - self._last_done
        self._last_done = done_cycles
        telemetry = get_telemetry()
        if delta > 0:
            telemetry.count("progress.cycles_reported", delta)
        now = time.perf_counter()
        finished = done_cycles >= total_cycles
        if finished and not self._finished:
            self._finished = True
            telemetry.record_span(
                f"stream:{self.label}", self._started, now, cycles=done_cycles
            )
        if self.quiet:
            return
        if not self._tty:
            # Non-TTY consumers (CI logs, pipes) get exactly one line, at
            # completion -- never a stream of per-chunk updates.
            if finished:
                self.stream.write(self._status_line(done_cycles, total_cycles, now) + "\n")
                self.stream.flush()
            return
        if not finished and now - self._last_report < self.min_interval_s:
            return
        self._last_report = now
        line = self._status_line(done_cycles, total_cycles, now)
        # Rewrite the same console line; pad with spaces so a shorter update
        # fully covers the previous one (plain \r, no escape codes).
        padding = " " * max(self._line_width - len(line), 0)
        self._line_width = len(line)
        self.stream.write("\r" + line + padding + ("\n" if finished else ""))
        self.stream.flush()

    @property
    def cycles_done(self) -> int:
        """Cycles reported so far (for tests and wrap-up summaries)."""
        return self._last_done

    def rate(self) -> float:
        """Average throughput so far, in cycles per second."""
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        return self._last_done / elapsed


def auto_chunk_progress(total_cycles: int, label: str) -> ChunkProgress | None:
    """A :class:`ChunkProgress` for long runs, else ``None``.

    Progress reporting kicks in once a run is at least
    :data:`PROGRESS_THRESHOLD_CYCLES` long; shorter runs (tests, smokes) get
    ``None``.  The returned reporter handles the console itself: interactive
    TTYs get a live status line, non-TTY consumers only the single
    completion summary.
    """
    if total_cycles < PROGRESS_THRESHOLD_CYCLES:
        return None
    return ChunkProgress(label=label)
