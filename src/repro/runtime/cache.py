"""Content-addressed on-disk result cache.

Layout (all under one root directory, ``.repro-cache/`` by default or
``$REPRO_CACHE_DIR`` when set)::

    <root>/objects/<k0k1>/<key>.json     one JSON record per completed job
    <root>/artifacts/<k0k1>/<key>-<name> binary artifacts (pickled fixtures,
                                         trace bundles, ...)

``key`` is the hex SHA-256 of the job's canonical content (see
:mod:`repro.runtime.hashing`), so the cache needs no index: looking up a job
is a single ``stat``.  Records are written atomically (temp file +
``os.replace``) so a crashed or parallel writer can never leave a torn entry,
and concurrent writers of the *same* key are idempotent by construction --
they write byte-identical content.

A corrupt or unreadable record is treated as a miss, never an error: the
cache is an accelerator, and the simulation is always the source of truth.

Every lookup and store reports to the installed telemetry collector
(``cache.hits`` / ``cache.misses`` / ``cache.puts`` / ``cache.bytes_written``
and the artifact equivalents), which is what ``repro cache stats`` reads back
from the last telemetry log; with telemetry disabled the counters are no-ops.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any
from collections.abc import Callable, Iterator

from repro.runtime.hashing import stable_hash
from repro.telemetry import get_telemetry

__all__ = ["ResultCache", "CacheStats", "default_cache_dir", "shared_cache"]

#: Bump when the record schema changes; stored in every record and checked on
#: read so old-schema entries simply miss instead of being misinterpreted.
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache`` in the CWD."""
    override = os.environ.get(CACHE_DIR_ENV)
    return Path(override) if override else Path(".repro-cache")


@dataclass(frozen=True)
class CacheStats:
    """Aggregate statistics of one cache directory."""

    root: Path
    entries: int
    artifacts: int
    total_bytes: int

    def format(self) -> str:
        """Human-readable one-paragraph summary."""
        mib = self.total_bytes / (1024 * 1024)
        return (
            f"cache root : {self.root}\n"
            f"records    : {self.entries}\n"
            f"artifacts  : {self.artifacts}\n"
            f"disk usage : {mib:.2f} MiB"
        )


def _is_record_key(stem: str) -> bool:
    """Whether a filename stem is a real cache key (64 hex chars).

    Filters out ``.tmp-*`` files a killed writer may have left behind, so
    they never surface as phantom records in ``keys()`` or ``stats()``.
    """
    if len(stem) != 64:
        return False
    try:
        int(stem, 16)
        return True
    except ValueError:
        return False


def _unlink_quiet(name: str) -> None:
    try:
        os.unlink(name)
    except OSError:
        pass


def _atomic_write_bytes(path: Path, payload: bytes, attempts: int = 5) -> None:
    """Write ``payload`` to ``path`` atomically (same-directory temp file).

    The bucket directory can vanish between ``mkdir`` and the temp-file
    create or rename when a concurrent ``clear()`` prunes it, so both steps
    retry (re-creating the directory) a bounded number of times: a writer
    racing maintenance still lands its record instead of raising
    ``FileNotFoundError``.
    """
    for attempt in range(attempts):
        last_try = attempt == attempts - 1
        try:
            # mkdir(exist_ok=True) can itself raise FileExistsError when a
            # concurrent rmdir lands between its EEXIST and is_dir re-check.
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=path.suffix)
        except (FileNotFoundError, FileExistsError):
            if last_try:
                raise
            continue
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
            return
        except FileNotFoundError:
            _unlink_quiet(tmp_name)
            if last_try:
                raise
        except BaseException:
            _unlink_quiet(tmp_name)
            raise


class ResultCache:
    """Content-addressed store of job records and binary artifacts.

    Examples
    --------
    Records are plain JSON dicts addressed by a 64-hex-char key (usually a
    :attr:`~repro.runtime.spec.JobSpec.key`); a miss returns ``None``:

    >>> import tempfile
    >>> tmp = tempfile.TemporaryDirectory()
    >>> cache = ResultCache(tmp.name)
    >>> key = "ab" * 32
    >>> cache.get(key) is None
    True
    >>> cache.put(key, {"energy_gain_percent": 38.6})
    >>> cache.get(key)["energy_gain_percent"]
    38.6
    >>> key in cache
    True
    >>> cache.clear()
    1
    >>> tmp.cleanup()
    """

    def __init__(self, root: Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # ------------------------------------------------------------------ #
    # JSON job records
    # ------------------------------------------------------------------ #
    def _record_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored record for ``key``, or ``None`` on miss/corruption."""
        path = self._record_path(key)
        telemetry = get_telemetry()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            telemetry.count("cache.misses")
            return None
        if not isinstance(record, dict) or record.get("schema") != CACHE_SCHEMA_VERSION:
            telemetry.count("cache.misses")
            return None
        telemetry.count("cache.hits")
        return record

    def put(self, key: str, record: dict[str, Any]) -> None:
        """Store ``record`` under ``key`` (atomically; overwrites allowed)."""
        stored = dict(record)
        stored["schema"] = CACHE_SCHEMA_VERSION
        stored["key"] = key
        payload = json.dumps(stored, sort_keys=True, indent=None).encode("utf-8")
        _atomic_write_bytes(self._record_path(key), payload)
        telemetry = get_telemetry()
        telemetry.count("cache.puts")
        telemetry.count("cache.bytes_written", len(payload))

    def delete(self, key: str) -> bool:
        """Remove one record; returns whether it existed."""
        try:
            os.unlink(self._record_path(key))
            return True
        except OSError:
            return False

    def __contains__(self, key: str) -> bool:
        return self._record_path(key).is_file()

    def keys(self) -> Iterator[str]:
        """All record keys currently on disk (unspecified order)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.glob("*/*.json")):
            if _is_record_key(path.stem):
                yield path.stem

    # ------------------------------------------------------------------ #
    # Binary artifacts
    # ------------------------------------------------------------------ #
    def artifact_path(self, key: str, name: str = "artifact") -> Path:
        """Where the named binary artifact for ``key`` lives (may not exist)."""
        safe = "".join(ch if (ch.isalnum() or ch in "-._") else "-" for ch in name)
        return self.root / "artifacts" / key[:2] / f"{key}-{safe}"

    def memoize(self, key_obj: Any, builder: Callable[[], Any], name: str = "pickle") -> Any:
        """Build-once pickle memoisation of an arbitrary Python object.

        ``key_obj`` is any stably-hashable description of what is being
        built (see :func:`~repro.runtime.hashing.stable_hash`); ``builder``
        runs only when no artifact for that key exists yet.  Used by the
        benchmark fixtures to share bus characterisations and trace suites
        across sessions.  A corrupt artifact falls back to rebuilding.
        """
        key = stable_hash(key_obj)
        path = self.artifact_path(key, name)
        telemetry = get_telemetry()
        if path.is_file():
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
                telemetry.count("cache.artifact_hits")
                return value
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
                pass  # fall through and rebuild
        telemetry.count("cache.artifact_builds")
        with telemetry.span("cache.memoize", name=name):
            value = builder()
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write_bytes(path, payload)
        telemetry.count("cache.bytes_written", len(payload))
        return value

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> int:
        """Delete every record and artifact; returns the number removed."""
        removed = 0
        for subdir in ("objects", "artifacts"):
            base = self.root / subdir
            if not base.is_dir():
                continue
            for path in sorted(base.glob("*/*")):
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
            for bucket in sorted(base.glob("*")):
                try:
                    bucket.rmdir()
                except OSError:
                    pass
        return removed

    def stats(self) -> CacheStats:
        """Entry/artifact counts and total disk usage of this cache."""
        entries = artifacts = total = 0
        for subdir, counter in (("objects", "entries"), ("artifacts", "artifacts")):
            base = self.root / subdir
            if not base.is_dir():
                continue
            for path in base.glob("*/*"):
                if path.name.startswith(".tmp-"):
                    continue
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
                if counter == "entries":
                    entries += 1
                else:
                    artifacts += 1
        return CacheStats(root=self.root, entries=entries, artifacts=artifacts, total_bytes=total)


_SHARED: ResultCache | None = None


def shared_cache() -> ResultCache:
    """The process-wide default cache (rooted at :func:`default_cache_dir`).

    The instance is created lazily and re-created if ``$REPRO_CACHE_DIR``
    changes, so tests can redirect it with ``monkeypatch.setenv``.
    """
    global _SHARED
    root = default_cache_dir()
    if _SHARED is None or _SHARED.root != root:
        _SHARED = ResultCache(root)
    return _SHARED
