"""Parallel-chunk statistics pass with deterministic ordered reduction.

This module is the fan-out half of the two-pass parallel engine
(``engine="parallel"``, :mod:`repro.bus.engine`):

1. **Statistics pass (parallel).**  The master walks a
   :class:`~repro.trace.stream.TraceSource` chunk by chunk (boundary-carrying
   chunks, so per-chunk transition computations are chunk-local and exact)
   and ships each chunk's packed words to a persistent worker pool.  Workers
   run the vectorized block kernels
   (:func:`repro.bus.bus_model.analyze_trace_statistics`), split the chunk's
   per-cycle statistics at the *segment boundaries* of a
   :class:`ChunkSegmenter`, and return one exact
   :class:`~repro.bus.bus_model.TraceSummary` per (chunk x segment) piece.

2. **Reduction (deterministic).**  The master collects results in
   *submission order* and folds each segment's pieces with an ordered
   pairwise tree merge (:func:`tree_merge_summaries`).  Every merged
   quantity is an exact integer (or small dyadic) total, so the merge
   grouping -- linear, tree-shaped, 1 worker or 16 -- cannot change a single
   bit; the result equals the serial reduction exactly.

The consumer (e.g. :meth:`repro.core.dvs_system.DVSBusSystem.run`) then
replays its sequential state machine over the per-segment summaries.  For
the DVS loop the segments are exactly the intervals between the
data-independent control boundaries (window starts, regulator ramp
applications, the warm-up edge), which is why the cheap replay reproduces
the serial engine's voltage/error/energy trajectory bit-identically.

Scheduling notes
----------------
* The pool is a ``fork``-context :class:`concurrent.futures.ProcessPoolExecutor`
  -- unlike ``multiprocessing.Pool`` it *raises* (``BrokenProcessPool``)
  instead of hanging when a worker dies, which the scheduler converts into a
  clean :class:`ParallelExecutionError`.
* In-flight chunks are bounded (``max_inflight``, default twice the worker
  count) so the master never races ahead of the pool by more than a few
  chunks of memory.
* Environments that cannot fork (sandboxes, daemonic sweep workers,
  ``n_workers=1``) transparently run the same two-pass pipeline inline in
  the master process -- same results, one process.
* With telemetry enabled, each worker records a ``parallel.chunk`` span into
  a fresh collector and ships the snapshot back; the master merges them onto
  its own timeline (``fork`` children share the monotonic clock) under a
  ``parallel.pass1`` span, and the reduction runs under ``parallel.merge``.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any
from collections.abc import Iterator, Sequence

import numpy as np

from repro.bus.engine import (
    ENGINE_SCALAR,
    ENGINE_VECTORIZED,
    default_chunk_cycles,
    kernel_engine,
    resolve_engine,
)
from repro.interconnect.block_kernels import lanes_supported
from repro.interconnect.crosstalk import NeighborTopology
from repro.telemetry import Telemetry, get_telemetry, use_telemetry
from repro.trace.stream import TraceSource
from repro.trace.trace import BusTrace

__all__ = [
    "ChunkSegmenter",
    "ParallelChunkScheduler",
    "ParallelExecutionError",
    "tree_merge_summaries",
]

#: A per-chunk progress callback: ``callback(done_cycles, total_cycles)``.
ProgressCallback = Any


class ParallelExecutionError(RuntimeError):
    """The parallel statistics pass could not produce a complete result.

    Raised (instead of hanging) when a worker process dies mid-pass, and for
    internal coverage violations; the message always says which part of the
    pass failed.
    """


@dataclass(frozen=True)
class ChunkSegmenter:
    """Data-independent segment boundaries of a run of ``n_cycles`` cycles.

    A *segment* is a maximal interval that a sequential consumer's state is
    constant over: for the DVS loop, the supply voltage can only change at
    window starts (``k * window_cycles``), regulator ramp applications
    (``k * window_cycles + ramp_delay_cycles``) and the accounting switches
    at the warm-up edge -- all fixed by the configuration, never by the
    data.  A per-segment statistics summary therefore suffices to replay the
    loop exactly.  With all optional parameters zero, the whole run is one
    segment (the whole-trace reduction used by the fixed-VS/static drivers).

    Extra boundaries are harmless (splitting a constant-state interval is a
    no-op for the replay); *missing* ones would not be, so the boundary set
    conservatively includes every possible ramp-application cycle.
    """

    n_cycles: int
    window_cycles: int = 0
    ramp_delay_cycles: int = 0
    warmup_cycles: int = 0

    def __post_init__(self) -> None:
        if self.n_cycles <= 0:
            raise ValueError(f"n_cycles must be positive, got {self.n_cycles}")
        for name in ("window_cycles", "ramp_delay_cycles", "warmup_cycles"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")

    def boundaries(self) -> np.ndarray:
        """Sorted boundary cycles, always including 0 and ``n_cycles``."""
        points = {0, self.n_cycles}
        if self.window_cycles > 0:
            starts = np.arange(0, self.n_cycles, self.window_cycles, dtype=np.int64)
            points.update(int(start) for start in starts)
            if self.ramp_delay_cycles > 0:
                applies = starts + self.ramp_delay_cycles
                points.update(int(cycle) for cycle in applies[applies < self.n_cycles])
        if 0 < self.warmup_cycles < self.n_cycles:
            points.add(self.warmup_cycles)
        return np.array(sorted(points), dtype=np.int64)

    @property
    def n_segments(self) -> int:
        """Number of segments (boundary intervals)."""
        return len(self.boundaries()) - 1

    def segment_index(self, cycle: int) -> int:
        """Index of the segment containing ``cycle``."""
        if not 0 <= cycle < self.n_cycles:
            raise ValueError(f"cycle {cycle} outside [0, {self.n_cycles})")
        bounds = self.boundaries()
        return int(np.searchsorted(bounds, cycle, side="right")) - 1

    def pieces(self, start: int, end: int) -> Iterator[tuple[int, int, int]]:
        """Split ``[start, end)`` at segment boundaries.

        Yields ``(segment_index, piece_start, piece_end)`` triples covering
        the interval exactly, in cycle order.
        """
        if not 0 <= start < end <= self.n_cycles:
            raise ValueError(
                f"[{start}, {end}) is not a sub-interval of [0, {self.n_cycles})"
            )
        bounds = self.boundaries()
        index = int(np.searchsorted(bounds, start, side="right")) - 1
        position = start
        while position < end:
            piece_end = min(end, int(bounds[index + 1]))
            yield index, position, piece_end
            position = piece_end
            index += 1


def tree_merge_summaries(summaries: Sequence["Any"]) -> Any:
    """Merge trace summaries with an ordered pairwise tree.

    Because every summary field is an exact total, this is bit-identical to
    a linear left-to-right merge (a property the scheduler tests assert);
    the tree shape exists so the merge depth stays logarithmic for segments
    assembled from many chunk pieces.
    """
    from repro.bus.bus_model import TraceStatisticsAccumulator

    if not summaries:
        raise ValueError("cannot merge zero summaries")
    level = list(summaries)
    while len(level) > 1:
        merged = []
        for i in range(0, len(level) - 1, 2):
            accumulator = TraceStatisticsAccumulator()
            accumulator.merge_summary(level[i])
            accumulator.merge_summary(level[i + 1])
            merged.append(accumulator.summary())
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]


#: One chunk of work shipped to a worker: the segmenter, the (tiny) wiring
#: topology, the engine name, the chunk's global start cycle, its word array
#: (packed bytes or 0/1 values), the representation flag, the bus width, and
#: whether to capture telemetry into a snapshot.
_ChunkPayload = tuple[
    ChunkSegmenter, NeighborTopology, str | None, int, np.ndarray, bool, int, bool
]
#: A worker's result: per-(chunk x segment) summaries plus optional telemetry.
_ChunkResult = tuple[list[tuple[int, Any]], dict[str, Any] | None]


def _probe_worker() -> int:
    """Trivial pool probe; proves workers can start before real work is queued."""
    return os.getpid()


def _chunk_pieces(
    segmenter: ChunkSegmenter,
    topology: NeighborTopology,
    engine: str | None,
    start_cycle: int,
    words: np.ndarray,
    packed: bool,
    n_bits: int,
) -> list[tuple[int, Any]]:
    """Analyze one chunk and reduce it to per-segment summaries."""
    from repro.bus.bus_model import analyze_trace_statistics

    trace = BusTrace(packed=words, n_bits=n_bits) if packed else BusTrace(values=words)
    telemetry = get_telemetry()
    with telemetry.span("parallel.chunk", start_cycle=start_cycle, cycles=trace.n_cycles):
        stats = analyze_trace_statistics(trace, topology, engine=engine)
        end_cycle = start_cycle + stats.n_cycles
        return [
            (index, stats.slice(a - start_cycle, b - start_cycle).summarize())
            for index, a, b in segmenter.pieces(start_cycle, end_cycle)
        ]


def _analyze_chunk_payload(payload: _ChunkPayload) -> _ChunkResult:
    """Worker entry point: module-level (picklable by reference).

    With ``capture`` set (pool mode under an active collector) the analysis
    runs under a fresh telemetry collector whose snapshot is returned for
    the master to merge; without it (inline mode) spans record straight into
    the active collector.
    """
    segmenter, topology, engine, start_cycle, words, packed, n_bits, capture = payload
    if capture:
        telemetry = Telemetry(label="parallel-worker")
        with use_telemetry(telemetry):
            result = _chunk_pieces(segmenter, topology, engine, start_cycle, words, packed, n_bits)
        return result, telemetry.snapshot()
    return _chunk_pieces(segmenter, topology, engine, start_cycle, words, packed, n_bits), None


class ParallelChunkScheduler:
    """Persistent worker pool running the parallel statistics pass.

    Parameters
    ----------
    n_workers:
        Worker processes; ``None`` means one per CPU.  ``1`` (or any
        environment where process pools are unavailable -- sandboxes,
        daemonic sweep workers) runs the identical two-pass pipeline inline.
    max_inflight:
        Bound on submitted-but-uncollected chunks (backpressure); defaults
        to twice the worker count.

    The pool is created lazily on first use and persists across
    :meth:`segment_summaries` calls (e.g. the Table 1 driver reuses one
    scheduler for every benchmark x corner cell), so fork/start-up costs are
    paid once.  Use as a context manager or call :meth:`close` when done.
    """

    def __init__(self, n_workers: int | None = None, max_inflight: int | None = None) -> None:
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.max_inflight = (
            int(max_inflight) if max_inflight is not None else 2 * self.n_workers
        )
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        self._executor: ProcessPoolExecutor | None = None
        self._started = False

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_executor(self) -> ProcessPoolExecutor | None:
        """The live executor, or ``None`` when running inline."""
        if self._started:
            return self._executor
        self._started = True
        if self.n_workers <= 1:
            return None
        if multiprocessing.current_process().daemon:
            # Daemonic processes (the runtime's sweep workers) cannot spawn
            # children; run inline rather than fail the whole job.
            return None
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        try:
            executor = ProcessPoolExecutor(max_workers=self.n_workers, mp_context=context)
            # Eager probe: ProcessPoolExecutor spawns workers lazily, so force
            # one round-trip now to surface sandbox restrictions as a clean
            # inline fallback instead of a mid-pass failure.
            executor.submit(_probe_worker).result(timeout=120)
        except (OSError, PermissionError, BrokenProcessPool):  # pragma: no cover
            return None
        self._executor = executor
        return executor

    @property
    def effective_workers(self) -> int:
        """Workers actually in use (1 when running inline)."""
        return self.n_workers if self._executor is not None else 1

    def close(self) -> None:
        """Shut the pool down; a later call re-creates it."""
        if self._executor is not None:
            # wait=True: every future is collected before close() is reachable,
            # so this only joins idle workers -- and avoids the noisy atexit
            # wakeup on an already-closed pipe that wait=False can produce.
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._started = False

    def __enter__(self) -> ParallelChunkScheduler:
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The statistics pass
    # ------------------------------------------------------------------ #
    def segment_summaries(
        self,
        source: TraceSource,
        segmenter: ChunkSegmenter,
        topology: NeighborTopology,
        engine: str | None = None,
        chunk_cycles: int | None = None,
        progress: ProgressCallback | None = None,
    ) -> list[Any]:
        """Run the parallel statistics pass over ``source``.

        Returns one exact :class:`~repro.bus.bus_model.TraceSummary` per
        segment of ``segmenter``, in segment order -- bit-identical for any
        worker count, chunk size or merge grouping.
        """
        engine = resolve_engine(engine)
        if source.n_cycles != segmenter.n_cycles:
            raise ValueError(
                f"source covers {source.n_cycles} cycles but the segmenter "
                f"was built for {segmenter.n_cycles}"
            )
        packed = kernel_engine(engine) == ENGINE_VECTORIZED and lanes_supported(source.n_bits)
        if chunk_cycles is None:
            chunk_cycles = default_chunk_cycles(engine if packed else ENGINE_SCALAR)
        telemetry = get_telemetry()
        executor = self._ensure_executor()
        capture = executor is not None and telemetry.enabled

        pieces: list[list[Any]] = [[] for _ in range(segmenter.n_segments)]
        total = source.n_cycles
        done = 0
        n_chunks = 0

        def consume(result: _ChunkResult) -> None:
            """Fold one chunk's worker result in (always in submission order)."""
            nonlocal done
            chunk_pieces, snapshot = result
            if snapshot is not None:
                telemetry.merge_snapshot(snapshot)
            for index, summary in chunk_pieces:
                pieces[index].append(summary)
                done += summary.n_cycles
            telemetry.count("parallel.chunks")
            if progress is not None:
                progress(done, total)

        with telemetry.span(
            "parallel.pass1",
            workers=self.effective_workers if executor is not None else 1,
            cycles=total,
        ):
            inflight: deque["Future[_ChunkResult]"] = deque()
            try:
                for chunk in source.chunks(chunk_cycles, packed=packed):
                    trace = chunk.trace
                    words = trace.packed_values if trace.is_packed else trace.values
                    payload: _ChunkPayload = (
                        segmenter,
                        topology,
                        engine,
                        chunk.start_cycle,
                        words,
                        trace.is_packed,
                        trace.n_bits,
                        capture,
                    )
                    n_chunks += 1
                    if executor is None:
                        consume(_analyze_chunk_payload(payload))
                        continue
                    while len(inflight) >= self.max_inflight:
                        consume(inflight.popleft().result())
                    inflight.append(executor.submit(_analyze_chunk_payload, payload))
                while inflight:
                    consume(inflight.popleft().result())
            except BrokenProcessPool as exc:
                self.close()
                raise ParallelExecutionError(
                    "a parallel statistics worker died unexpectedly (the pool "
                    "is broken); re-run serially or with fewer workers"
                ) from exc
            telemetry.gauge("parallel.workers", self.effective_workers)

        with telemetry.span("parallel.merge", segments=segmenter.n_segments, chunks=n_chunks):
            bounds = segmenter.boundaries()
            merged: list[Any] = []
            for index, parts in enumerate(pieces):
                if not parts:
                    raise ParallelExecutionError(
                        f"segment {index} received no statistics; the chunk "
                        "stream did not cover the declared run"
                    )
                summary = tree_merge_summaries(parts)
                expected = int(bounds[index + 1] - bounds[index])
                if summary.n_cycles != expected:
                    raise ParallelExecutionError(
                        f"segment {index} accumulated {summary.n_cycles} cycles, "
                        f"expected {expected}"
                    )
                merged.append(summary)
        return merged
