"""Named sweep specifications and sweep-report rendering.

The registry below is the declarative counterpart of the experiment registry
in :mod:`repro.analysis.experiments`: where an *experiment* regenerates one
figure or table of the paper with bespoke analysis code, a *sweep* is a plain
parameter grid over one runtime task, executed by the engine with caching and
parallelism.  ``python -m repro sweep <name>`` runs them; the example scripts
build on the larger grids.

Grid sizes are chosen so the full registry remains runnable on a laptop; the
``--limit`` CLI flag takes a deterministic prefix of any grid for smoke runs,
and all points are cached, so iterating on a report re-simulates nothing.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.reporting import format_table
from repro.cpu.kernels import KERNELS
from repro.runtime.executor import ExecutionReport
from repro.runtime.spec import SweepSpec
from repro.runtime.tasks import ENCODER_NAMES
from repro.trace.benchmarks import TABLE1_ORDER

__all__ = ["SWEEPS", "get_sweep", "format_sweep_report"]

#: The five Fig. 5 corners, slowest to fastest.
_FIVE_CORNERS: tuple[str, ...] = tuple(f"corner{i}" for i in range(1, 6))

#: The three benchmarks the paper plots individually.
_CORE_BENCHMARKS: tuple[str, ...] = ("crafty", "vortex", "mgrid")

#: Seed salt for dvs_run grids: only the workload-defining parameters, so
#: points differing along corner/window/encoder axes share the same trace
#: and within-sweep comparisons are not confounded by workload noise.
_WORKLOAD_SEED: tuple[str, ...] = ("benchmark", "n_cycles")


SWEEPS: dict[str, SweepSpec] = {
    sweep.name: sweep
    for sweep in (
        SweepSpec(
            name="corner-workload",
            task="dvs_run",
            base={"n_cycles": 12_000},
            axes={
                "corner": _FIVE_CORNERS,
                "benchmark": TABLE1_ORDER,
            },
            seed=2005,
            seed_by=_WORKLOAD_SEED,
            description="Closed-loop DVS gains: 5 PVT corners x all 10 Table 1 benchmarks",
        ),
        SweepSpec(
            name="encoding-matrix",
            task="dvs_run",
            base={"n_cycles": 8_000},
            axes={
                "encoder": ENCODER_NAMES,
                "benchmark": _CORE_BENCHMARKS,
                "corner": ("worst", "typical", "best"),
            },
            seed=2005,
            seed_by=_WORKLOAD_SEED,
            description="Bus encodings combined with DVS: every encoder x 3 benchmarks x 3 corners",
        ),
        SweepSpec(
            name="controller-grid",
            task="dvs_run",
            base={"n_cycles": 24_000, "corner": "typical"},
            axes={
                "window_cycles": (500, 1_000, 2_000, 4_000),
                "ramp_delay_cycles": (150, 300, 600),
                "benchmark": ("crafty", "mgrid"),
            },
            seed=2005,
            seed_by=_WORKLOAD_SEED,
            description="Control-loop tuning: window x ramp delay x benchmark at the typical corner",
        ),
        SweepSpec(
            name="coupling",
            task="dvs_run",
            base={"n_cycles": 8_000, "benchmark": "crafty"},
            axes={
                "coupling_scale": (1.0, 1.25, 1.5, 1.95, 2.5),
                "corner": _FIVE_CORNERS,
            },
            seed=2005,
            seed_by=_WORKLOAD_SEED,
            description="Section 6 modified-bus study generalised: Cc/Cg scale x corner",
        ),
        SweepSpec(
            name="workload-matrix",
            task="dvs_run",
            base={"n_cycles": 6_000},
            axes={
                "workload": tuple(f"cpu:{name}" for name in sorted(KERNELS))
                + ("crafty", "vortex", "mgrid"),
                "corner": ("worst", "typical"),
            },
            seed=2005,
            seed_by=("workload", "n_cycles"),
            description=(
                "Cross-workload DVS gains: all 7 executed CPU kernels + 3 synthetic "
                "benchmarks x 2 corners (registry specs shard over the worker pool)"
            ),
        ),
        SweepSpec(
            name="pvt-mega",
            task="dvs_run",
            base={"n_cycles": 3_000},
            axes={
                "corner": _FIVE_CORNERS,
                "benchmark": TABLE1_ORDER,
                "window_cycles": (300, 600, 1_200),
                "encoder": ("unencoded", "bus-invert"),
            },
            seed=2005,
            seed_by=_WORKLOAD_SEED,
            description=(
                "300-point design-space map: corner x benchmark x window x encoding "
                "(short traces; the cache makes refinement passes free)"
            ),
        ),
    )
}


def get_sweep(name: str) -> SweepSpec:
    """Look up a named sweep; raises ``KeyError`` listing the known names."""
    try:
        return SWEEPS[name]
    except KeyError:
        known = ", ".join(sorted(SWEEPS))
        raise KeyError(f"unknown sweep {name!r}; known sweeps: {known}") from None


#: Result fields rendered by :func:`format_sweep_report`, with column labels
#: and format strings, in display order.  Fields absent from a result are
#: skipped, so the formatter works for any task.
_REPORT_COLUMNS: tuple[tuple[str, str, str], ...] = (
    ("corner", "Corner", "{}"),
    ("benchmark", "Benchmark", "{}"),
    ("encoder", "Encoder", "{}"),
    ("coupling_scale", "Cc/Cg x", "{:.2f}"),
    ("window_cycles", "Window", "{}"),
    ("ramp_delay_cycles", "Ramp", "{}"),
    ("n_cycles", "Cycles", "{}"),
    ("energy_gain_percent", "Gain (%)", "{:.1f}"),
    ("error_rate_percent", "Err (%)", "{:.2f}"),
    ("min_voltage_mv", "Vmin (mV)", "{:.0f}"),
    ("zero_error_voltage_mv", "V0err (mV)", "{:.0f}"),
    ("regulator_floor_mv", "Floor (mV)", "{:.0f}"),
)

#: Columns that are always rendered as table columns (the measurements);
#: everything else is an identity column, collapsed when constant.
_METRIC_FIELDS = ("energy_gain_percent", "error_rate_percent")


def _varying_fields(results: Sequence[dict]) -> list[str]:
    """Identity columns that actually vary across the result set."""
    fields = []
    for field, _, _ in _REPORT_COLUMNS:
        values = {repr(result.get(field)) for result in results}
        if len(values) > 1 or field in _METRIC_FIELDS:
            fields.append(field)
    return fields


def _constant_fields(results: Sequence[dict], shown: set) -> list[tuple[str, str]]:
    """(label, value) pairs for identity columns collapsed out of the table."""
    constants = []
    for field, label, fmt in _REPORT_COLUMNS:
        if field in shown or field in _METRIC_FIELDS:
            continue
        if not all(field in result for result in results):
            continue
        value = results[0].get(field)
        if value is not None:
            constants.append((label, fmt.format(value)))
    return constants


def format_sweep_report(sweep: SweepSpec, report: ExecutionReport) -> str:
    """Plain-text table of a sweep's results (one row per grid point).

    Constant columns are collapsed into the header line so a 300-point grid
    prints only what varies; metric columns are always shown.
    """
    results = report.results
    if not results:
        return f"sweep {sweep.name!r}: no results"
    shown = set(_varying_fields(results))
    columns = [column for column in _REPORT_COLUMNS if column[0] in shown and
               any(column[0] in result for result in results)]
    headers = [label for _, label, _ in columns]
    rows = []
    for result in results:
        row = []
        for field, _, fmt in columns:
            value = result.get(field)
            row.append("-" if value is None else fmt.format(value))
        rows.append(row)
    header = (
        f"Sweep {sweep.name!r}: {sweep.description or sweep.task}\n"
        f"  {report.summary()}\n"
    )
    constants = _constant_fields(results, shown)
    if constants:
        fixed = ", ".join(f"{label}={value}" for label, value in constants)
        header += f"  fixed across all points: {fixed}\n"
    return header + format_table(headers, rows)
