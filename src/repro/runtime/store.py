"""Structured result store: JSONL records plus a run manifest.

A sweep's outputs are append-only facts; the store writes them in a layout
that downstream reporting (``repro.analysis.reporting``, notebooks, plotting)
can consume without re-running anything::

    <run_dir>/manifest.json    sweep identity: name, task, axes, counts
    <run_dir>/results.jsonl    one record per grid point, input order
    <run_dir>/artifacts/...    registered auxiliary files

Each JSONL record carries the job's cache key, so a stored run can always be
cross-referenced against (or re-hydrated from) the content-addressed cache.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.runtime.executor import ExecutionReport
from repro.runtime.spec import SweepSpec

__all__ = ["ResultStore", "load_results"]


class ResultStore:
    """Writes execution reports into a per-run directory."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def run_dir(self, run_name: str) -> Path:
        """Directory one named run writes into (created on demand)."""
        return self.root / run_name

    def write_report(
        self,
        run_name: str,
        report: ExecutionReport,
        sweep: SweepSpec | None = None,
        extra_manifest: dict[str, Any] | None = None,
    ) -> Path:
        """Persist a report as ``manifest.json`` + ``results.jsonl``.

        Returns the run directory.  Overwrites any previous run of the same
        name -- runs are content-addressed upstream by the cache, so the
        store only keeps the latest rendering.
        """
        run_dir = self.run_dir(run_name)
        run_dir.mkdir(parents=True, exist_ok=True)

        manifest: dict[str, Any] = {
            "run": run_name,
            "n_jobs": len(report.outcomes),
            "n_cached": report.n_cached,
            "n_executed": report.n_executed,
            "n_workers": report.n_workers,
            "wall_time_s": report.wall_time_s,
        }
        if sweep is not None:
            manifest["sweep"] = {
                "name": sweep.name,
                "task": sweep.task,
                "base": dict(sweep.base),
                "axes": {axis: list(values) for axis, values in sweep.axes.items()},
                "n_points": sweep.n_points,
                "seed": sweep.seed,
                "description": sweep.description,
            }
        if extra_manifest:
            manifest.update(extra_manifest)
        with open(run_dir / "manifest.json", "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")

        with open(run_dir / "results.jsonl", "w", encoding="utf-8") as handle:
            for outcome in report.outcomes:
                record = {
                    "key": outcome.key,
                    "task": outcome.spec.task,
                    "params": dict(outcome.spec.params),
                    "cached": outcome.cached,
                    "duration_s": outcome.duration_s,
                    "result": outcome.result,
                }
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return run_dir

    def register_artifact(self, run_name: str, name: str, payload: bytes) -> Path:
        """Store an auxiliary binary artifact (chart, npz, ...) for a run."""
        artifact_dir = self.run_dir(run_name) / "artifacts"
        artifact_dir.mkdir(parents=True, exist_ok=True)
        path = artifact_dir / name
        with open(path, "wb") as handle:
            handle.write(payload)
        return path


def load_results(run_dir: Path) -> list[dict[str, Any]]:
    """Read back a run's ``results.jsonl`` records (input order)."""
    records: list[dict[str, Any]] = []
    with open(Path(run_dir) / "results.jsonl", "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
