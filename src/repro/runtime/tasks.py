"""The task registry: named, picklable, cache-friendly units of simulation.

A *task* is a top-level function taking only JSON-able keyword arguments and
returning a JSON-able dict of metrics.  Those two constraints are what make
the whole runtime work:

* JSON-able inputs give every job a stable content hash (the cache key),
* JSON-able outputs let the cache and the JSONL result store persist results
  without pickling arbitrary objects,
* top-level registration by *name* lets ``multiprocessing`` workers resolve
  the callable without shipping code objects between processes.

Tasks must be deterministic functions of their parameters: given the same
parameters (including ``seed``) they must return the same result in any
process.  Every simulation primitive in this repository already satisfies
that, which is why parallel sweeps are bit-identical to serial ones.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any
from collections.abc import Callable, Mapping

from repro.circuit.pvt import (
    BEST_CASE_CORNER,
    STANDARD_CORNERS,
    TYPICAL_CORNER,
    WORST_CASE_CORNER,
    ProcessCorner,
    PVTCorner,
)

__all__ = [
    "task",
    "get_task",
    "available_tasks",
    "run_job_params",
    "CORNERS",
    "corner_params",
    "resolve_corner",
    "ENCODER_NAMES",
]

TaskFunction = Callable[..., dict[str, Any]]

#: All registered tasks, keyed by name.
_TASKS: dict[str, TaskFunction] = {}


def task(name: str) -> Callable[[TaskFunction], TaskFunction]:
    """Register a function as a named runtime task."""

    def register(function: TaskFunction) -> TaskFunction:
        if name in _TASKS:
            raise ValueError(f"task {name!r} is already registered")
        _TASKS[name] = function
        return function

    return register


def get_task(name: str) -> TaskFunction:
    """Look up a registered task; raises ``KeyError`` with the known names."""
    try:
        return _TASKS[name]
    except KeyError:
        known = ", ".join(sorted(_TASKS))
        raise KeyError(f"unknown task {name!r}; known tasks: {known}") from None


def available_tasks() -> tuple[str, ...]:
    """Names of all registered tasks, sorted."""
    return tuple(sorted(_TASKS))


def run_job_params(name: str, params: Mapping[str, Any]) -> dict[str, Any]:
    """Execute one task by name with its parameter mapping."""
    return get_task(name)(**dict(params))


# --------------------------------------------------------------------------- #
# Parameter resolution (corner / encoder / design aliases)
# --------------------------------------------------------------------------- #
#: Corner names accepted by CLI ``--corner`` flags and sweep parameters.
CORNERS: dict[str, PVTCorner] = {
    "worst": WORST_CASE_CORNER,
    "typical": TYPICAL_CORNER,
    "best": BEST_CASE_CORNER,
    **{f"corner{i}": corner for i, corner in STANDARD_CORNERS.items()},
}

CornerLike = str | Mapping[str, Any] | PVTCorner


def resolve_corner(spec: CornerLike) -> PVTCorner:
    """A :class:`PVTCorner` from a name, a parameter dict, or a corner.

    Sweep parameters must stay JSON-able, so jobs carry corners as either a
    registered alias (``"typical"``, ``"corner4"``, ...) or an explicit
    ``{"process", "temperature_c", "ir_drop"}`` mapping.
    """
    if isinstance(spec, PVTCorner):
        return spec
    if isinstance(spec, str):
        try:
            return CORNERS[spec]
        except KeyError:
            known = ", ".join(sorted(CORNERS))
            raise KeyError(f"unknown corner alias {spec!r}; known: {known}") from None
    return PVTCorner(
        process=ProcessCorner(spec["process"]),
        temperature_c=float(spec.get("temperature_c", 100.0)),
        ir_drop=float(spec.get("ir_drop", 0.0)),
    )


def corner_params(spec: CornerLike) -> dict[str, Any]:
    """The JSON-able parameter dict identifying a corner (for cache keys).

    The single place a :class:`PVTCorner`'s identity is spelled out for
    hashing; round-trips through :func:`resolve_corner`.
    """
    corner = resolve_corner(spec)
    return {
        "process": corner.process.value,
        "temperature_c": corner.temperature_c,
        "ir_drop": corner.ir_drop,
    }


def _corner_key(spec: CornerLike) -> tuple[str, float, float]:
    params = corner_params(spec)
    return (params["process"], params["temperature_c"], params["ir_drop"])


def _encoder_names() -> tuple[str, ...]:
    """Encoder aliases from the single registry in :mod:`repro.encoding`.

    The encoder classes are the single source of truth: this is the same set
    :func:`repro.encoding.default_encoders` evaluates, so any encoder added
    there (including parameterised variants like ``bus-invert/8``) is
    immediately addressable from sweep parameters and ``encoded:`` workload
    specs alike.
    """
    from repro.encoding import encoder_names

    return encoder_names()


#: Encoder aliases accepted by the ``encoder`` sweep parameter.
ENCODER_NAMES: tuple[str, ...] = _encoder_names()


def _make_encoder(name: str):
    from repro.encoding import get_encoder

    return get_encoder(name)


@lru_cache(maxsize=32)
def _characterized_bus(
    corner_key: tuple[str, float, float],
    n_bits: int = 32,
    coupling_scale: float | None = None,
):
    """Per-process memo of bus characterisations.

    A sweep revisits the same handful of (corner, width, coupling)
    combinations hundreds of times, so each worker process resolves each
    combination exactly once.  The construction itself goes through the
    bus layer's table resolver: with an active characterization database
    (:mod:`repro.chardb`) the surfaces come out of the memory-mapped
    artifact; otherwise the live models run.  Both paths are bit-identical,
    so the memo never needs to key on the database.
    """
    from repro.bus import BusDesign, CharacterizedBus
    from repro.encoding.analysis import design_for_width

    process, temperature_c, ir_drop = corner_key
    corner = PVTCorner(ProcessCorner(process), temperature_c, ir_drop)
    # Widths other than the paper's 32 bits (encoders with redundant wires)
    # go through the encoding study's redesign flow, so a sweep point and
    # the encoding experiment agree on what an N-wire bus looks like.
    design = design_for_width(BusDesign.paper_bus(), n_bits)
    if coupling_scale is not None and coupling_scale != 1.0:
        design = design.with_modified_coupling(coupling_scale)
    return CharacterizedBus(design, corner)


def _control_defaults(n_cycles: int, window: int | None, ramp: int | None):
    """The experiment registry's scaled-down control-loop defaults."""
    if window is None:
        window = max(500, n_cycles // 20)
    if ramp is None:
        ramp = max(150, n_cycles // 60)
    return window, ramp


def _chardb_context(chardb: str | None):
    """Explicit characterization-database activation for one task body.

    ``None`` leaves the ambient database (the ``REPRO_CHARDB`` environment
    variable, inherited by worker processes) in effect.  A path activates
    that database for the duration of the task — the parameter also rides in
    the job params, where ``JobSpec.key`` content-addresses the file so cached
    results follow the artifact, not the path string.
    """
    if chardb is None:
        from contextlib import nullcontext

        return nullcontext()
    from repro.chardb import use_chardb

    return use_chardb(chardb)


# --------------------------------------------------------------------------- #
# Built-in tasks
# --------------------------------------------------------------------------- #
@task("dvs_run")
def dvs_run(
    benchmark: str = "crafty",
    corner: CornerLike = "typical",
    n_cycles: int = 20_000,
    seed: int = 2005,
    window_cycles: int | None = None,
    ramp_delay_cycles: int | None = None,
    encoder: str | None = None,
    coupling_scale: float | None = None,
    warmup_fraction: float = 0.0,
    chunk_cycles: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
    workload: str | None = None,
    chardb: str | None = None,
) -> dict[str, Any]:
    """One closed-loop DVS run: workload x corner x encoding x bus variant.

    This is the workhorse grid point of every sweep: stream the workload
    trace (optionally through an encoder), characterise the (possibly
    modified) bus at the corner, run the closed control loop and report
    scalar metrics.  The whole point runs in O(chunk) memory, so sweeps can
    scale ``n_cycles`` to the paper's 10 M without touching worker sizing;
    ``chunk_cycles`` only trades memory against batch efficiency and
    ``engine`` selects the kernel implementation (results are bit-identical
    for any value of either).  ``jobs > 1`` (or ``engine="parallel"``)
    fans the statistics pass of this single run out over worker processes,
    still bit-identical thanks to the deterministic two-pass reduction.

    The workload is named either by ``benchmark`` (a synthetic Table 1
    profile, the historical axis) or by ``workload`` -- any spec the
    registry (:mod:`repro.trace.workloads`) resolves, e.g. ``cpu:memcopy``
    or ``simpoint:crafty`` -- which takes precedence and is reported back in
    the ``benchmark`` result field so sweep reports stay uniform.  ``file:``
    specs are content-addressed automatically: ``JobSpec.key`` folds the
    referenced files' digest into the cache key, so a regenerated trace
    file never replays a stale cached result.
    """
    from repro.core.dvs_system import DVSBusSystem
    from repro.trace.generator import benchmark_trace_source
    from repro.trace.stream import EncodedTraceSource

    if workload is not None:
        from repro.trace.workloads import resolve_workload

        source = resolve_workload(workload, n_cycles=n_cycles, seed=seed)
    else:
        source = benchmark_trace_source(benchmark, n_cycles=n_cycles, seed=seed)
    n_wires = source.n_bits
    if encoder is not None and encoder != "unencoded":
        encoder_obj = _make_encoder(encoder)
        source = EncodedTraceSource(source, encoder_obj)
        n_wires = source.n_bits

    with _chardb_context(chardb):
        bus = _characterized_bus(_corner_key(corner), n_wires, coupling_scale)
        # Size the control-loop heuristics from the trace actually streamed:
        # file-backed workload specs keep their recorded length, which can differ
        # from the n_cycles parameter (generative sources make the two equal).
        window, ramp = _control_defaults(source.n_cycles, window_cycles, ramp_delay_cycles)
        system = DVSBusSystem(bus, window_cycles=window, ramp_delay_cycles=ramp)
        warmup = int(warmup_fraction * source.n_cycles)
        result = system.run(
            source, warmup_cycles=warmup, chunk_cycles=chunk_cycles, engine=engine, jobs=jobs
        )

    return {
        "benchmark": workload if workload is not None else benchmark,
        "corner": resolve_corner(corner).label,
        "n_cycles": result.n_cycles,
        "n_wires": n_wires,
        "encoder": encoder or "unencoded",
        "coupling_scale": coupling_scale if coupling_scale is not None else 1.0,
        "window_cycles": window,
        "ramp_delay_cycles": ramp,
        "energy_gain_percent": result.energy_gain_percent,
        "error_rate_percent": result.average_error_rate * 100.0,
        "total_errors": result.total_errors,
        "failures": result.failures,
        "min_voltage_mv": result.minimum_voltage_reached * 1000.0,
        "final_voltage_mv": result.final_voltage * 1000.0,
    }


@task("characterize")
def characterize(
    corner: CornerLike = "typical",
    coupling_scale: float | None = None,
    chardb: str | None = None,
) -> dict[str, Any]:
    """Voltage limits of the paper bus at one corner (no workload)."""
    with _chardb_context(chardb):
        bus = _characterized_bus(_corner_key(corner), 32, coupling_scale)
        clocking = bus.design.clocking
        floor_corner = PVTCorner(resolve_corner(corner).process, 100.0, 0.10)
        return {
            "corner": resolve_corner(corner).label,
            "coupling_scale": coupling_scale if coupling_scale is not None else 1.0,
            "clock_ghz": clocking.frequency / 1e9,
            "main_deadline_ps": clocking.main_deadline * 1e12,
            "shadow_deadline_ps": clocking.shadow_deadline * 1e12,
            "zero_error_voltage_mv": bus.zero_error_voltage() * 1000.0,
            "regulator_floor_mv": bus.minimum_safe_voltage(floor_corner) * 1000.0,
        }


@task("experiment")
def experiment(identifier: str, **kwargs: Any) -> dict[str, Any]:
    """Run one entry of the paper's experiment registry and keep its report.

    The cached payload carries the formatted report text -- exactly what
    ``python -m repro run <id>`` prints -- plus the run parameters and the
    result's stable JSON serialisation (:mod:`repro.analysis.serialize`),
    which is what ``python -m repro report`` renders into Markdown/SVG
    artifacts without re-simulating anything.
    """
    from repro.analysis.experiments import EXPERIMENTS
    from repro.analysis.serialize import experiment_payload

    try:
        entry = EXPERIMENTS[identifier]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {identifier!r}; known: {known}") from None
    # The database rides in the job params (so JobSpec.key content-addresses
    # it) but is activated ambiently rather than forwarded: experiment runners
    # build their buses through the bus layer's resolver, not a parameter.
    chardb = kwargs.pop("chardb", None)
    with _chardb_context(chardb):
        result, text = entry.runner(**kwargs)
    payload = experiment_payload(identifier, result)
    return {
        "identifier": identifier,
        "params": dict(kwargs),
        "text": text,
        "kind": payload["kind"],
        "data": payload["data"],
    }
