"""Declarative job and sweep specifications.

A :class:`JobSpec` names one unit of work: a registered task (see
:mod:`repro.runtime.tasks`) plus a JSON-able parameter mapping.  Its identity
-- the content-addressed cache key -- is a stable hash of exactly those two
things, so two jobs with the same task and parameters are the same job no
matter which sweep, process or session produced them.

A :class:`SweepSpec` is a declarative parameter grid: fixed ``base``
parameters plus named ``axes``, expanded by :meth:`SweepSpec.expand` into the
cross product of all axis values.  Expansion order is deterministic (axes in
declaration order, values in listed order), and per-point seeds are derived
from the point's own parameters so results are reproducible and shareable
across overlapping sweeps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any
from collections.abc import Mapping, Sequence

from repro.runtime.hashing import canonical_json, derive_seed, stable_hash

__all__ = ["JobSpec", "SweepSpec"]


@dataclass(frozen=True)
class JobSpec:
    """One schedulable, cacheable unit of work.

    Attributes
    ----------
    task:
        Name of a task in the :mod:`repro.runtime.tasks` registry.
    params:
        Keyword arguments passed to the task.  Must be JSON-able (the
        constructor canonicalises and validates them eagerly so an unhashable
        parameter fails at spec-construction time, not mid-sweep).
    """

    task: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.task or not isinstance(self.task, str):
            raise ValueError(f"task must be a non-empty string, got {self.task!r}")
        # Freeze a plain-dict copy and validate hashability up front.
        frozen = dict(self.params)
        canonical_json(frozen)
        object.__setattr__(self, "params", frozen)

    @property
    def key(self) -> str:
        """Content-addressed identity of this job (hex SHA-256).

        ``repro.__version__`` is part of the identity: a release that
        changes the simulation physics must miss the persistent cache, not
        silently replay results computed by older code.

        A ``workload`` parameter referencing trace *files* contributes the
        files' content digest (:func:`repro.trace.workloads.
        workload_fingerprint`), not just the path string -- regenerating a
        ``file:`` trace invalidates every cached job that consumed it, no
        matter which entry point (CLI run, sweep grid, direct ``JobSpec``)
        created the job.  Generative workload specs are pure functions of
        spec and seed, so for them the spec string alone is the identity.

        A ``chardb`` parameter is content-addressed the same way: the
        database file's content hash (:func:`repro.chardb.chardb_fingerprint`)
        joins the identity, not just its path, so results computed against a
        stale or rebuilt characterization database are never replayed.
        """
        from repro import __version__

        identity: dict[str, Any] = {
            "task": self.task,
            "params": dict(self.params),
            "code_version": __version__,
        }
        workload = self.params.get("workload")
        if isinstance(workload, str):
            from repro.trace.workloads import workload_fingerprint

            fingerprint = workload_fingerprint(workload)
            if fingerprint is not None:
                identity["workload_fingerprint"] = fingerprint
        chardb = self.params.get("chardb")
        if isinstance(chardb, str):
            from repro.chardb import chardb_fingerprint

            db_fingerprint = chardb_fingerprint(chardb)
            if db_fingerprint is not None:
                identity["chardb_fingerprint"] = db_fingerprint
        return stable_hash(identity)

    @property
    def label(self) -> str:
        """Short human-readable label for progress reports."""
        interesting = {
            name: value
            for name, value in self.params.items()
            if isinstance(value, (str, int)) and name not in ("n_cycles",)
        }
        inner = ", ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
        return f"{self.task}({inner})" if inner else self.task

    def with_params(self, **overrides: Any) -> JobSpec:
        """A copy of this spec with some parameters replaced/added."""
        merged = dict(self.params)
        merged.update(overrides)
        return JobSpec(self.task, merged)

    def to_payload(self) -> dict[str, Any]:
        """Plain-dict rendering used for worker transport and JSONL records."""
        return {"task": self.task, "params": dict(self.params)}

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> JobSpec:
        """Rebuild a spec from :meth:`to_payload` output."""
        return JobSpec(payload["task"], dict(payload.get("params", {})))


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter grid over one task.

    Attributes
    ----------
    name:
        Identifier used by ``python -m repro sweep <name>``.
    task:
        Task every grid point runs.
    base:
        Parameters shared by every point (axis values override them).
    axes:
        Mapping of parameter name to the sequence of values it sweeps.  The
        grid is the cross product of all axes, expanded with the *first* axis
        varying slowest (row-major, like nested for-loops in declaration
        order).
    seed:
        Optional base seed.  When set and no axis/base parameter already
        fixes ``seed``, every point receives a deterministic per-point
        ``seed`` derived via :func:`~repro.runtime.hashing.derive_seed`.
    seed_by:
        Which point parameters the per-point seed is salted with.  Salt
        with exactly the parameters that define the *workload* (for
        ``dvs_run``: benchmark and trace length) so points differing only
        along analysis axes -- corner, window, encoder -- share the same
        trace and stay directly comparable.  ``None`` (the default) salts
        with every parameter, giving every grid point an independent seed.
    description:
        One line shown by ``python -m repro sweep --list``.

    Examples
    --------
    A 2x2 grid expands in declaration order (first axis slowest), and points
    sharing a workload share a derived seed:

    >>> spec = SweepSpec(
    ...     name="demo", task="dvs_run",
    ...     base={"n_cycles": 2_000},
    ...     axes={"benchmark": ("crafty", "mgrid"), "corner": ("typical", "worst")},
    ...     seed=2005, seed_by=("benchmark", "n_cycles"),
    ... )
    >>> spec.n_points
    4
    >>> [(job.params["benchmark"], job.params["corner"]) for job in spec.expand()]
    [('crafty', 'typical'), ('crafty', 'worst'), ('mgrid', 'typical'), ('mgrid', 'worst')]
    >>> jobs = spec.expand()
    >>> jobs[0].params["seed"] == jobs[1].params["seed"]   # same workload either corner
    True
    >>> jobs[0].params["seed"] == jobs[2].params["seed"]   # different benchmark
    False
    """

    name: str
    task: str
    base: Mapping[str, Any] = field(default_factory=dict)
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seed: int | None = None
    seed_by: tuple[str, ...] | None = None
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", dict(self.base))
        axes: dict[str, tuple[Any, ...]] = {}
        for axis, values in self.axes.items():
            if isinstance(values, (str, bytes)):
                raise TypeError(
                    f"axis {axis!r} of sweep {self.name!r} is a bare string; wrap the "
                    f"single value in a tuple: ({values!r},)"
                )
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {axis!r} of sweep {self.name!r} is empty")
            axes[axis] = values
        object.__setattr__(self, "axes", axes)
        if self.seed_by is not None:
            object.__setattr__(self, "seed_by", tuple(self.seed_by))

    @property
    def n_points(self) -> int:
        """Number of grid points the sweep expands to."""
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def expand(self, limit: int | None = None) -> tuple[JobSpec, ...]:
        """The grid as a deterministic tuple of :class:`JobSpec`.

        Parameters
        ----------
        limit:
            Optional cap on the number of points (a deterministic prefix of
            the full grid), for smoke-testing large sweeps.
        """
        axis_names = list(self.axes)
        combos = itertools.product(*(self.axes[name] for name in axis_names))
        if limit is not None:
            combos = itertools.islice(combos, max(0, limit))
        jobs = []
        for combo in combos:
            params = dict(self.base)
            params.update(zip(axis_names, combo))
            if self.seed is not None and "seed" not in params:
                salt = (
                    params
                    if self.seed_by is None
                    else {name: params.get(name) for name in self.seed_by}
                )
                params["seed"] = derive_seed(self.seed, salt)
            jobs.append(JobSpec(self.task, params))
        return tuple(jobs)

    def describe(self) -> str:
        """One-paragraph summary of the grid (axes and sizes)."""
        axes = ", ".join(f"{name}[{len(values)}]" for name, values in self.axes.items())
        return f"{self.name}: {self.n_points} x {self.task} over {axes or 'no axes'}"
