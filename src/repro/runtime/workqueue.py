"""Persistent work queue: the long-running serving core behind ``repro serve``.

:func:`~repro.runtime.executor.run_jobs` (PR 1) is batch-shaped: expand a
grid, fan the misses over a pool, exit.  A *server* needs the opposite
lifecycle -- accept work forever, admit or reject each request the moment it
arrives, and keep its workers warm across requests.  :class:`WorkQueue` is
that refactor: a thread-scheduled, process-executed queue with explicit
submit/cancel/status, used both by the ``repro.server`` protocol layer and by
``run_jobs`` itself (whose parallel path is now "open a transient queue,
submit, drain").

Semantics
---------
* **Dedupe** -- submissions are identified by their content-addressed
  :attr:`~repro.runtime.spec.JobSpec.key`.  A submission whose key matches a
  queued or running job *attaches* to it instead of executing again: every
  attached client streams the same events and receives the same result
  bytes.  A submission whose key is already in the :class:`ResultCache`
  completes instantly without touching the queue.
* **Batching** -- queued jobs with a compatible shape (same task, same
  characterisation axes: ``corner`` and ``coupling_scale``) are dispatched to
  one worker as a single batch, so the worker's per-process characterisation
  memo (:func:`repro.runtime.tasks._characterized_bus`) is built once per
  batch rather than once per job.  Batching never changes results -- jobs
  are still executed, cached and reported individually.
* **Backpressure and quotas** -- at most ``max_pending`` jobs may wait in the
  queue (further submissions raise :class:`QueueFullError`) and each client
  may hold at most ``quota`` active (queued or running) attachments
  (:class:`QuotaExceededError`).  Cache hits are free: they consume neither.
* **Cancellation** -- detaching the last client of a queued job removes it;
  detaching the last client of a *running* job kills the worker process
  executing it (the slot respawns its worker and keeps serving).
* **Fault isolation** -- a worker process dying mid-job (segfault,
  ``os._exit``, OOM kill) fails *that job* with a structured
  ``WorkerDied`` error; the queue respawns the worker and keeps draining.
* **Graceful shutdown** -- :meth:`WorkQueue.close` stops admissions and
  either drains the backlog (``drain=True``) or cancels it, then joins the
  worker threads and terminates the worker processes.

Execution is delegated to a runner per worker slot: :class:`ProcessRunner`
(the default) keeps one persistent forked child per slot -- warm task memos,
kill-based cancellation, crash detection -- while :class:`InlineRunner` runs
jobs in the scheduler thread itself, which is what the deterministic server
test harness injects (a fake runner function sees an abort probe and an
event emitter) and what restricted environments without ``fork`` fall back
to.

Determinism contract: the queue never changes *what* is computed, only when
and where.  Tasks are pure functions of their parameters, results enter the
same content-addressed cache under the same keys, and a result obtained
through any number of concurrent, deduplicated submissions is byte-identical
to a direct :func:`~repro.runtime.tasks.run_job_params` call.

Telemetry: ``server.dedupe`` spans mark key-matched attachments,
``server.batch`` spans wrap each batch dispatch, the ``server.queue_depth``
gauge tracks the pending backlog (returning to zero when the queue is idle),
and counters (``workqueue.submitted`` / ``workqueue.executed`` /
``workqueue.cache_hits`` / ``workqueue.deduped`` / ``workqueue.failed`` /
``workqueue.cancelled`` / ``workqueue.worker_deaths``) mirror
:meth:`WorkQueue.stats`.
"""

from __future__ import annotations

import pickle
import queue as queue_module
import threading
import time
from collections import deque
from typing import Any
from collections.abc import Callable, Iterator

from repro.runtime.cache import ResultCache
from repro.runtime.spec import JobSpec
from repro.telemetry import get_telemetry

__all__ = [
    "JOB_STATES",
    "InlineRunner",
    "JobCancelledError",
    "JobHandle",
    "ProcessRunner",
    "QueueClosedError",
    "QueueFullError",
    "QuotaExceededError",
    "WorkQueue",
    "WorkerDiedError",
    "default_batch_key",
]

# ---------------------------------------------------------------------------
# Job lifecycle
# ---------------------------------------------------------------------------
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every state a job can be in; the first two are "active" (consume quota).
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: Event kinds that end a client's stream.
_TERMINAL_EVENTS = ("result", "error", "cancelled")

#: Parameters that define a batch-compatible shape (see :func:`default_batch_key`).
_BATCH_PARAMS = ("corner", "coupling_scale")

#: Span names a worker process relays to the parent as progress events.
_PROGRESS_SPANS = ("dvs.chunk", "parallel.chunk")


class QueueClosedError(RuntimeError):
    """Submitted to a queue that is shutting down (or already closed)."""


class QueueFullError(RuntimeError):
    """The pending backlog is at ``max_pending``; retry after it drains."""


class QuotaExceededError(RuntimeError):
    """The client already holds its maximum number of active jobs."""


class WorkerDiedError(RuntimeError):
    """The worker process executing a job died before reporting a result."""


class JobCancelledError(RuntimeError):
    """The job was cancelled (every attached client detached) before finishing."""


def default_batch_key(spec: JobSpec) -> tuple[str, str]:
    """The batching identity of a job: task plus its characterisation axes.

    Jobs sharing this key re-use the same per-process
    :class:`~repro.bus.CharacterizedBus` memo, which is the expensive part of
    small sweep points, so they are worth running back-to-back in one worker.
    """
    from repro.runtime.hashing import canonical_json

    shared = {name: spec.params.get(name) for name in _BATCH_PARAMS}
    return (spec.task, canonical_json(shared))


class _Job:
    """Internal mutable state of one unit of work (shared by attached handles)."""

    __slots__ = (
        "id",
        "spec",
        "key",
        "batch_key",
        "state",
        "handles",
        "cancel_requested",
        "slot",
        "result",
        "error",
        "exception",
        "duration_s",
        "cached",
        "submitted_s",
        "finished",
    )

    def __init__(self, job_id: str, spec: JobSpec, key: str, submitted_s: float) -> None:
        self.id = job_id
        self.spec = spec
        self.key = key
        self.batch_key = default_batch_key(spec)
        self.state = QUEUED
        self.handles: list["JobHandle"] = []
        self.cancel_requested = False
        self.slot: "_WorkerSlot" | None = None
        self.result: dict[str, Any] | None = None
        self.error: dict[str, str] | None = None
        self.exception: BaseException | None = None
        self.duration_s = 0.0
        self.cached = False
        self.submitted_s = submitted_s
        self.finished = threading.Event()

    def describe(self) -> dict[str, Any]:
        """JSON-able status row (what ``status``/``jobs`` protocol ops return)."""
        return {
            "job": self.id,
            "task": self.spec.task,
            "label": self.spec.label,
            "key": self.key,
            "state": self.state,
            "clients": len(self.handles),
            "cached": self.cached,
            "error": self.error,
        }


class JobHandle:
    """One client's attachment to a job: its event stream and result future.

    Handles are created by :meth:`WorkQueue.submit` only.  Several handles
    (one per deduplicated client) may share one underlying job; each handle
    has its own event stream, and detaching one handle never disturbs the
    others.  The *last* handle to detach cancels the job itself.
    """

    def __init__(self, queue: WorkQueue, job: _Job, client: str) -> None:
        self._queue = queue
        self._job = job
        self.client = client
        self.deduped = False
        self.detached = False
        self._events: queue_module.Queue[dict[str, Any]] = queue_module.Queue()

    # -- identity ------------------------------------------------------- #
    @property
    def id(self) -> str:
        """The job id this handle is attached to (``job-<n>``)."""
        return self._job.id

    @property
    def key(self) -> str:
        """The job's content-addressed cache key."""
        return self._job.key

    @property
    def state(self) -> str:
        """The job's current lifecycle state."""
        return self._job.state

    @property
    def cached(self) -> bool:
        """Whether submission was satisfied straight from the result cache."""
        return self._job.cached

    @property
    def duration_s(self) -> float:
        """Execution wall time (0 for cache hits and unfinished jobs)."""
        return self._job.duration_s

    # -- consumption ---------------------------------------------------- #
    def events(self, timeout: float | None = None) -> Iterator[dict[str, Any]]:
        """Yield this handle's events until a terminal one (result/error/cancelled).

        ``timeout`` bounds the wait for *each* event; expiry raises
        ``queue.Empty`` (a server bug or an abandoned queue, never a slow
        job -- running jobs emit a ``started`` event immediately).
        """
        while True:
            event = self._events.get(timeout=timeout)
            yield event
            if event.get("event") in _TERMINAL_EVENTS:
                return

    def next_event(self, timeout: float | None = None) -> dict[str, Any] | None:
        """The next queued event, or ``None`` when ``timeout`` expires.

        The non-raising sibling of :meth:`events`, for pollers that must do
        other work (liveness probes, select loops) between events.
        """
        try:
            return self._events.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def result(self, timeout: float | None = None) -> dict[str, Any]:
        """Block until the job finishes and return its result dict.

        Raises the job's original exception for failures (or
        :class:`WorkerDiedError` when the worker process died), and
        :class:`JobCancelledError` when the job -- or this handle's
        attachment -- was cancelled.
        """
        if self.detached:
            raise JobCancelledError(f"{self.id}: detached before completion")
        if not self._job.finished.wait(timeout):
            raise TimeoutError(f"{self.id} still {self._job.state} after {timeout} s")
        job = self._job
        if job.state == DONE:
            assert job.result is not None
            return job.result
        if job.state == CANCELLED:
            raise JobCancelledError(f"{self.id}: cancelled")
        if job.exception is not None:
            raise job.exception
        error = job.error or {"type": "Unknown", "message": "job failed"}
        raise WorkerDiedError(f"{self.id}: {error['type']}: {error['message']}")

    def cancel(self) -> bool:
        """Detach from the job; returns whether the attachment was live.

        Cancelling the last attachment cancels the job: queued jobs leave
        the queue, running jobs have their worker process killed.
        """
        return self._queue._detach(self)

    # -- internal ------------------------------------------------------- #
    def _push(self, event: dict[str, Any]) -> None:
        self._events.put(event)


# ---------------------------------------------------------------------------
# Runners: where a job's code actually executes
# ---------------------------------------------------------------------------
class RunnerContext:
    """What an :class:`InlineRunner` function sees: progress + abort probes."""

    __slots__ = ("emit", "should_abort")

    def __init__(
        self, emit: Callable[[dict[str, Any]], None], should_abort: Callable[[], bool]
    ) -> None:
        self.emit = emit
        self.should_abort = should_abort


class InlineRunner:
    """Execute jobs in the scheduler thread itself (no subprocess).

    The deterministic test harness injects ``fn(task, params, ctx)`` to
    script behaviour (block, fail, fake a worker death via
    :class:`WorkerDiedError`, abort cooperatively via ``ctx.should_abort``).
    Without ``fn`` it runs the real task registry -- the fallback for
    environments where ``fork`` is unavailable.  Inline execution cannot be
    interrupted mid-job and does not capture per-job telemetry snapshots.
    """

    is_process = False

    def __init__(self, fn: Callable[..., dict[str, Any]] | None = None) -> None:
        self._fn = fn

    def start(self) -> None:
        """Nothing to spawn."""

    def run(
        self,
        task: str,
        params: dict[str, Any],
        capture: bool,
        emit: Callable[[dict[str, Any]], None],
        should_abort: Callable[[], bool],
    ) -> tuple[dict[str, Any], dict[str, Any] | None]:
        """Run one job inline; returns ``(result, telemetry_snapshot=None)``."""
        if self._fn is not None:
            return self._fn(task, params, RunnerContext(emit, should_abort)), None
        from repro.runtime.tasks import run_job_params

        return run_job_params(task, params), None

    def interrupt(self) -> None:
        """Inline jobs cannot be interrupted; cancellation is cooperative."""

    def close(self) -> None:
        """Nothing to tear down."""


class _ChunkEventRelay(list):
    """A worker process's event sink: forwards chunk spans as progress.

    Subclasses ``list`` so it can stand in for ``Telemetry.events``; every
    recorded span lands here, chunk-level ones are relayed over the pipe to
    the parent (rate-limited so a 10M-cycle stream does not flood it), and
    the full list is only retained when the parent wants a snapshot back.
    """

    def __init__(self, conn: Any, retain: bool, min_interval_s: float = 0.2) -> None:
        super().__init__()
        self._conn = conn
        self._retain = retain
        self._min_interval_s = min_interval_s
        self._last_sent = 0.0

    def append(self, event: Any) -> None:
        if self._retain:
            list.append(self, event)
        if event.name in _PROGRESS_SPANS:
            now = time.monotonic()
            if now - self._last_sent >= self._min_interval_s:
                self._last_sent = now
                try:
                    self._conn.send(("progress", {"span": event.name, **event.args}))
                except (OSError, ValueError):  # parent gone; keep computing
                    pass


def _process_worker_main(conn: Any) -> None:
    """Loop of a persistent worker process: recv job, run, send result.

    Runs until the parent sends ``("exit",)`` or the pipe closes.  Each job
    executes under a fresh telemetry collector whose chunk spans stream back
    as progress; the full snapshot is returned only when the parent's
    collector is live (``capture``).  Failures ship the pickled exception
    when possible so the parent can re-raise the original type.
    """
    from repro.runtime.tasks import run_job_params
    from repro.telemetry import Telemetry, use_telemetry

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message[0] == "exit":
            return
        _, task, params, capture = message
        telemetry = Telemetry(label=f"worker:{task}")
        telemetry.events = _ChunkEventRelay(conn, retain=capture)
        try:
            with use_telemetry(telemetry):
                with telemetry.span("job", task=task):
                    result = run_job_params(task, params)
        except BaseException as error:
            try:
                payload = pickle.dumps(error)
            except (pickle.PicklingError, TypeError, AttributeError, ValueError):
                # Unpicklable exception (closure attrs, C-state, recursive
                # reduce); the parent rebuilds a RuntimeError from the type
                # name and message instead.
                payload = None
            try:
                conn.send(("error", payload, type(error).__name__, str(error)))
            except OSError:
                return
            continue
        snapshot = telemetry.snapshot() if capture else None
        try:
            conn.send(("ok", result, snapshot))
        except OSError:
            return


class ProcessRunner:
    """One persistent forked worker process with crash detection and kill.

    The child stays alive across jobs (warm ``lru_cache`` memos, exactly
    like a pool worker), is killed outright to cancel a running job, and is
    respawned transparently after any death.  The parent polls the pipe so
    an abort request takes effect within ``poll_interval_s``.
    """

    is_process = True

    def __init__(self, poll_interval_s: float = 0.05) -> None:
        import multiprocessing

        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._context = multiprocessing.get_context()
        self._poll_interval_s = poll_interval_s
        self._process: Any | None = None
        self._conn: Any | None = None

    def start(self) -> None:
        """Fork the worker process (idempotent)."""
        if self._process is not None and self._process.is_alive():
            return
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_process_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        self._process, self._conn = process, parent_conn

    def _discard(self, kill: bool = False) -> int | None:
        """Drop the current child (optionally killing it); returns its exit code."""
        process, conn = self._process, self._conn
        self._process = self._conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is None:
            return None
        if kill and process.is_alive():
            process.kill()
        process.join(timeout=1.0)
        return process.exitcode

    def run(
        self,
        task: str,
        params: dict[str, Any],
        capture: bool,
        emit: Callable[[dict[str, Any]], None],
        should_abort: Callable[[], bool],
    ) -> tuple[dict[str, Any], dict[str, Any] | None]:
        """Dispatch one job to the worker process and pump its messages."""
        self.start()
        conn = self._conn
        assert conn is not None
        try:
            conn.send(("run", task, params, capture))
        except (OSError, ValueError):
            self._discard(kill=True)
            raise WorkerDiedError(f"worker process died before accepting {task!r}") from None
        while True:
            try:
                if not conn.poll(self._poll_interval_s):
                    if should_abort():
                        self._discard(kill=True)
                        raise JobCancelledError(f"{task!r} cancelled while running")
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                exitcode = self._discard(kill=True)
                if should_abort():
                    raise JobCancelledError(f"{task!r} cancelled while running") from None
                raise WorkerDiedError(
                    f"worker process died (exit code {exitcode}) while running {task!r}"
                ) from None
            kind = message[0]
            if kind == "progress":
                emit(message[1])
            elif kind == "ok":
                return message[1], message[2]
            else:  # ("error", pickled, type_name, text)
                raise self._rebuild_error(message)

    @staticmethod
    def _rebuild_error(message: tuple[Any, ...]) -> BaseException:
        """The child's exception, re-raised with its original type if possible."""
        _, payload, type_name, text = message
        if payload is not None:
            try:
                error = pickle.loads(payload)
                if isinstance(error, BaseException):
                    return error
            except (
                pickle.UnpicklingError,
                AttributeError,
                ImportError,
                TypeError,
                ValueError,
                EOFError,
            ):
                # The exception type may not exist (or not reconstruct) in
                # the parent -- fall through to the generic rebuild below.
                pass
        return RuntimeError(f"{type_name}: {text}")

    def interrupt(self) -> None:
        """Kill the worker process (the run loop reports the cancellation)."""
        process = self._process
        if process is not None and process.is_alive():
            process.kill()

    def close(self) -> None:
        """Ask the child to exit, then make sure it is gone."""
        conn = self._conn
        if conn is not None:
            try:
                conn.send(("exit",))
            except (OSError, ValueError):
                pass
        self._discard(kill=True)


class _WorkerSlot:
    """One scheduler thread plus the runner it dispatches jobs to."""

    __slots__ = ("index", "runner", "thread")

    def __init__(self, index: int, runner: Any) -> None:
        self.index = index
        self.runner = runner
        self.thread: threading.Thread | None = None


# ---------------------------------------------------------------------------
# The queue
# ---------------------------------------------------------------------------
class WorkQueue:
    """A persistent, deduplicating, bounded job queue over the result cache.

    Parameters
    ----------
    n_workers:
        Worker slots (scheduler thread + runner each).
    cache:
        :class:`ResultCache` consulted at submission and populated at
        completion (record format identical to the batch executor's, so the
        two share results freely).  ``None`` disables caching -- every
        submission executes (dedupe of *in-flight* duplicates still applies).
    runner_factory:
        Zero-argument callable producing one runner per slot.  Defaults to
        :class:`ProcessRunner`; the test harness injects
        ``lambda: InlineRunner(fake)``.  If process runners cannot fork in
        this environment, the queue silently falls back to inline runners
        (:attr:`workers_are_processes` says which mode is live).
    max_pending:
        Backpressure bound on the queued-but-not-running backlog.
    quota:
        Per-client bound on active attachments; ``None`` means unlimited.
    max_batch:
        Largest batch of shape-compatible jobs dispatched to one worker at
        once (1 disables batching).
    clock:
        Monotonic time source for job timestamps and durations; injectable
        so the server tests are deterministic.
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache: ResultCache | None = None,
        runner_factory: Callable[[], Any] | None = None,
        max_pending: int = 256,
        quota: int | None = None,
        max_batch: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._cache = cache
        self._max_pending = max_pending
        self._quota = quota
        self._max_batch = max(1, max_batch)
        self._clock = clock
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: deque[_Job] = deque()
        self._jobs: dict[str, _Job] = {}
        self._active_by_key: dict[str, _Job] = {}
        self._client_active: dict[str, int] = {}
        self._counters: dict[str, int] = {
            "submitted": 0,
            "executed": 0,
            "cache_hits": 0,
            "deduped": 0,
            "failed": 0,
            "task_failures": 0,
            "cancelled": 0,
            "worker_deaths": 0,
            "batches": 0,
        }
        self._running = 0
        self._seq = 0
        self._closed = False
        self._stopping = False

        self._slots = [
            _WorkerSlot(index, self._make_runner(runner_factory)) for index in range(n_workers)
        ]
        # Fork every worker process *before* the scheduler threads start, so
        # the initial children never fork from a multi-threaded parent.
        self.workers_are_processes = all(
            getattr(slot.runner, "is_process", False) for slot in self._slots
        )
        for slot in self._slots:
            slot.thread = threading.Thread(
                target=self._worker_loop, args=(slot,), name=f"workqueue-{slot.index}", daemon=True
            )
            slot.thread.start()

    @staticmethod
    def _make_runner(runner_factory: Callable[[], Any] | None) -> Any:
        if runner_factory is not None:
            runner = runner_factory()
            runner.start()
            return runner
        runner = ProcessRunner()
        try:
            runner.start()
        except (OSError, PermissionError):  # pragma: no cover - sandboxed environments
            return InlineRunner()
        return runner

    @property
    def n_workers(self) -> int:
        """Number of worker slots."""
        return len(self._slots)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, spec: JobSpec, client: str = "local", read_cache: bool = True) -> JobHandle:
        """Admit one job; returns this client's :class:`JobHandle`.

        Resolution order: result cache (instant completion), in-flight
        dedupe (attach), then a fresh queue entry -- which is where the
        ``quota`` and ``max_pending`` admission checks apply.
        """
        telemetry = get_telemetry()
        key = spec.key
        cached = self._cache.get(key) if (read_cache and self._cache is not None) else None
        # Read the (injected, possibly slow) clock before taking the lock.
        submitted_s = self._clock()
        with self._lock:
            if self._closed:
                raise QueueClosedError("queue is shutting down; submission rejected")
            if cached is not None and "result" in cached:
                self._counters["cache_hits"] += 1
                telemetry.count("workqueue.cache_hits")
                job = self._new_job(spec, key, submitted_s)
                job.state = DONE
                job.cached = True
                job.result = cached["result"]
                job.finished.set()
                handle = JobHandle(self, job, client)
                # _push is queue.Queue.put on the handle's own unbounded
                # event queue: non-blocking, no subscriber code runs here.
                handle._push(self._result_event(job))  # repro: noqa[LCK003]
                return handle
            active = self._active_by_key.get(key)
            if active is not None:
                self._check_quota(client)
                handle = JobHandle(self, active, client)
                handle.deduped = True
                active.handles.append(handle)
                self._client_active[client] = self._client_active.get(client, 0) + 1
                self._counters["deduped"] += 1
                telemetry.count("workqueue.deduped")
                now = telemetry.now()
                telemetry.record_span(
                    "server.dedupe", now, now, job=active.id, clients=len(active.handles)
                )
                if active.state == RUNNING:
                    # Non-blocking put on the handle's own queue (see above).
                    handle._push({"event": "started", "job": active.id})  # repro: noqa[LCK003]
                return handle
            self._check_quota(client)
            if len(self._pending) >= self._max_pending:
                raise QueueFullError(
                    f"queue is full ({self._max_pending} pending); retry after it drains"
                )
            job = self._new_job(spec, key, submitted_s)
            handle = JobHandle(self, job, client)
            job.handles.append(handle)
            self._client_active[client] = self._client_active.get(client, 0) + 1
            self._active_by_key[key] = job
            self._pending.append(job)
            self._counters["submitted"] += 1
            telemetry.count("workqueue.submitted")
            telemetry.gauge("server.queue_depth", len(self._pending))
            self._wakeup.notify_all()
            return handle

    def _new_job(self, spec: JobSpec, key: str, submitted_s: float) -> _Job:
        self._seq += 1
        job = _Job(f"job-{self._seq}", spec, key, submitted_s=submitted_s)
        self._jobs[job.id] = job
        return job

    def _check_quota(self, client: str) -> None:
        if self._quota is not None and self._client_active.get(client, 0) >= self._quota:
            raise QuotaExceededError(
                f"client {client!r} already has {self._quota} active job(s); "
                "cancel one or wait for completions"
            )

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def status(self, job_id: str) -> dict[str, Any] | None:
        """One job's status row, or ``None`` for unknown ids."""
        with self._lock:
            job = self._jobs.get(job_id)
            return job.describe() if job is not None else None

    def jobs(self) -> list[dict[str, Any]]:
        """Status rows for every job this queue has seen, in submission order."""
        with self._lock:
            return [job.describe() for job in self._jobs.values()]

    def stats(self) -> dict[str, Any]:
        """Aggregate queue statistics (depth, running, lifecycle counters)."""
        with self._lock:
            return {
                "depth": len(self._pending),
                "running": self._running,
                "workers": len(self._slots),
                **dict(self._counters),
            }

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until nothing is pending or running; ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._pending or self._running:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._wakeup.wait(remaining)
            return True

    # ------------------------------------------------------------------ #
    # Cancellation
    # ------------------------------------------------------------------ #
    def cancel(self, job_id: str, client: str | None = None) -> bool:
        """Detach a job's handles (all of them, or one client's only)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return False
            targets = [
                handle for handle in job.handles if client is None or handle.client == client
            ]
        detached = False
        for handle in targets:
            detached = self._detach(handle) or detached
        return detached

    def _detach(self, handle: JobHandle) -> bool:
        interrupt_slot: _WorkerSlot | None = None
        with self._lock:
            job = handle._job
            if handle.detached or handle not in job.handles:
                return False
            handle.detached = True
            job.handles.remove(handle)
            count = self._client_active.get(handle.client, 0) - 1
            if count > 0:
                self._client_active[handle.client] = count
            else:
                self._client_active.pop(handle.client, None)
            # Non-blocking put on the handle's own event queue.
            event = {"event": "cancelled", "job": job.id, "detached": True}
            handle._push(event)  # repro: noqa[LCK003]
            if not job.handles and job.state in (QUEUED, RUNNING):
                job.cancel_requested = True
                if job.state == QUEUED and job in self._pending:
                    self._pending.remove(job)
                    self._finalize_locked(job, CANCELLED)
                    get_telemetry().gauge("server.queue_depth", len(self._pending))
                elif job.state == RUNNING:
                    interrupt_slot = job.slot
        if interrupt_slot is not None:
            interrupt_slot.runner.interrupt()
        return True

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def _next_batch(self) -> list[_Job] | None:
        """Pop the next batch of shape-compatible jobs; ``None`` to exit."""
        with self._lock:
            while True:
                if self._pending:
                    first = self._pending.popleft()
                    batch = [first]
                    if self._max_batch > 1:
                        mates = [
                            job for job in self._pending if job.batch_key == first.batch_key
                        ][: self._max_batch - 1]
                        for job in mates:
                            self._pending.remove(job)
                        batch.extend(mates)
                    get_telemetry().gauge("server.queue_depth", len(self._pending))
                    self._running += len(batch)
                    return batch
                if self._stopping:
                    return None
                self._wakeup.wait()

    def _worker_loop(self, slot: _WorkerSlot) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            telemetry = get_telemetry()
            started = telemetry.now()
            for job in batch:
                self._run_one(slot, job)
            telemetry.record_span(
                "server.batch",
                started,
                telemetry.now(),
                size=len(batch),
                task=batch[0].spec.task,
                worker=slot.index,
            )
            with self._lock:
                self._counters["batches"] += 1

    def _run_one(self, slot: _WorkerSlot, job: _Job) -> None:
        telemetry = get_telemetry()
        with self._lock:
            if job.cancel_requested and not job.handles:
                # Popped from the queue as part of a batch, then cancelled
                # before it started: it was already counted as running.
                self._running -= 1
                self._finalize_locked(job, CANCELLED)
                return
            job.state = RUNNING
            job.slot = slot
            self._fanout_locked(job, {"event": "started", "job": job.id})
        capture = telemetry.enabled

        def emit(payload: dict[str, Any]) -> None:
            with self._lock:
                self._fanout_locked(job, {"event": "progress", "job": job.id, **payload})

        started = self._clock()
        try:
            result, snapshot = slot.runner.run(
                job.spec.task, dict(job.spec.params), capture, emit, lambda: job.cancel_requested
            )
        except JobCancelledError:
            with self._lock:
                self._finalize_locked(job, CANCELLED)
            return
        except WorkerDiedError as error:
            with self._lock:
                self._counters["worker_deaths"] += 1
                telemetry.count("workqueue.worker_deaths")
                job.error = {"type": "WorkerDied", "message": str(error)}
                job.exception = error
                self._finalize_locked(job, FAILED)
            return
        except Exception as error:
            # Deliberately broad: this is the task-failure boundary.  User
            # task code can raise anything; the exception is annotated into
            # telemetry here and re-raised verbatim by JobHandle.result() on
            # whichever thread is waiting for the job.
            with self._lock:
                self._counters["task_failures"] += 1
                telemetry.count("workqueue.task_failures")
                job.error = {"type": type(error).__name__, "message": str(error)}
                job.exception = error
                self._finalize_locked(job, FAILED)
            return
        job.duration_s = self._clock() - started
        job.result = result
        if self._cache is not None:
            # Same record format as the batch executor, so server results and
            # local run_experiment results are interchangeable cache entries.
            self._cache.put(
                job.key,
                {
                    "task": job.spec.task,
                    "params": dict(job.spec.params),
                    "result": result,
                    "duration_s": job.duration_s,
                },
            )
        with self._lock:
            if snapshot is not None:
                telemetry.merge_snapshot(snapshot)
            self._counters["executed"] += 1
            telemetry.count("workqueue.executed")
            self._finalize_locked(job, DONE)

    def _finalize_locked(self, job: _Job, state: str) -> None:
        """Terminal transition (lock held): events, quota release, accounting."""
        was_running = job.state == RUNNING
        job.state = state
        job.slot = None
        if was_running:
            self._running -= 1
        if state == FAILED:
            self._counters["failed"] += 1
            get_telemetry().count("workqueue.failed")
        elif state == CANCELLED:
            self._counters["cancelled"] += 1
            get_telemetry().count("workqueue.cancelled")
        self._active_by_key.pop(job.key, None)
        if state == DONE:
            self._fanout_locked(job, self._result_event(job))
        elif state == FAILED:
            self._fanout_locked(job, {"event": "error", "job": job.id, "error": job.error})
        else:
            self._fanout_locked(job, {"event": "cancelled", "job": job.id})
        for handle in job.handles:
            count = self._client_active.get(handle.client, 0) - 1
            if count > 0:
                self._client_active[handle.client] = count
            else:
                self._client_active.pop(handle.client, None)
        job.handles = []
        job.finished.set()
        self._wakeup.notify_all()

    @staticmethod
    def _result_event(job: _Job) -> dict[str, Any]:
        return {
            "event": "result",
            "job": job.id,
            "key": job.key,
            "cached": job.cached,
            "duration_s": job.duration_s,
            "result": job.result,
        }

    def _fanout_locked(self, job: _Job, event: dict[str, Any]) -> None:
        for handle in job.handles:
            # Non-blocking put on each handle's own unbounded event queue;
            # subscriber code drains it outside the lock.
            handle._push(dict(event))  # repro: noqa[LCK003]

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop admissions, finish (or cancel) the backlog, tear workers down.

        ``drain=True`` lets queued and running jobs complete; ``drain=False``
        cancels everything queued and kills everything running.  Idempotent.
        """
        interrupt_slots: list[_WorkerSlot] = []
        with self._lock:
            self._closed = True
            if not drain:
                while self._pending:
                    job = self._pending.popleft()
                    job.cancel_requested = True
                    self._finalize_locked(job, CANCELLED)
                get_telemetry().gauge("server.queue_depth", 0)
                for job in list(self._active_by_key.values()):
                    if job.state == RUNNING:
                        job.cancel_requested = True
                        if job.slot is not None:
                            interrupt_slots.append(job.slot)
            self._stopping = True
            self._wakeup.notify_all()
        for slot in interrupt_slots:
            slot.runner.interrupt()
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(timeout)
        for slot in self._slots:
            slot.runner.close()

    def __enter__(self) -> WorkQueue:
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close(drain=exc_type is None)
