"""repro: reproduction of "DVS for On-Chip Bus Designs Based on Timing Error
Correction" (Kaul, Sylvester, Blaauw, Mudge, Austin -- DATE 2005).

The package implements, in pure Python:

* the double-sampling (Razor-style) error-detecting flip-flop bank and the
  closed-loop DVS control system the paper proposes (:mod:`repro.core`),
* the 6 mm / 32-bit / 1.5 GHz repeated and shielded bus test vehicle with its
  device, interconnect and energy models (:mod:`repro.circuit`,
  :mod:`repro.interconnect`, :mod:`repro.bus`),
* a synthetic SPEC2000-like workload substrate (:mod:`repro.trace`) and a
  mini functional CPU that records read-bus traces from executed kernels
  (:mod:`repro.cpu`),
* experiment drivers that regenerate every figure and table of the paper's
  evaluation, plus parameter-sensitivity sweeps (:mod:`repro.analysis`),
* the related-work baselines (:mod:`repro.baselines`), low-power bus
  encodings (:mod:`repro.encoding`) and pipeline/IPC models
  (:mod:`repro.arch`) the paper discusses around its contribution, and
* terminal plotting (:mod:`repro.plotting`) and a command-line interface
  (``python -m repro``, :mod:`repro.cli`).

Quickstart
----------
Characterise the paper's bus at the typical corner and run the closed-loop
DVS system on a short synthetic workload (scale ``n_cycles`` up to the
paper's 10 M for the published numbers -- the run streams in O(chunk)
memory):

>>> from repro import BusDesign, CharacterizedBus, DVSBusSystem, TYPICAL_CORNER
>>> from repro.trace import generate_benchmark_trace
>>> bus = CharacterizedBus(BusDesign.paper_bus(), TYPICAL_CORNER)
>>> round(bus.zero_error_voltage(), 2)          # error-free supply (V)
0.98
>>> trace = generate_benchmark_trace("crafty", n_cycles=20_000, seed=1)
>>> system = DVSBusSystem(bus, window_cycles=1_000, ramp_delay_cycles=300)
>>> result = system.run(trace)
>>> result.failures                             # shadow latch never violated
0
>>> result.energy_gain_percent > 20.0           # paper band at this corner: 35-45 %
True

Regenerate the paper's artifacts and check them against the published
values with ``python -m repro report --experiments table1,fig8`` (see
:mod:`repro.report`).
"""

from repro.bus import (
    BusDesign,
    CharacterizedBus,
    TraceStatistics,
    TraceStatisticsAccumulator,
    TraceSummary,
    characterize_bus,
)
from repro.circuit import (
    BEST_CASE_CORNER,
    STANDARD_CORNERS,
    TYPICAL_CORNER,
    WORST_CASE_CORNER,
    ProcessCorner,
    PVTCorner,
    VoltageGrid,
)
from repro.clocking import PAPER_CLOCKING, ClockingParameters
from repro.core import (
    BangBangPolicy,
    DoubleSamplingFlipFlop,
    DVSBusSystem,
    DVSRunResult,
    ErrorCounter,
    FlipFlopBank,
    ProportionalPolicy,
    VoltageRegulator,
    WindowedVoltageController,
    evaluate_fixed_scaling,
    fixed_scaling_voltage,
    oracle_voltage_schedule,
)
from repro.energy import EnergyBreakdown, breakdown_gain_percent, energy_gain_percent
from repro.interconnect import TECH_130NM, TechnologyNode
from repro.trace import (
    SPEC2000_PROFILES,
    TABLE1_ORDER,
    BusTrace,
    generate_benchmark_trace,
    generate_concatenated_suite,
    generate_suite,
)

__version__ = "1.3.0"

__all__ = [
    "BusDesign",
    "CharacterizedBus",
    "TraceStatistics",
    "TraceStatisticsAccumulator",
    "TraceSummary",
    "characterize_bus",
    "BEST_CASE_CORNER",
    "STANDARD_CORNERS",
    "TYPICAL_CORNER",
    "WORST_CASE_CORNER",
    "ProcessCorner",
    "PVTCorner",
    "VoltageGrid",
    "PAPER_CLOCKING",
    "ClockingParameters",
    "BangBangPolicy",
    "DoubleSamplingFlipFlop",
    "DVSBusSystem",
    "DVSRunResult",
    "ErrorCounter",
    "FlipFlopBank",
    "ProportionalPolicy",
    "VoltageRegulator",
    "WindowedVoltageController",
    "evaluate_fixed_scaling",
    "fixed_scaling_voltage",
    "oracle_voltage_schedule",
    "EnergyBreakdown",
    "breakdown_gain_percent",
    "energy_gain_percent",
    "TECH_130NM",
    "TechnologyNode",
    "SPEC2000_PROFILES",
    "TABLE1_ORDER",
    "BusTrace",
    "generate_benchmark_trace",
    "generate_concatenated_suite",
    "generate_suite",
    "__version__",
]
