"""Energy accounting for the DVS bus.

The total energy of a simulated interval is split into the four components
the paper discusses (bus dynamic switching, repeater leakage, flip-flop
clocking, and error-recovery overhead) so that reports can show both the raw
bus energy and the "bus energy + recovery overhead" curve of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of a simulated interval, by component (joules).

    Attributes
    ----------
    bus_dynamic:
        Switching energy of the bus wires (self and coupling capacitance).
    leakage:
        Repeater sub-threshold leakage integrated over the interval.
    flipflop_clocking:
        Energy to clock the receiving double-sampling flip-flop bank every
        cycle (independent of the scaled bus supply).
    recovery_overhead:
        Extra energy spent on corrected timing errors: re-clocking the bank
        for the recovery cycle plus the configured pipeline flush overhead.
    """

    bus_dynamic: float = 0.0
    leakage: float = 0.0
    flipflop_clocking: float = 0.0
    recovery_overhead: float = 0.0

    def __post_init__(self) -> None:
        for field_info in fields(self):
            value = getattr(self, field_info.name)
            if value < 0.0:
                raise ValueError(f"{field_info.name} must be >= 0, got {value}")

    @property
    def bus_energy(self) -> float:
        """Energy attributable to the bus itself (dynamic + leakage)."""
        return self.bus_dynamic + self.leakage

    @property
    def total(self) -> float:
        """Total energy including clocking and recovery overhead."""
        return self.bus_dynamic + self.leakage + self.flipflop_clocking + self.recovery_overhead

    @property
    def total_with_recovery(self) -> float:
        """Bus energy plus recovery overhead (the paper's Fig. 4 second curve)."""
        return self.bus_energy + self.recovery_overhead

    def __add__(self, other: EnergyBreakdown) -> EnergyBreakdown:
        if not isinstance(other, EnergyBreakdown):
            return NotImplemented
        return EnergyBreakdown(
            bus_dynamic=self.bus_dynamic + other.bus_dynamic,
            leakage=self.leakage + other.leakage,
            flipflop_clocking=self.flipflop_clocking + other.flipflop_clocking,
            recovery_overhead=self.recovery_overhead + other.recovery_overhead,
        )

    def scaled(self, factor: float) -> EnergyBreakdown:
        """Scale every component by a non-negative factor."""
        if factor < 0.0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return EnergyBreakdown(
            bus_dynamic=self.bus_dynamic * factor,
            leakage=self.leakage * factor,
            flipflop_clocking=self.flipflop_clocking * factor,
            recovery_overhead=self.recovery_overhead * factor,
        )

    def normalized_to(self, reference: EnergyBreakdown) -> EnergyBreakdown:
        """Express this breakdown as a fraction of a reference total.

        Used to produce the paper's "Energy (Normalized)" axes, where 1.0 is
        the energy of the same workload at the nominal supply.
        """
        reference_total = reference.total_with_recovery
        if reference_total <= 0.0:
            raise ValueError("reference energy must be positive")
        return self.scaled(1.0 / reference_total)


ZERO_ENERGY = EnergyBreakdown()
