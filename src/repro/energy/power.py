"""Power and energy-delay metrics derived from DVS runs.

The paper reports energy gains at a fixed clock frequency, which is the right
headline metric for its problem statement (same performance, less energy).
Two derived views are commonly asked of such results and are provided here:

* average *power* over the run (energy per unit wall-clock time, where the
  wall clock includes the recovery cycles the errors add), and
* the *energy-delay product* (EDP), which charges the scheme for the small
  execution-time increase its error recoveries cause; a scheme that saved
  energy only by running slower would show up immediately in EDP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.clocking import ClockingParameters
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # imported for annotations only; avoids an energy <-> core cycle
    from repro.core.dvs_system import DVSRunResult

Number = int | float


def average_power(energy_joules: Number, duration_seconds: Number) -> float:
    """Average power of an interval: energy divided by wall-clock time."""
    check_positive("duration_seconds", duration_seconds)
    if energy_joules < 0:
        raise ValueError(f"energy_joules must be >= 0, got {energy_joules}")
    return energy_joules / duration_seconds


def energy_delay_product(energy_joules: Number, duration_seconds: Number) -> float:
    """Energy-delay product of an interval (joule-seconds)."""
    check_positive("duration_seconds", duration_seconds)
    if energy_joules < 0:
        raise ValueError(f"energy_joules must be >= 0, got {energy_joules}")
    return energy_joules * duration_seconds


@dataclass(frozen=True)
class PowerMetrics:
    """Power/EDP view of one closed-loop DVS run versus the nominal reference.

    Attributes
    ----------
    run_duration / reference_duration:
        Wall-clock time of the workload with and without the recovery cycles
        (seconds).  The reference runs at the nominal supply and therefore
        has no recovery cycles.
    average_power / reference_power:
        Bus-plus-recovery energy divided by the respective duration (watts).
    edp / reference_edp:
        Energy-delay products (joule-seconds).
    """

    run_duration: float
    reference_duration: float
    average_power: float
    reference_power: float
    edp: float
    reference_edp: float

    @property
    def power_saving_percent(self) -> float:
        """Average-power reduction versus the nominal reference, in percent."""
        return 100.0 * (1.0 - self.average_power / self.reference_power)

    @property
    def edp_gain_percent(self) -> float:
        """EDP reduction versus the nominal reference, in percent."""
        return 100.0 * (1.0 - self.edp / self.reference_edp)

    @property
    def slowdown_percent(self) -> float:
        """Execution-time increase caused by the recovery cycles, in percent."""
        return 100.0 * (self.run_duration / self.reference_duration - 1.0)


def evaluate_power_metrics(
    result: DVSRunResult,
    clocking: ClockingParameters,
    recovery_cycles_per_error: int = 1,
) -> PowerMetrics:
    """Power/EDP metrics of a closed-loop run.

    The run's wall clock is stretched by one recovery cycle per corrected
    error (the paper's assumption); the nominal reference executes the same
    number of useful cycles with no errors.
    """
    if recovery_cycles_per_error < 0:
        raise ValueError(
            f"recovery_cycles_per_error must be >= 0, got {recovery_cycles_per_error}"
        )
    cycle_time = clocking.cycle_time
    reference_duration = result.n_cycles * cycle_time
    run_duration = (result.n_cycles + recovery_cycles_per_error * result.total_errors) * cycle_time

    run_energy = result.energy.total_with_recovery
    reference_energy = result.reference_energy.total_with_recovery
    return PowerMetrics(
        run_duration=run_duration,
        reference_duration=reference_duration,
        average_power=average_power(run_energy, run_duration),
        reference_power=average_power(reference_energy, reference_duration),
        edp=energy_delay_product(run_energy, run_duration),
        reference_edp=energy_delay_product(reference_energy, reference_duration),
    )
