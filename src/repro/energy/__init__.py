"""Energy accounting and gain computation."""

from repro.energy.accounting import ZERO_ENERGY, EnergyBreakdown
from repro.energy.power import (
    PowerMetrics,
    average_power,
    energy_delay_product,
    evaluate_power_metrics,
)
from repro.energy.gains import (
    breakdown_gain,
    breakdown_gain_percent,
    energy_gain,
    energy_gain_percent,
    normalized_energy,
)

__all__ = [
    "ZERO_ENERGY",
    "EnergyBreakdown",
    "PowerMetrics",
    "average_power",
    "energy_delay_product",
    "evaluate_power_metrics",
    "breakdown_gain",
    "breakdown_gain_percent",
    "energy_gain",
    "energy_gain_percent",
    "normalized_energy",
]
