"""Energy-gain computations.

The paper reports "energy gains" as the percentage reduction of bus energy
(plus recovery overhead) relative to running the same workload at the nominal
1.2 V supply.  These helpers centralise that definition so every experiment
driver reports gains consistently.
"""

from __future__ import annotations


from repro.energy.accounting import EnergyBreakdown

Number = int | float


def energy_gain(reference: Number, scaled: Number) -> float:
    """Fractional energy gain of ``scaled`` relative to ``reference``.

    A positive value means the scaled configuration uses *less* energy.  The
    result can be negative if the scaled configuration uses more energy
    (e.g. a pathological controller that pays more recovery overhead than it
    saves).
    """
    if reference <= 0:
        raise ValueError(f"reference energy must be positive, got {reference}")
    return 1.0 - scaled / reference


def energy_gain_percent(reference: Number, scaled: Number) -> float:
    """:func:`energy_gain` expressed in percent, as the paper reports it."""
    return 100.0 * energy_gain(reference, scaled)


def breakdown_gain(reference: EnergyBreakdown, scaled: EnergyBreakdown) -> float:
    """Fractional gain between two energy breakdowns.

    Uses the paper's accounting: bus energy plus error-recovery overhead.
    The flip-flop clocking energy is excluded because it is identical in the
    scaled and reference configurations (the flip-flop bank is on the core
    supply) and the paper examines the bus in isolation.
    """
    return energy_gain(reference.total_with_recovery, scaled.total_with_recovery)


def breakdown_gain_percent(reference: EnergyBreakdown, scaled: EnergyBreakdown) -> float:
    """:func:`breakdown_gain` in percent."""
    return 100.0 * breakdown_gain(reference, scaled)


def normalized_energy(reference: EnergyBreakdown, scaled: EnergyBreakdown) -> float:
    """Scaled energy as a fraction of the reference (the Fig. 4 Y axis)."""
    if reference.total_with_recovery <= 0:
        raise ValueError("reference energy must be positive")
    return scaled.total_with_recovery / reference.total_with_recovery
