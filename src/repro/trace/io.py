"""Saving and loading bus traces.

The synthetic generator covers the paper's experiments, but the whole point
of keeping :class:`~repro.trace.trace.BusTrace` origin-agnostic is that
*recorded* traces -- from an RTL simulation, an FPGA probe, or a rebuilt
SimpleScalar flow -- can be dropped into every experiment unchanged.  Two
interchange formats are supported:

``.npz``
    A compressed numpy archive; compact and fast, the format to use
    programmatically.  Two layouts exist:

    * the current *packed* layout: the :func:`numpy.packbits` byte array
      (``bitorder="little"``) plus ``n_bits`` metadata -- 8x smaller in
      memory when loaded packed, and what :class:`repro.trace.stream.\
NpzTraceSource` streams from;
    * the *legacy* layout: one unsigned integer per bus word.  Legacy
      archives load transparently (and can still be written with
      ``packed=False`` for interop with older tooling).
``.hex`` (text)
    One hexadecimal bus word per line with ``#`` comments; trivially
    produced by any logging testbench and easy to inspect by eye.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.trace.trace import BusTrace

PathLike = str | os.PathLike

#: Key names used inside the ``.npz`` archive.
_NPZ_WORDS_KEY = "words"  # legacy layout: integer words
_NPZ_PACKED_KEY = "packed"  # packed layout: packbits bytes (bitorder="little")
_NPZ_NBITS_KEY = "n_bits"
_NPZ_NAME_KEY = "name"


def save_trace_npz(trace: BusTrace, path: PathLike, *, packed: bool = True) -> None:
    """Save a trace as a compressed ``.npz`` archive.

    ``packed=True`` (the default) writes the bit-packed layout; pass
    ``packed=False`` to write the legacy integer-word layout for older
    tooling.  Both load back through :func:`load_trace_npz`.
    """
    if packed:
        payload = {
            _NPZ_PACKED_KEY: trace.packed_values,
            _NPZ_NBITS_KEY: np.array(trace.n_bits),
            _NPZ_NAME_KEY: np.array(trace.name),
        }
    else:
        payload = {
            _NPZ_WORDS_KEY: trace.to_words(),
            _NPZ_NBITS_KEY: np.array(trace.n_bits),
            _NPZ_NAME_KEY: np.array(trace.name),
        }
    np.savez_compressed(Path(path), **payload)


def load_trace_npz(path: PathLike, *, packed: bool = False) -> BusTrace:
    """Load a trace saved by :func:`save_trace_npz` (either layout).

    ``packed=True`` returns a packed-backed :class:`BusTrace` (8x smaller
    resident size; legacy word archives are packed on load), which is what
    the streaming pipeline wants.  The default returns the classic
    unpacked-backed trace.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if _NPZ_NBITS_KEY not in archive or (
            _NPZ_PACKED_KEY not in archive and _NPZ_WORDS_KEY not in archive
        ):
            raise ValueError(
                f"{path} is not a bus-trace archive (needs {_NPZ_NBITS_KEY!r} plus "
                f"{_NPZ_PACKED_KEY!r} or {_NPZ_WORDS_KEY!r})"
            )
        n_bits = int(archive[_NPZ_NBITS_KEY])
        name = str(archive[_NPZ_NAME_KEY]) if _NPZ_NAME_KEY in archive else path.stem
        if _NPZ_PACKED_KEY in archive:
            trace = BusTrace(packed=archive[_NPZ_PACKED_KEY], n_bits=n_bits, name=name)
        else:
            trace = BusTrace.from_words(archive[_NPZ_WORDS_KEY], n_bits=n_bits, name=name)
    return trace.pack() if packed else trace.unpacked()


def save_trace_hex(trace: BusTrace, path: PathLike) -> None:
    """Save a trace as one hexadecimal word per line (with a header comment)."""
    path = Path(path)
    digits = (trace.n_bits + 3) // 4
    lines = [f"# bus trace {trace.name!r}: {trace.n_bits} bits, {trace.n_cycles} cycles"]
    lines.extend(f"{int(word):0{digits}x}" for word in trace.to_words())
    path.write_text("\n".join(lines) + "\n")


def load_trace_hex(path: PathLike, n_bits: int = 32, name: str | None = None) -> BusTrace:
    """Load a trace from a text file of hexadecimal words.

    Blank lines and ``#`` comments are ignored; words wider than ``n_bits``
    are rejected rather than silently truncated.
    """
    path = Path(path)
    words = []
    limit = 1 << n_bits
    for line_number, raw in enumerate(path.read_text().splitlines(), start=1):
        stripped = raw.split("#", 1)[0].strip()
        if not stripped:
            continue
        try:
            word = int(stripped, 16)
        except ValueError as error:
            raise ValueError(f"{path}:{line_number}: not a hexadecimal word: {stripped!r}") from error
        if word < 0 or word >= limit:
            raise ValueError(
                f"{path}:{line_number}: word {stripped!r} does not fit in {n_bits} bits"
            )
        words.append(word)
    if len(words) < 2:
        raise ValueError(f"{path} holds {len(words)} words; a trace needs at least two")
    return BusTrace.from_words(np.asarray(words, dtype=np.uint64), n_bits=n_bits, name=name or path.stem)
