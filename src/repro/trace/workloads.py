"""The workload registry: every trace producer behind one ``resolve(spec)`` API.

The paper drives its experiments with memory-read bus traces of real SPEC2000
programs; this reproduction has several trace producers -- synthetic
benchmark profiles, executed mini-CPU kernels, recorded ``.npz``/``.hex``
files, SimPoint-reduced traces, and concatenated or encoder-wrapped mixes of
any of them.  This module makes each of those a first-class, *named*,
streamable workload: :func:`resolve_workload` turns a plain string spec into
a :class:`~repro.trace.stream.TraceSource`, so the experiment registry, the
sweep engine (``workload=`` axis of the ``dvs_run`` task), the report
builder and the ``repro trace`` / ``--workload`` CLI surface all share one
resolution path -- and, because specs are strings, workload identity flows
into the content-addressed result cache unchanged.

Spec grammar (resolution order)
-------------------------------
1. ``BusTrace`` / ``TraceSource`` objects pass through unchanged.
2. The *wrapper* schemes, which are greedy (their payload may itself
   contain ``+``):

   ``simpoint:<inner spec>``
       The SimPoint-reduced view of any resolvable workload: cluster the
       inner trace's window signatures and stream only the representative
       windows (:class:`SimPointTraceSource`).
   ``suite:<a>+<b>+...``
       The parts run back to back as one
       :class:`~repro.trace.stream.ConcatenatedTraceSource`.
   ``encoded:<encoder>:<inner spec>``
       The inner workload passed through a bus encoder
       (``encoded:bus-invert:crafty``; ``encoded:bus-invert:crafty+mgrid``
       encodes the whole two-program suite).
   ``file:<path>``
       A recorded trace: ``.npz`` archives stream bit-packed through
       :class:`~repro.trace.stream.NpzTraceSource`, ``.hex`` text files are
       loaded in memory.

3. A spec containing ``+`` concatenates its parts, each resolved
   recursively -- ``crafty+mgrid``, ``cpu:memcopy+crafty`` and
   ``crafty+cpu:memcopy`` all work.
4. The *leaf* schemes: ``synthetic:<profile>`` (a
   :class:`~repro.trace.stream.SyntheticTraceSource` for one of the ten
   Table 1 benchmark profiles) and ``cpu:<kernel>`` (alias ``kernel:``; a
   :class:`~repro.trace.stream.CpuKernelTraceSource` executing a mini-CPU
   kernel run by run).
5. A bare synthetic profile name (``crafty``) or kernel name (``memcopy``).
6. A bare path ending in ``.npz`` / ``.hex``.

Generative workloads (synthetic profiles, CPU kernels) honour the
``n_cycles`` / ``seed`` arguments of :meth:`WorkloadRegistry.resolve`;
file-backed workloads have an intrinsic length and ignore them.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Sequence

import numpy as np

from repro.trace.benchmarks import SPEC2000_PROFILES, TABLE1_ORDER, get_profile
from repro.trace.generator import DEFAULT_CYCLES_PER_BENCHMARK
from repro.trace.simpoint import (
    SimPointSelection,
    select_from_signatures,
    transition_signatures,
)
from repro.trace.stream import (
    ConcatenatedTraceSource,
    CpuKernelTraceSource,
    EncodedTraceSource,
    InMemoryTraceSource,
    NpzTraceSource,
    SyntheticTraceSource,
    TraceSource,
    WorkloadLike,
    as_trace_source,
)
from repro.trace.trace import BusTrace
from repro.utils.rng import SeedLike, derive_seed_sequence, rng_seed_sequence

__all__ = [
    "SimPointTraceSource",
    "WorkloadError",
    "WorkloadRegistry",
    "WORKLOADS",
    "resolve_workload",
    "resolve_workload_mapping",
    "kernel_sources",
    "available_workloads",
]


class WorkloadError(ValueError):
    """A workload spec could not be resolved or is unusable as requested.

    Raised by consumers that need to distinguish *bad user input* (an
    unknown spec, workloads of incompatible widths) from internal failures
    -- e.g. the CLI catches exactly this to print a clean error instead of
    a traceback.  The registry itself raises ``KeyError``/``TypeError`` so
    lookups stay idiomatic; wrap at the boundary that owns the user input.
    """

#: Number of equal windows the SimPoint reduction splits a trace into when no
#: explicit window length is given.
DEFAULT_SIMPOINT_WINDOWS = 16

#: Default number of phases / representative windows of the reduction.
DEFAULT_SIMPOINT_CLUSTERS = 4


class SimPointTraceSource(TraceSource):
    """The SimPoint-reduced view of another workload.

    The base workload is materialised once *in the bit-packed
    representation* (8x smaller than the 0/1 array), split into equal
    windows, clustered by activity signature (window signatures are computed
    one window at a time, so the unpacked working set stays O(window)), and
    only the representative window of each cluster is kept; streaming this
    source walks the representatives back to back.  The cluster weights stay
    available (:attr:`weights` / :meth:`weighted_estimate`) so per-window
    metrics can be recombined into a whole-run estimate, CBMA-style.
    """

    def __init__(
        self,
        base: WorkloadLike,
        *,
        window_length: int | None = None,
        n_clusters: int = DEFAULT_SIMPOINT_CLUSTERS,
        seed: SeedLike = 0,
    ) -> None:
        trace = as_trace_source(base).materialize(packed=True)
        if window_length is None:
            window_length = max(1, trace.n_cycles // DEFAULT_SIMPOINT_WINDOWS)
        self._selection = select_from_signatures(
            self._windowed_signatures(trace, window_length),
            window_length,
            n_clusters=n_clusters,
            seed=seed,
        )
        # Representative windows stay packed: BusTrace.window on a packed
        # trace is a row slice, and InMemoryTraceSource streams packed
        # backings without widening.
        self._reduced = ConcatenatedTraceSource(
            [InMemoryTraceSource(window) for window in self._selection.extract(trace)],
            name=f"{trace.name}.simpoint",
        )

    @staticmethod
    def _windowed_signatures(trace: BusTrace, window_length: int) -> np.ndarray:
        """Window signatures from a packed trace, one window at a time.

        Matches :func:`repro.trace.simpoint.window_signatures` exactly (same
        :func:`~repro.trace.simpoint.transition_signatures` feature
        definition) while only ever unpacking ``window_length + 1`` words.
        """
        from repro.trace.trace import unpack_values

        if window_length <= 0:
            raise ValueError(f"window_length must be positive, got {window_length}")
        n_windows = trace.n_cycles // window_length
        if n_windows == 0:
            raise ValueError(
                f"trace has {trace.n_cycles} cycles, shorter than one window ({window_length})"
            )
        packed = trace.packed_values
        signatures = np.empty((n_windows, trace.n_bits + 1))
        for index in range(n_windows):
            start = index * window_length
            words = unpack_values(packed[start : start + window_length + 1], trace.n_bits)
            transitions = np.diff(words.astype(np.int8), axis=0)
            signatures[index] = transition_signatures(transitions[None, :, :])[0]
        return signatures

    @property
    def selection(self) -> SimPointSelection:
        """The underlying window selection (representatives, weights, labels)."""
        return self._selection

    @property
    def weights(self) -> tuple[float, ...]:
        """Execution-time share of each representative window's cluster."""
        return self._selection.weights

    def weighted_estimate(self, per_window_values: np.ndarray) -> float:
        """Weighted combination of a metric measured per representative window."""
        return self._selection.weighted_estimate(per_window_values)

    @property
    def n_cycles(self) -> int:
        return self._reduced.n_cycles

    @property
    def n_bits(self) -> int:
        return self._reduced.n_bits

    @property
    def name(self) -> str:
        return self._reduced.name

    def _word_blocks(self):
        return self._reduced._word_blocks()

    def _packed_blocks(self):
        return self._reduced._packed_blocks()


def _kernel_names() -> tuple[str, ...]:
    from repro.cpu.kernels import KERNELS

    return tuple(sorted(KERNELS))


def _encoder(name: str):
    from repro.encoding import get_encoder

    return get_encoder(name)


class WorkloadRegistry:
    """Resolve workload specs into streaming trace sources.

    One instance, :data:`WORKLOADS`, serves the whole repository; the class
    exists so tests can build registries around synthetic fixtures.  See the
    module docstring for the spec grammar and resolution order.
    """

    def resolve(
        self,
        spec: WorkloadLike | str,
        *,
        n_cycles: int | None = None,
        seed: SeedLike = None,
        n_bits: int = 32,
    ) -> TraceSource:
        """A :class:`TraceSource` for a workload spec.

        Parameters
        ----------
        spec:
            Spec string (see module docstring), or an already-built
            ``BusTrace`` / ``TraceSource`` (passed through).
        n_cycles:
            Trace length for *generative* workloads (synthetic profiles and
            CPU kernels); defaults to
            :data:`~repro.trace.generator.DEFAULT_CYCLES_PER_BENCHMARK`.
            File-backed workloads keep their recorded length.
        seed:
            Workload seed.  Generative sources derive per-workload child
            streams from it following the suite conventions -- synthetic
            profiles by their Table 1 spawn index (so ``resolve("crafty",
            seed=s)`` equals ``suite_sources(seed=s)["crafty"]``), CPU
            kernels by name (:func:`repro.cpu.tracing.kernel_seed_sequence`)
            -- so distinct specs in one mapping never share a stream.  The
            SimPoint clustering also uses it (``None`` falls back to 0 so a
            bare ``simpoint:`` spec stays deterministic).
        n_bits:
            Bus width for generative sources.
        """
        if isinstance(spec, (BusTrace, TraceSource)):
            return as_trace_source(spec)
        if not isinstance(spec, str):
            raise TypeError(f"workload spec must be a string or trace, got {type(spec).__name__}")
        text = spec.strip()
        if not text:
            raise KeyError("empty workload spec")

        scheme, _, rest = text.partition(":")
        scheme = scheme.lower()
        # NOTE: adding a scheme here? Mirror it in :meth:`file_paths` below.
        # The cache fingerprint walks this same grammar statically (resolving
        # would be too expensive at key-computation time), and a scheme that
        # hides a file: payload from that walk silently breaks the
        # regenerate-invalidates-cache guarantee.
        #
        # Wrapper schemes are greedy -- their payload may itself contain '+'
        # (e.g. "simpoint:crafty+mgrid" reduces the two-program suite), so
        # they dispatch before the top-level '+' split.
        if rest:
            if scheme == "simpoint":
                inner = self.resolve(rest, n_cycles=n_cycles, seed=seed, n_bits=n_bits)
                return SimPointTraceSource(inner, seed=seed if seed is not None else 0)
            if scheme == "suite":
                return self._suite(rest.split("+"), rest, n_cycles, seed, n_bits)
            if scheme == "encoded":
                encoder_name, _, inner = rest.partition(":")
                if not inner:
                    raise KeyError(
                        f"encoded spec {text!r} needs the form 'encoded:<encoder>:<workload>'"
                    )
                return EncodedTraceSource(
                    self.resolve(inner, n_cycles=n_cycles, seed=seed, n_bits=n_bits),
                    _encoder(encoder_name),
                )
            if scheme == "file":
                return self._file(rest)
        # Top-level '+' concatenates, whichever part carries a leaf scheme
        # prefix ("cpu:memcopy+crafty" == "crafty+cpu:memcopy" reordered).
        if "+" in text:
            return self._suite(text.split("+"), text, n_cycles, seed, n_bits)
        if rest:
            if scheme == "synthetic":
                return self._synthetic(rest, n_cycles, seed, n_bits)
            if scheme in ("cpu", "kernel"):
                return self._cpu(rest, n_cycles, seed, n_bits)
        if text.lower() in SPEC2000_PROFILES:
            return self._synthetic(text, n_cycles, seed, n_bits)
        if text in _kernel_names():
            return self._cpu(text, n_cycles, seed, n_bits)
        if text.endswith((".npz", ".hex")):
            return self._file(text)
        known = ", ".join(self.names())
        raise KeyError(f"unknown workload {spec!r}; known workloads: {known}")

    def _synthetic(
        self, name: str, n_cycles: int | None, seed: SeedLike, n_bits: int
    ) -> SyntheticTraceSource:
        # Per-profile streams follow the suite convention (the Table 1 spawn
        # index), so resolve("crafty", seed=s) equals suite_sources(seed=s)
        # ["crafty"] bit for bit and distinct profiles in one mapping never
        # share a stream.
        profile = get_profile(name)
        root = rng_seed_sequence(seed)
        child = derive_seed_sequence(root, (TABLE1_ORDER.index(profile.name),))
        return SyntheticTraceSource(
            profile,
            n_cycles if n_cycles is not None else DEFAULT_CYCLES_PER_BENCHMARK,
            n_bits=n_bits,
            seed=child,
        )

    def _cpu(
        self, name: str, n_cycles: int | None, seed: SeedLike, n_bits: int
    ) -> CpuKernelTraceSource:
        # Name-keyed per-kernel streams (kernel_seed_sequence), matching
        # kernel_suite / kernel_sources -- so a cpu: row resolved here equals
        # the same kernel's table1_kernels row.
        from repro.cpu.tracing import kernel_seed_sequence

        return CpuKernelTraceSource(
            name,
            n_cycles if n_cycles is not None else DEFAULT_CYCLES_PER_BENCHMARK,
            n_bits=n_bits,
            seed=kernel_seed_sequence(seed, name),
        )

    def _file(self, path: str) -> TraceSource:
        target = Path(path)
        if not target.is_file():
            raise KeyError(f"workload file {path!r} does not exist")
        if target.suffix == ".hex":
            from repro.trace.io import load_trace_hex

            return InMemoryTraceSource(load_trace_hex(target))
        return NpzTraceSource(target)

    def _suite(
        self,
        parts: Sequence[str],
        name: str,
        n_cycles: int | None,
        seed: SeedLike,
        n_bits: int,
    ) -> ConcatenatedTraceSource:
        cleaned = [part for part in (p.strip() for p in parts) if part]
        if not cleaned:
            raise KeyError(f"suite spec {name!r} names no workloads")
        return ConcatenatedTraceSource(
            [
                self.resolve(part, n_cycles=n_cycles, seed=seed, n_bits=n_bits)
                for part in cleaned
            ],
            name=name,
        )

    def resolve_mapping(
        self,
        spec: str,
        *,
        n_cycles: int | None = None,
        seed: SeedLike = None,
        n_bits: int = 32,
    ) -> dict[str, TraceSource]:
        """A ``{spec_part: source}`` mapping from a *comma*-separated spec.

        This is what the ``--workload`` experiment selectors consume: each
        comma-separated part becomes one named workload row, resolved through
        the full spec grammar -- so ``+`` keeps its suite-concatenation
        meaning *within* a row (``"suite:crafty+mgrid,cpu:memcopy"`` is two
        rows, the first a concatenated suite).  Rows share the passed
        ``seed``; different specs draw from different streams by
        construction.
        """
        mapping: dict[str, TraceSource] = {}
        for part in (p.strip() for p in spec.split(",")):
            if not part or part in mapping:
                continue
            mapping[part] = self.resolve(part, n_cycles=n_cycles, seed=seed, n_bits=n_bits)
        if not mapping:
            raise KeyError(f"workload spec {spec!r} names no workloads")
        return mapping

    def file_paths(self, spec: str) -> list[str]:
        """Trace-file paths a single-row spec references, by the resolver's
        own grammar precedence (``file:`` is greedy, so paths containing
        ``+`` are returned whole -- exactly as :meth:`resolve` would read
        them).  Unknown specs yield no paths; resolution reports them.

        This is a static mirror of :meth:`resolve`'s dispatch, kept separate
        so computing a cache fingerprint never resolves (and possibly
        materialises) the workload.  Any scheme added to :meth:`resolve`
        MUST be mirrored here, or file payloads behind it escape
        content-addressing.
        """
        text = spec.strip()
        scheme, _, rest = text.partition(":")
        scheme = scheme.lower()
        if rest:
            if scheme == "simpoint":
                return self.file_paths(rest)
            if scheme == "suite":
                return [
                    path
                    for part in rest.split("+")
                    if part.strip()
                    for path in self.file_paths(part)
                ]
            if scheme == "encoded":
                _, _, inner = rest.partition(":")
                return self.file_paths(inner) if inner else []
            if scheme == "file":
                return [rest]
        if "+" in text:
            return [
                path
                for part in text.split("+")
                if part.strip()
                for path in self.file_paths(part)
            ]
        if (
            text.endswith((".npz", ".hex"))
            and text.lower() not in SPEC2000_PROFILES
            and text not in _kernel_names()
        ):
            return [text]
        return []

    def names(self) -> tuple[str, ...]:
        """Canonical specs of every registered named workload."""
        synthetic = tuple(sorted(SPEC2000_PROFILES))
        kernels = tuple(f"cpu:{name}" for name in _kernel_names())
        return synthetic + kernels

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self.names())} named workloads)"

    def describe(self) -> list[tuple[str, str]]:
        """(spec, description) rows for the CLI's ``trace --list`` output."""
        from repro.cpu.kernels import KERNELS

        rows = [
            (name, f"synthetic profile: {SPEC2000_PROFILES[name].description}")
            for name in sorted(SPEC2000_PROFILES)
        ]
        rows += [
            (f"cpu:{name}", f"mini-CPU kernel: {KERNELS[name].description}")
            for name in sorted(KERNELS)
        ]
        rows += [
            ("file:<path>", "recorded trace (.npz packed archive or .hex text)"),
            ("simpoint:<spec>", "SimPoint-reduced view of any workload"),
            ("suite:<a>+<b>", "workloads run back to back (bare 'a+b' works too)"),
            ("encoded:<encoder>:<spec>", "workload passed through a bus encoder"),
        ]
        return rows


#: The process-wide workload registry.
WORKLOADS = WorkloadRegistry()


def resolve_workload(
    spec: WorkloadLike | str,
    *,
    n_cycles: int | None = None,
    seed: SeedLike = None,
    n_bits: int = 32,
) -> TraceSource:
    """Resolve a workload spec via the default registry (:data:`WORKLOADS`)."""
    return WORKLOADS.resolve(spec, n_cycles=n_cycles, seed=seed, n_bits=n_bits)


def resolve_workload_mapping(
    spec: str,
    *,
    n_cycles: int | None = None,
    seed: SeedLike = None,
    n_bits: int = 32,
) -> dict[str, TraceSource]:
    """Resolve a *comma*-separated row spec into named sources via :data:`WORKLOADS`.

    ``+`` keeps its suite-concatenation meaning within a row; see
    :meth:`WorkloadRegistry.resolve_mapping`.
    """
    return WORKLOADS.resolve_mapping(spec, n_cycles=n_cycles, seed=seed, n_bits=n_bits)


def available_workloads() -> tuple[str, ...]:
    """Canonical specs of every named workload in the default registry."""
    return WORKLOADS.names()


def workload_fingerprint(spec: str) -> str | None:
    """Content digest of every trace file a workload spec references.

    Generative workloads are pure functions of their spec and seed, so the
    spec string alone content-addresses them; ``file:`` parts are only
    *named* by their path.  This digest (SHA-256 over the referenced files'
    bytes) is what job parameters carry alongside a file-backed spec so the
    result cache keys on trace *content* -- regenerating the file invalidates
    the cached entry.  Returns ``None`` when the spec references no files.
    """
    import hashlib

    # Rows are comma-separated (commas never appear inside a row spec);
    # within a row the registry's own grammar walk finds the file parts.
    paths: list[str] = []
    for row in spec.split(","):
        if row.strip():
            paths.extend(WORKLOADS.file_paths(row))
    if not paths:
        return None
    digest = hashlib.sha256()
    for path in paths:
        digest.update(path.encode("utf-8"))
        try:
            digest.update(Path(path).read_bytes())
        except OSError:
            digest.update(b"<missing>")
    return digest.hexdigest()


def kernel_sources(
    names: Sequence[str] | None = None,
    n_cycles: int = 20_000,
    *,
    seed: SeedLike = 2005,
    bus_policy: str = "all_loads",
    n_bits: int = 32,
) -> dict[str, CpuKernelTraceSource]:
    """Streaming kernel sources keyed by their registry spec (``cpu:<name>``).

    The streaming twin of :func:`repro.cpu.tracing.kernel_suite`: per-kernel
    streams are derived from the seed and the kernel *name*
    (:func:`repro.cpu.tracing.kernel_seed_sequence`), so
    ``kernel_sources(...)["cpu:memcopy"].materialize()`` equals the suite's
    ``memcopy`` trace bit for bit and adding or removing kernels never
    perturbs the others.
    """
    from repro.cpu.tracing import kernel_seed_sequence

    if names is None:
        names = _kernel_names()
    return {
        f"cpu:{name}": CpuKernelTraceSource(
            name,
            n_cycles,
            n_bits=n_bits,
            seed=kernel_seed_sequence(seed, name),
            bus_policy=bus_policy,
        )
        for name in names
    }
