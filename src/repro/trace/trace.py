"""Bus data traces.

A :class:`BusTrace` is the sequence of data words driven on the memory read
bus, one word per clock cycle.  The paper obtains these traces from a
SimpleScalar/Alpha simulation of SPEC2000 benchmarks; this reproduction
generates them synthetically (:mod:`repro.trace.synthetic`) but the trace
container and everything downstream is agnostic to their origin, so recorded
traces can be substituted directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np


@dataclass(frozen=True)
class BusTrace:
    """A sequence of bus words, stored as an ``(n_words, n_bits)`` 0/1 array.

    The number of simulated *cycles* (transitions) is ``n_words - 1``: the
    first word only establishes the initial bus state.
    """

    values: np.ndarray
    name: str = "trace"

    def __post_init__(self) -> None:
        values = np.asarray(self.values)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D (words x bits), got shape {values.shape}")
        if values.shape[0] < 2:
            raise ValueError("a trace needs at least two words (one transition)")
        if not np.all((values == 0) | (values == 1)):
            raise ValueError("trace values must be 0/1")
        object.__setattr__(self, "values", values.astype(np.uint8))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_words(cls, words: Iterable[int], n_bits: int = 32, name: str = "trace") -> "BusTrace":
        """Build a trace from integer bus words (LSB = wire 0)."""
        words_array = np.asarray(list(words) if not isinstance(words, np.ndarray) else words)
        if words_array.ndim != 1:
            raise ValueError("words must be a 1-D sequence of integers")
        bit_positions = np.arange(n_bits, dtype=np.uint64)
        bits = (words_array[:, None].astype(np.uint64) >> bit_positions) & 1
        return cls(values=bits.astype(np.uint8), name=name)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def n_bits(self) -> int:
        """Bus width in bits."""
        return int(self.values.shape[1])

    @property
    def n_cycles(self) -> int:
        """Number of simulated cycles (transitions between consecutive words)."""
        return int(self.values.shape[0]) - 1

    def __len__(self) -> int:
        return self.n_cycles

    def to_words(self) -> np.ndarray:
        """The trace as unsigned integer words (LSB = wire 0)."""
        weights = (1 << np.arange(self.n_bits, dtype=np.uint64))
        return (self.values.astype(np.uint64) * weights).sum(axis=1)

    # ------------------------------------------------------------------ #
    # Manipulation
    # ------------------------------------------------------------------ #
    def window(self, start_cycle: int, n_cycles: int, name: Optional[str] = None) -> "BusTrace":
        """A sub-trace covering ``n_cycles`` transitions starting at ``start_cycle``."""
        if start_cycle < 0 or start_cycle + n_cycles > self.n_cycles:
            raise ValueError(
                f"window [{start_cycle}, {start_cycle + n_cycles}) is outside the "
                f"trace's {self.n_cycles} cycles"
            )
        values = self.values[start_cycle : start_cycle + n_cycles + 1]
        return BusTrace(values=values, name=name or f"{self.name}[{start_cycle}:+{n_cycles}]")

    def concatenate(self, other: "BusTrace", name: Optional[str] = None) -> "BusTrace":
        """Run another trace back-to-back after this one.

        The transition from this trace's last word to the other trace's first
        word is included, exactly as if the programs executed consecutively.
        """
        if other.n_bits != self.n_bits:
            raise ValueError(
                f"cannot concatenate a {other.n_bits}-bit trace onto a {self.n_bits}-bit trace"
            )
        values = np.concatenate([self.values, other.values], axis=0)
        return BusTrace(values=values, name=name or f"{self.name}+{other.name}")

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def toggle_activity(self) -> float:
        """Mean fraction of bits toggling per cycle."""
        changes = np.count_nonzero(np.diff(self.values.astype(np.int8), axis=0), axis=1)
        return float(np.mean(changes)) / self.n_bits

    def per_bit_activity(self) -> np.ndarray:
        """Per-wire toggle probability across the trace."""
        changes = np.diff(self.values.astype(np.int8), axis=0) != 0
        return changes.mean(axis=0)


def concatenate_traces(traces: Iterable[BusTrace], name: str = "suite") -> BusTrace:
    """Concatenate an iterable of traces into one back-to-back run."""
    traces = list(traces)
    if not traces:
        raise ValueError("need at least one trace to concatenate")
    result = traces[0]
    for trace in traces[1:]:
        result = result.concatenate(trace)
    return BusTrace(values=result.values, name=name)
