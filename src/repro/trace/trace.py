"""Bus data traces.

A :class:`BusTrace` is the sequence of data words driven on the memory read
bus, one word per clock cycle.  The paper obtains these traces from a
SimpleScalar/Alpha simulation of SPEC2000 benchmarks; this reproduction
generates them synthetically (:mod:`repro.trace.synthetic`) but the trace
container and everything downstream is agnostic to their origin, so recorded
traces can be substituted directly.

Storage
-------
A trace can be backed by either of two representations:

* an *unpacked* ``(n_words, n_bits)`` uint8 array of 0/1 values (the classic
  layout every vectorised computation consumes), or
* a *packed* ``(n_words, ceil(n_bits / 8))`` uint8 array produced by
  :func:`numpy.packbits` (``bitorder="little"``: wire ``i`` lives in byte
  ``i // 8``, bit ``i % 8``), which cuts the resident size 8x.

The 0/1 API is identical either way: :attr:`BusTrace.values` unpacks on
demand.  Packed traces are what make paper-scale (10 M cycle) workloads fit
in memory; the streaming pipeline (:mod:`repro.trace.stream`) only ever
unpacks one chunk at a time.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

#: Bit order used for the packed representation (wire i -> byte i//8, bit i%8).
PACKED_BITORDER = "little"


def pack_values(values: np.ndarray) -> np.ndarray:
    """Pack a 0/1 ``(n_words, n_bits)`` array into bytes along the bit axis."""
    return np.packbits(np.asarray(values, dtype=np.uint8), axis=1, bitorder=PACKED_BITORDER)


def unpack_values(packed: np.ndarray, n_bits: int) -> np.ndarray:
    """Invert :func:`pack_values` for an ``n_bits``-wide bus."""
    return np.unpackbits(
        np.asarray(packed, dtype=np.uint8), axis=1, count=n_bits, bitorder=PACKED_BITORDER
    )


def words_to_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Expand integer bus words into a 0/1 ``(n_words, n_bits)`` array (LSB = wire 0)."""
    words = np.asarray(words)
    if words.ndim != 1:
        raise ValueError("words must be a 1-D sequence of integers")
    bit_positions = np.arange(n_bits, dtype=np.uint64)
    bits = (words[:, None].astype(np.uint64) >> bit_positions) & 1
    return bits.astype(np.uint8)


def words_to_packed(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Pack integer bus words straight into the packed byte representation.

    Equivalent to ``pack_values(words_to_bits(words, n_bits))`` but without
    ever materialising the 0/1 array: the little bit order of the packed
    layout (wire ``i`` -> byte ``i // 8``, bit ``i % 8``) is exactly the
    little-endian byte order of the word itself, so packing is a reinterpret
    plus a mask of the top byte's unused bits.  Works for ``n_bits <= 64``.
    """
    words = np.asarray(words)
    if words.ndim != 1:
        raise ValueError("words must be a 1-D sequence of integers")
    if n_bits <= 0 or n_bits > 64:
        raise ValueError(f"n_bits must be in 1..64, got {n_bits}")
    n_bytes = (n_bits + 7) // 8
    as_bytes = np.ascontiguousarray(words, dtype="<u8").view(np.uint8).reshape(-1, 8)
    # Always copy the byte slice: for n_bytes == 8 it would otherwise alias
    # the caller's array and the mask below would corrupt it in place.
    packed = np.array(as_bytes[:, :n_bytes], order="C")
    if n_bits % 8:
        packed[:, -1] &= (1 << (n_bits % 8)) - 1
    return packed


class BusTrace:
    """A sequence of bus words with a 0/1 ``(n_words, n_bits)`` view.

    The number of simulated *cycles* (transitions) is ``n_words - 1``: the
    first word only establishes the initial bus state.

    Exactly one of ``values`` (unpacked 0/1 array) or ``packed`` (a
    :func:`numpy.packbits` array plus ``n_bits``) must be given.  The public
    API is representation-agnostic; use :meth:`pack` / :meth:`unpacked` to
    convert and :attr:`is_packed` / :attr:`nbytes` to inspect.
    """

    __slots__ = ("_values", "_packed", "_n_bits", "name")

    def __init__(
        self,
        values: np.ndarray | None = None,
        name: str = "trace",
        *,
        packed: np.ndarray | None = None,
        n_bits: int | None = None,
    ) -> None:
        if (values is None) == (packed is None):
            raise ValueError("exactly one of 'values' and 'packed' must be given")
        self.name = name
        if values is not None:
            values = np.asarray(values)
            if values.ndim != 2:
                raise ValueError(
                    f"values must be 2-D (words x bits), got shape {values.shape}"
                )
            if values.shape[0] < 2:
                raise ValueError("a trace needs at least two words (one transition)")
            if not np.all((values == 0) | (values == 1)):
                raise ValueError("trace values must be 0/1")
            self._values: np.ndarray | None = values.astype(np.uint8)
            self._packed: np.ndarray | None = None
            self._n_bits = int(values.shape[1])
        else:
            if n_bits is None or n_bits <= 0:
                raise ValueError("packed traces require a positive n_bits")
            packed = np.asarray(packed, dtype=np.uint8)
            if packed.ndim != 2:
                raise ValueError(
                    f"packed must be 2-D (words x bytes), got shape {packed.shape}"
                )
            if packed.shape[0] < 2:
                raise ValueError("a trace needs at least two words (one transition)")
            expected_bytes = (int(n_bits) + 7) // 8
            if packed.shape[1] != expected_bytes:
                raise ValueError(
                    f"packed width {packed.shape[1]} does not match "
                    f"{n_bits} bits ({expected_bytes} bytes)"
                )
            self._values = None
            self._packed = packed
            self._n_bits = int(n_bits)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_words(cls, words: Iterable[int], n_bits: int = 32, name: str = "trace") -> BusTrace:
        """Build a trace from integer bus words (LSB = wire 0)."""
        words_array = np.asarray(list(words) if not isinstance(words, np.ndarray) else words)
        return cls(values=words_to_bits(words_array, n_bits), name=name)

    @classmethod
    def from_packed(cls, packed: np.ndarray, n_bits: int, name: str = "trace") -> BusTrace:
        """Build a packed-backed trace from a :func:`pack_values` array."""
        return cls(packed=packed, n_bits=n_bits, name=name)

    # ------------------------------------------------------------------ #
    # Representation
    # ------------------------------------------------------------------ #
    @property
    def is_packed(self) -> bool:
        """Whether the trace is stored bit-packed (8x smaller)."""
        return self._packed is not None

    @property
    def values(self) -> np.ndarray:
        """The 0/1 ``(n_words, n_bits)`` array.

        Packed-backed traces unpack *on every access* so the packed memory
        saving is never silently lost; call :meth:`unpacked` once if repeated
        whole-trace access is needed.
        """
        if self._values is not None:
            return self._values
        return unpack_values(self._packed, self._n_bits)

    @property
    def packed_values(self) -> np.ndarray:
        """The packed byte array (packing on the fly for unpacked traces)."""
        if self._packed is not None:
            return self._packed
        return pack_values(self._values)

    def pack(self) -> BusTrace:
        """This trace backed by the packed representation (no-op if packed)."""
        if self.is_packed:
            return self
        return BusTrace(packed=pack_values(self._values), n_bits=self._n_bits, name=self.name)

    def unpacked(self) -> BusTrace:
        """This trace backed by the unpacked 0/1 array (no-op if unpacked)."""
        if not self.is_packed:
            return self
        return BusTrace(values=self.values, name=self.name)

    @property
    def nbytes(self) -> int:
        """Resident size of the backing array in bytes."""
        backing = self._packed if self._packed is not None else self._values
        return int(backing.nbytes)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def n_bits(self) -> int:
        """Bus width in bits."""
        return self._n_bits

    @property
    def n_words(self) -> int:
        """Number of stored bus words (cycles + 1)."""
        backing = self._packed if self._packed is not None else self._values
        return int(backing.shape[0])

    @property
    def n_cycles(self) -> int:
        """Number of simulated cycles (transitions between consecutive words)."""
        return self.n_words - 1

    def __len__(self) -> int:
        return self.n_cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        storage = "packed" if self.is_packed else "unpacked"
        return (
            f"BusTrace(name={self.name!r}, n_bits={self.n_bits}, "
            f"n_cycles={self.n_cycles}, {storage})"
        )

    def to_words(self) -> np.ndarray:
        """The trace as unsigned integer words (LSB = wire 0)."""
        weights = (1 << np.arange(self.n_bits, dtype=np.uint64))
        return (self.values.astype(np.uint64) * weights).sum(axis=1)

    # ------------------------------------------------------------------ #
    # Manipulation
    # ------------------------------------------------------------------ #
    def window(self, start_cycle: int, n_cycles: int, name: str | None = None) -> BusTrace:
        """A sub-trace covering ``n_cycles`` transitions starting at ``start_cycle``.

        Packed traces stay packed: the window is a row slice of the packed
        array, so extracting a chunk of a 10 M-cycle trace allocates nothing.
        """
        if start_cycle < 0 or start_cycle + n_cycles > self.n_cycles:
            raise ValueError(
                f"window [{start_cycle}, {start_cycle + n_cycles}) is outside the "
                f"trace's {self.n_cycles} cycles"
            )
        rows = slice(start_cycle, start_cycle + n_cycles + 1)
        window_name = name or f"{self.name}[{start_cycle}:+{n_cycles}]"
        if self.is_packed:
            return BusTrace(packed=self._packed[rows], n_bits=self._n_bits, name=window_name)
        return BusTrace(values=self._values[rows], name=window_name)

    def concatenate(self, other: BusTrace, name: str | None = None) -> BusTrace:
        """Run another trace back-to-back after this one.

        The transition from this trace's last word to the other trace's first
        word is included, exactly as if the programs executed consecutively.
        A pair of packed traces concatenates packed.
        """
        if other.n_bits != self.n_bits:
            raise ValueError(
                f"cannot concatenate a {other.n_bits}-bit trace onto a {self.n_bits}-bit trace"
            )
        combined_name = name or f"{self.name}+{other.name}"
        if self.is_packed and other.is_packed:
            packed = np.concatenate([self._packed, other._packed], axis=0)
            return BusTrace(packed=packed, n_bits=self._n_bits, name=combined_name)
        values = np.concatenate([self.values, other.values], axis=0)
        return BusTrace(values=values, name=combined_name)

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def toggle_activity(self) -> float:
        """Mean fraction of bits toggling per cycle."""
        if self.is_packed:
            from repro.interconnect.crosstalk import packed_toggle_counts

            return float(np.mean(packed_toggle_counts(self._packed))) / self.n_bits
        changes = np.count_nonzero(np.diff(self._values.astype(np.int8), axis=0), axis=1)
        return float(np.mean(changes)) / self.n_bits

    def per_bit_activity(self) -> np.ndarray:
        """Per-wire toggle probability across the trace."""
        changes = np.diff(self.values.astype(np.int8), axis=0) != 0
        return changes.mean(axis=0)


def concatenate_traces(traces: Iterable[BusTrace], name: str = "suite") -> BusTrace:
    """Concatenate an iterable of traces into one back-to-back run."""
    traces = list(traces)
    if not traces:
        raise ValueError("need at least one trace to concatenate")
    result = traces[0]
    for trace in traces[1:]:
        result = result.concatenate(trace)
    if result.is_packed:
        return BusTrace(packed=result.packed_values, n_bits=result.n_bits, name=name)
    return BusTrace(values=result.values, name=name)
