"""Workload substrate: synthetic SPEC2000-like bus traces and phase analysis."""

from repro.trace.benchmarks import (
    SPEC2000_PROFILES,
    TABLE1_ORDER,
    BenchmarkProfile,
    ProgramPhase,
    WordMix,
    get_profile,
)
from repro.trace.generator import (
    DEFAULT_CYCLES_PER_BENCHMARK,
    generate_benchmark_trace,
    generate_concatenated_suite,
    generate_suite,
)
from repro.trace.simpoint import SimPointSelection, select_simpoints, window_signatures
from repro.trace.io import load_trace_hex, load_trace_npz, save_trace_hex, save_trace_npz
from repro.trace.synthetic import generate_trace
from repro.trace.trace import BusTrace, concatenate_traces

__all__ = [
    "SPEC2000_PROFILES",
    "TABLE1_ORDER",
    "BenchmarkProfile",
    "ProgramPhase",
    "WordMix",
    "get_profile",
    "DEFAULT_CYCLES_PER_BENCHMARK",
    "generate_benchmark_trace",
    "generate_concatenated_suite",
    "generate_suite",
    "SimPointSelection",
    "select_simpoints",
    "window_signatures",
    "load_trace_hex",
    "load_trace_npz",
    "save_trace_hex",
    "save_trace_npz",
    "generate_trace",
    "BusTrace",
    "concatenate_traces",
]
