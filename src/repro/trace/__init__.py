"""Workload substrate: synthetic SPEC2000-like bus traces and phase analysis."""

from repro.trace.benchmarks import (
    SPEC2000_PROFILES,
    TABLE1_ORDER,
    BenchmarkProfile,
    ProgramPhase,
    WordMix,
    get_profile,
)
from repro.trace.generator import (
    DEFAULT_CYCLES_PER_BENCHMARK,
    PAPER_CYCLES_PER_BENCHMARK,
    benchmark_trace_source,
    concatenated_suite_source,
    generate_benchmark_trace,
    generate_concatenated_suite,
    generate_suite,
    suite_sources,
)
from repro.trace.simpoint import SimPointSelection, select_simpoints, window_signatures
from repro.trace.io import load_trace_hex, load_trace_npz, save_trace_hex, save_trace_npz
from repro.trace.stream import (
    DEFAULT_CHUNK_CYCLES,
    ConcatenatedTraceSource,
    EncodedTraceSource,
    InMemoryTraceSource,
    NpzTraceSource,
    SyntheticTraceSource,
    TraceChunk,
    TraceSource,
    as_trace_source,
)
from repro.trace.synthetic import generate_trace
from repro.trace.trace import BusTrace, concatenate_traces, pack_values, unpack_values

__all__ = [
    "SPEC2000_PROFILES",
    "TABLE1_ORDER",
    "BenchmarkProfile",
    "ProgramPhase",
    "WordMix",
    "get_profile",
    "DEFAULT_CYCLES_PER_BENCHMARK",
    "PAPER_CYCLES_PER_BENCHMARK",
    "benchmark_trace_source",
    "concatenated_suite_source",
    "generate_benchmark_trace",
    "generate_concatenated_suite",
    "generate_suite",
    "suite_sources",
    "SimPointSelection",
    "select_simpoints",
    "window_signatures",
    "load_trace_hex",
    "load_trace_npz",
    "save_trace_hex",
    "save_trace_npz",
    "DEFAULT_CHUNK_CYCLES",
    "ConcatenatedTraceSource",
    "EncodedTraceSource",
    "InMemoryTraceSource",
    "NpzTraceSource",
    "SyntheticTraceSource",
    "TraceChunk",
    "TraceSource",
    "as_trace_source",
    "generate_trace",
    "BusTrace",
    "concatenate_traces",
    "pack_values",
    "unpack_values",
]
