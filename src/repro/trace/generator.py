"""Convenience API for generating benchmark traces.

These helpers tie the profile registry and the synthetic generator together
and are what the experiment drivers and examples call.  Each materialising
helper (``generate_*``) has a streaming twin (``*_source``) that describes
the same workload as a :class:`~repro.trace.stream.TraceSource` without
holding it in memory -- the two are bit-identical for the same parameters.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.trace.benchmarks import TABLE1_ORDER, get_profile
from repro.trace.stream import ConcatenatedTraceSource, SyntheticTraceSource
from repro.trace.synthetic import generate_trace
from repro.trace.trace import BusTrace, concatenate_traces
from repro.utils.rng import SeedLike, spawn_rngs

#: The paper's per-benchmark trace length (10 M cycles).  The streaming
#: pipeline makes this the default for the Table 1 / Fig. 8 drivers: memory
#: stays O(chunk) regardless of trace length.
PAPER_CYCLES_PER_BENCHMARK = 10_000_000

#: Default per-benchmark trace length for the *materialising* helpers below
#: and the quick interactive experiments.  300 k keeps a full in-memory
#: Table 1 run interactive while leaving the 10 000-cycle control loop enough
#: windows to reach steady state after the initial descent from the nominal
#: supply.  Every driver accepts an override, and the streaming drivers
#: default to :data:`PAPER_CYCLES_PER_BENCHMARK` instead.
DEFAULT_CYCLES_PER_BENCHMARK = 300_000


def generate_benchmark_trace(
    name: str,
    n_cycles: int = DEFAULT_CYCLES_PER_BENCHMARK,
    *,
    n_bits: int = 32,
    seed: SeedLike = 2005,
) -> BusTrace:
    """Generate the synthetic trace of a single named benchmark."""
    profile = get_profile(name)
    return generate_trace(profile, n_cycles, n_bits=n_bits, seed=seed)


def benchmark_trace_source(
    name: str,
    n_cycles: int = PAPER_CYCLES_PER_BENCHMARK,
    *,
    n_bits: int = 32,
    seed: SeedLike = 2005,
) -> SyntheticTraceSource:
    """Streaming twin of :func:`generate_benchmark_trace` (bit-identical)."""
    return SyntheticTraceSource(get_profile(name), n_cycles, n_bits=n_bits, seed=seed)


def generate_suite(
    names: Sequence[str] | None = None,
    n_cycles: int = DEFAULT_CYCLES_PER_BENCHMARK,
    *,
    n_bits: int = 32,
    seed: int = 2005,
) -> dict[str, BusTrace]:
    """Generate traces for a set of benchmarks with independent random streams.

    Each benchmark gets its own RNG stream derived from the master seed, so
    regenerating a subset of the suite yields bit-identical traces.
    """
    if names is None:
        names = TABLE1_ORDER
    rngs = spawn_rngs(seed, len(names))
    return {
        name: generate_trace(get_profile(name), n_cycles, n_bits=n_bits, seed=rng)
        for name, rng in zip(names, rngs)
    }


def suite_sources(
    names: Sequence[str] | None = None,
    n_cycles: int = PAPER_CYCLES_PER_BENCHMARK,
    *,
    n_bits: int = 32,
    seed: int = 2005,
) -> dict[str, SyntheticTraceSource]:
    """Streaming twin of :func:`generate_suite`.

    Per-benchmark seed derivation matches :func:`generate_suite` exactly, so
    ``suite_sources(...)[name].materialize()`` equals
    ``generate_suite(...)[name]`` bit for bit.
    """
    if names is None:
        names = TABLE1_ORDER
    rngs = spawn_rngs(seed, len(names))
    return {
        name: SyntheticTraceSource(get_profile(name), n_cycles, n_bits=n_bits, seed=rng)
        for name, rng in zip(names, rngs)
    }


def generate_concatenated_suite(
    names: Sequence[str] | None = None,
    n_cycles: int = DEFAULT_CYCLES_PER_BENCHMARK,
    *,
    n_bits: int = 32,
    seed: int = 2005,
) -> BusTrace:
    """The Fig. 8 workload: all benchmarks run back-to-back as one long trace."""
    suite = generate_suite(names, n_cycles, n_bits=n_bits, seed=seed)
    return concatenate_traces(suite.values(), name="spec2000-suite")


def concatenated_suite_source(
    names: Sequence[str] | None = None,
    n_cycles: int = PAPER_CYCLES_PER_BENCHMARK,
    *,
    n_bits: int = 32,
    seed: int = 2005,
) -> ConcatenatedTraceSource:
    """Streaming twin of :func:`generate_concatenated_suite` (bit-identical)."""
    sources = suite_sources(names, n_cycles, n_bits=n_bits, seed=seed)
    return ConcatenatedTraceSource(list(sources.values()), name="spec2000-suite")
