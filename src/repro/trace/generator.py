"""Convenience API for generating benchmark traces.

These helpers tie the profile registry and the synthetic generator together
and are what the experiment drivers and examples call.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.trace.benchmarks import TABLE1_ORDER, get_profile
from repro.trace.synthetic import generate_trace
from repro.trace.trace import BusTrace, concatenate_traces
from repro.utils.rng import SeedLike, spawn_rngs

#: Default per-benchmark trace length used by the experiment drivers.  The
#: paper uses 10 M cycles per benchmark; 300 k keeps the full Table 1 run
#: interactive while leaving the 10 000-cycle control loop enough windows to
#: reach steady state after the initial descent from the nominal supply.
#: Every driver accepts an override.
DEFAULT_CYCLES_PER_BENCHMARK = 300_000


def generate_benchmark_trace(
    name: str,
    n_cycles: int = DEFAULT_CYCLES_PER_BENCHMARK,
    *,
    n_bits: int = 32,
    seed: SeedLike = 2005,
) -> BusTrace:
    """Generate the synthetic trace of a single named benchmark."""
    profile = get_profile(name)
    return generate_trace(profile, n_cycles, n_bits=n_bits, seed=seed)


def generate_suite(
    names: Optional[Sequence[str]] = None,
    n_cycles: int = DEFAULT_CYCLES_PER_BENCHMARK,
    *,
    n_bits: int = 32,
    seed: int = 2005,
) -> Dict[str, BusTrace]:
    """Generate traces for a set of benchmarks with independent random streams.

    Each benchmark gets its own RNG stream derived from the master seed, so
    regenerating a subset of the suite yields bit-identical traces.
    """
    if names is None:
        names = TABLE1_ORDER
    rngs = spawn_rngs(seed, len(names))
    return {
        name: generate_trace(get_profile(name), n_cycles, n_bits=n_bits, seed=rng)
        for name, rng in zip(names, rngs)
    }


def generate_concatenated_suite(
    names: Optional[Sequence[str]] = None,
    n_cycles: int = DEFAULT_CYCLES_PER_BENCHMARK,
    *,
    n_bits: int = 32,
    seed: int = 2005,
) -> BusTrace:
    """The Fig. 8 workload: all benchmarks run back-to-back as one long trace."""
    suite = generate_suite(names, n_cycles, n_bits=n_bits, seed=seed)
    return concatenate_traces(suite.values(), name="spec2000-suite")
