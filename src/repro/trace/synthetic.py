"""Synthetic memory-read-bus trace generator.

Generates phase-structured streams of 32-bit bus words according to a
:class:`~repro.trace.benchmarks.BenchmarkProfile`.  Five word kinds are
supported; their switching statistics span the range from "almost no
switching" (held words) to "worst-case coupling patterns nearly every cycle"
(uniform random words):

``hold``
    Repeat the previous bus word.
``small_int``
    A bounded random walk over small non-negative integers: only the
    low-order bits toggle, and mostly one or two at a time.
``pointer``
    A few interleaved striding address streams with a fixed upper half:
    counting patterns in the middle bits, benign coupling behaviour.
``float_like``
    IEEE-754 single-precision-like payloads: quiet sign/exponent bits over a
    narrow exponent range, uniformly random mantissa bits.
``random``
    Uniform 32-bit words: maximum entropy, frequent worst-case patterns.

Block structure
---------------
Words are generated in fixed-size *blocks* of :data:`GENERATION_BLOCK_WORDS`
words.  Every block gets its own :class:`numpy.random.SeedSequence` child,
derived statelessly from the trace seed and the block index, and the only
state carried between blocks is the last emitted word (so leading ``hold``
runs have something to repeat).  Two properties follow:

* **Constant memory** -- a block is generated, consumed and dropped; a
  10 M-cycle trace never exists as a whole unless the caller materialises it.
* **Chunk-size invariance** -- the streaming source
  (:class:`repro.trace.stream.SyntheticTraceSource`) re-slices the same fixed
  blocks into whatever chunk size the consumer requests, so streamed output
  is bit-identical to the monolithic :func:`generate_trace` for *any* chunk
  size.

Everything inside a block is vectorised, so multi-million-cycle traces still
generate in well under a second.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.trace.benchmarks import BenchmarkProfile
from repro.trace.trace import BusTrace, words_to_bits
from repro.utils.rng import SeedLike, derive_seed_sequence, rng_seed_sequence

#: Canonical kind indices used internally by the generator.
KIND_HOLD, KIND_SMALL_INT, KIND_POINTER, KIND_FLOAT, KIND_RANDOM = range(5)

_WORD_MASK = np.uint64(0xFFFFFFFF)

#: Words generated per block.  This is a *generation* granularity, not the
#: streaming chunk size: changing it changes the trace content, so it is a
#: fixed constant of the format, chosen so a block's working set (a few MB)
#: stays cache-friendly while per-block bookkeeping is negligible.
GENERATION_BLOCK_WORDS = 65_536


def _small_int_stream(n_words: int, rng: np.random.Generator) -> np.ndarray:
    """Bounded random walk over small integers (low-byte activity).

    Steps are small (mostly -3..+3) so consecutive values differ in only a
    couple of low-order bits, mimicking loop counters, flags and small field
    loads.
    """
    steps = rng.integers(-3, 4, size=n_words, dtype=np.int64)
    walk = np.cumsum(steps)
    walk -= walk.min()
    span = max(int(walk.max()), 1)
    scale = min(1.0, 1000.0 / span)
    values = (walk * scale).astype(np.uint64)
    return values & _WORD_MASK


def _pointer_stream(
    n_words: int, rng: np.random.Generator, stickiness: float = 0.92
) -> np.ndarray:
    """Striding address streams with a stable upper half.

    Consecutive pointer loads usually come from the same array or structure
    (spatial locality), so the generator stays on the current stream with
    probability ``stickiness`` and only occasionally hops to another stream
    (which produces a large, random-looking transition, as a real pointer
    chase would).
    """
    n_streams = 4
    bases = rng.integers(0x1000_0000, 0x7FFF_0000, size=n_streams, dtype=np.uint64) & ~np.uint64(
        0xFFFF
    )
    strides = rng.choice([4, 8, 16, 32], size=n_streams).astype(np.uint64)
    # Sticky stream selection: a run continues until a "hop" event.
    hops = rng.random(n_words) > stickiness
    hops[0] = True
    hop_targets = rng.integers(0, n_streams, size=n_words)
    run_index = np.cumsum(hops) - 1
    stream_ids = hop_targets[np.nonzero(hops)[0]][run_index]
    progress = np.zeros(n_words, dtype=np.uint64)
    for stream in range(n_streams):
        mask = stream_ids == stream
        progress[mask] = np.arange(np.count_nonzero(mask), dtype=np.uint64)
    values = bases[stream_ids] + strides[stream_ids] * progress
    return values & _WORD_MASK


def _float_stream(n_words: int, rng: np.random.Generator) -> np.ndarray:
    """IEEE-754 single-precision-like payloads with a narrow exponent range."""
    signs = rng.integers(0, 2, size=n_words, dtype=np.uint64) << np.uint64(31)
    exponents = (np.uint64(118) + rng.integers(0, 18, size=n_words, dtype=np.uint64)) << np.uint64(
        23
    )
    mantissas = rng.integers(0, 1 << 23, size=n_words, dtype=np.uint64)
    return (signs | exponents | mantissas) & _WORD_MASK


def _random_stream(n_words: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform high-entropy 32-bit words."""
    return rng.integers(0, 1 << 32, size=n_words, dtype=np.uint64) & _WORD_MASK


def _phase_indices(
    profile: BenchmarkProfile, n_words: int, rng: np.random.Generator
) -> np.ndarray:
    """Assign each word of a block to an execution phase, in contiguous runs."""
    block_length = max(1, int(round(profile.phase_block_fraction * n_words)))
    n_blocks = int(np.ceil(n_words / block_length))
    weights = np.asarray(profile.phase_weights)
    block_phases = rng.choice(len(profile.phases), size=n_blocks, p=weights)
    return np.repeat(block_phases, block_length)[:n_words]


def _kind_labels(
    profile: BenchmarkProfile, phase_indices: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw a word kind for every cycle according to its phase's mixture.

    Kinds are drawn per *run* rather than per cycle: consecutive memory reads
    tend to touch the same kind of data (the same array, the same structure),
    so the generator draws geometric-length runs of a single kind.  This
    temporal clustering matters: back-to-back words of different kinds
    produce essentially random relative transitions, so an i.i.d. per-cycle
    draw would grossly overestimate how often the bus sees near-worst-case
    coupling patterns.
    """
    n_words = len(phase_indices)
    mean_run = max(profile.kind_run_length, 1.0)
    # Run boundaries arrive as a Bernoulli process with rate 1/mean_run.
    boundaries = rng.random(n_words) < (1.0 / mean_run)
    boundaries[0] = True
    run_index = np.cumsum(boundaries) - 1
    run_starts = np.nonzero(boundaries)[0]

    uniforms = rng.random(len(run_starts))
    run_labels = np.empty(len(run_starts), dtype=np.int8)
    run_phases = phase_indices[run_starts]
    for phase_index, phase in enumerate(profile.phases):
        mask = run_phases == phase_index
        if not np.any(mask):
            continue
        cumulative = np.cumsum(phase.mix.as_tuple())
        run_labels[mask] = np.searchsorted(cumulative, uniforms[mask], side="right")
    labels = run_labels[run_index]
    return np.clip(labels, 0, 4)


# --------------------------------------------------------------------------- #
# Deterministic per-block seeding
# --------------------------------------------------------------------------- #
def trace_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """The root :class:`~numpy.random.SeedSequence` of a trace seed.

    Accepts the same ``SeedLike`` values as :func:`repro.utils.rng.make_rng`;
    a :class:`numpy.random.Generator` contributes the seed sequence it was
    built from (so generators handed out by
    :func:`repro.utils.rng.spawn_rngs` keep their independent streams).
    Alias of :func:`repro.utils.rng.rng_seed_sequence`, kept under the
    historical name.
    """
    return rng_seed_sequence(seed)


def block_rng(root: np.random.SeedSequence, block_index: int) -> np.random.Generator:
    """The RNG of one generation block, derived statelessly from the root.

    Equivalent to ``root.spawn(...)[block_index]`` but without mutating the
    root, so any block can be (re)generated in any order -- the property the
    streaming source relies on to re-slice blocks into arbitrary chunks.
    """
    return np.random.default_rng(derive_seed_sequence(root, (block_index,)))


def generate_word_block(
    profile: BenchmarkProfile,
    n_words: int,
    rng: np.random.Generator,
    carry_word: int | None,
) -> np.ndarray:
    """Generate one block of bus words.

    ``carry_word`` is the last word of the previous block (``None`` for the
    first block of a trace); a leading run of ``hold`` words repeats it.
    """
    phase_indices = _phase_indices(profile, n_words, rng)
    kinds = _kind_labels(profile, phase_indices, rng)
    if carry_word is None and kinds[0] == KIND_HOLD:
        # The first word of the trace must carry a real value so holds have
        # something to repeat.
        kinds[0] = KIND_SMALL_INT

    candidates = np.zeros(n_words, dtype=np.uint64)
    generators = {
        KIND_SMALL_INT: _small_int_stream,
        KIND_POINTER: _pointer_stream,
        KIND_FLOAT: _float_stream,
        KIND_RANDOM: _random_stream,
    }
    for kind, generator in generators.items():
        mask = kinds == kind
        count = int(np.count_nonzero(mask))
        if count:
            candidates[mask] = generator(count, rng)

    # Forward-fill held words with the most recent non-held value; a leading
    # hold run (only possible mid-trace) repeats the carried boundary word.
    source_index = np.where(kinds != KIND_HOLD, np.arange(n_words), -1)
    source_index = np.maximum.accumulate(source_index)
    if carry_word is not None:
        leading = source_index < 0
        source_index = np.where(leading, 0, source_index)
        words = candidates[source_index]
        words[leading] = np.uint64(carry_word)
    else:
        words = candidates[np.maximum(source_index, 0)]
    return words


def iter_word_blocks(
    profile: BenchmarkProfile,
    n_cycles: int,
    *,
    n_bits: int = 32,
    seed: SeedLike = None,
    first_block: int = 0,
    carry_word: int | None = None,
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(block_index, words)`` for a trace's generation blocks.

    The full trace is the concatenation of all blocks starting from
    ``first_block = 0``; resuming from a later block requires the carried
    last word of the preceding block.  Validation mirrors
    :func:`generate_trace`.
    """
    if n_cycles <= 0:
        raise ValueError(f"n_cycles must be positive, got {n_cycles}")
    if n_bits <= 0 or n_bits > 64:
        raise ValueError(f"n_bits must be in 1..64, got {n_bits}")
    root = trace_seed_sequence(seed)
    n_words = n_cycles + 1
    mask = (np.uint64(1) << np.uint64(n_bits)) - np.uint64(1) if n_bits < 64 else ~np.uint64(0)
    n_blocks = (n_words + GENERATION_BLOCK_WORDS - 1) // GENERATION_BLOCK_WORDS
    for index in range(first_block, n_blocks):
        start = index * GENERATION_BLOCK_WORDS
        count = min(GENERATION_BLOCK_WORDS, n_words - start)
        words = generate_word_block(profile, count, block_rng(root, index), carry_word)
        words &= mask
        carry_word = int(words[-1])
        yield index, words


def generate_trace(
    profile: BenchmarkProfile,
    n_cycles: int,
    *,
    n_bits: int = 32,
    seed: SeedLike = None,
) -> BusTrace:
    """Generate a synthetic bus trace for a benchmark profile (materialised).

    This is the monolithic convenience wrapper around the block generator;
    :class:`repro.trace.stream.SyntheticTraceSource` streams the *same*
    blocks chunk by chunk, bit-identically, in constant memory.

    Parameters
    ----------
    profile:
        Workload profile describing the word-kind mixture per phase.
    n_cycles:
        Number of bus transitions to simulate (the trace holds one extra word
        for the initial state).
    n_bits:
        Bus width; the paper's bus is 32 bits.
    seed:
        Seed or generator for reproducibility.
    """
    blocks = [words for _, words in iter_word_blocks(profile, n_cycles, n_bits=n_bits, seed=seed)]
    words = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
    return BusTrace(values=words_to_bits(words, n_bits), name=profile.name)
