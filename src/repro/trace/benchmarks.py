"""SPEC2000-like benchmark profiles for the synthetic trace generator.

The paper drives the bus with memory-read data traces of ten SPEC2000
benchmarks captured with SimpleScalar.  Those traces are not redistributable
and re-running SimpleScalar is outside the scope of a Python reproduction, so
each benchmark is replaced by a *profile*: a phase-structured mixture of word
kinds (held values, small integers, pointer-like addresses, floating-point
payloads, and high-entropy words) whose switching statistics determine how
often the bus sees near-worst-case coupling patterns.

What matters for every experiment in the paper is the probability, per cycle,
that *some* wire experiences a high effective coupling factor: that is what
limits how far the supply can be scaled at a given error-rate target.  The
profiles below are calibrated so that the qualitative split reported in
Table 1 is preserved:

* integer-dominated programs (``crafty``, ``mcf``, ``mesa``, ``gap``) carry
  mostly held/low-entropy words and can scale several 20 mV steps below the
  zero-error voltage before hitting the 2 % error budget, and
* floating-point streaming programs (``mgrid``, ``swim``, ``applu``,
  ``wupwise``) carry mostly high-entropy mantissa bits, see worst-case
  patterns nearly every cycle, and gain almost nothing beyond the PVT slack,
* ``vortex`` and ``vpr`` sit in between.

The absolute per-benchmark numbers are not expected to match the paper; the
ordering and ranges are (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class WordMix:
    """Mixture weights over the synthetic word kinds (must sum to 1).

    Attributes
    ----------
    hold:
        Repeat the previous bus word (no switching at all).
    small_int:
        Small integers following a bounded random walk: activity confined to
        the low-order byte or two.
    pointer:
        Pointer/address-like words: a handful of striding streams with a
        mostly constant upper half.
    float_like:
        IEEE-754-like payloads: quiet sign/exponent field, high-entropy
        mantissa bits.
    random:
        Uniform high-entropy 32-bit words (worst case for coupling patterns).
    """

    hold: float
    small_int: float
    pointer: float
    float_like: float
    random: float

    def __post_init__(self) -> None:
        for name in ("hold", "small_int", "pointer", "float_like", "random"):
            check_fraction(name, getattr(self, name))
        total = self.hold + self.small_int + self.pointer + self.float_like + self.random
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mixture weights must sum to 1, got {total}")

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        """Weights in the canonical kind order used by the generator."""
        return (self.hold, self.small_int, self.pointer, self.float_like, self.random)


@dataclass(frozen=True)
class ProgramPhase:
    """One execution phase of a program: a word mixture and its time share."""

    mix: WordMix
    weight: float

    def __post_init__(self) -> None:
        check_positive("weight", self.weight)


@dataclass(frozen=True)
class BenchmarkProfile:
    """A named synthetic workload profile.

    Attributes
    ----------
    name:
        Benchmark name (matching the paper's Table 1 labels).
    description:
        Short description of the behaviour being mimicked.
    phases:
        Execution phases; the generator alternates between them in blocks.
    phase_block_fraction:
        Length of one phase block as a fraction of the generated trace.
        Smaller values produce faster phase changes (more visible structure
        in the Fig. 8 style time series).
    kind_run_length:
        Mean length (in cycles) of a run of same-kind words.  Longer runs
        mean more spatial locality in the read stream and fewer of the
        random-looking cross-kind transitions that cause worst-case coupling
        patterns; integer codes with good locality use larger values than
        streaming floating-point codes.
    """

    name: str
    description: str
    phases: tuple[ProgramPhase, ...]
    phase_block_fraction: float = 0.05
    kind_run_length: float = 6.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a profile needs at least one phase")
        check_fraction("phase_block_fraction", self.phase_block_fraction)
        if self.phase_block_fraction <= 0.0:
            raise ValueError("phase_block_fraction must be > 0")
        check_positive("kind_run_length", self.kind_run_length)

    @property
    def phase_weights(self) -> tuple[float, ...]:
        """Normalised time share of each phase."""
        total = sum(phase.weight for phase in self.phases)
        return tuple(phase.weight / total for phase in self.phases)


def _single_phase(mix: WordMix) -> tuple[ProgramPhase, ...]:
    return (ProgramPhase(mix=mix, weight=1.0),)


#: Profiles for the ten benchmarks of Table 1, in the paper's numerical order.
SPEC2000_PROFILES: dict[str, BenchmarkProfile] = {
    "crafty": BenchmarkProfile(
        name="crafty",
        description="Chess engine: integer/bitboard heavy, highly repetitive reads",
        phases=(
            ProgramPhase(WordMix(hold=0.48, small_int=0.30, pointer=0.20, float_like=0.0, random=0.02), 0.7),
            ProgramPhase(WordMix(hold=0.39, small_int=0.34, pointer=0.24, float_like=0.0, random=0.03), 0.3),
        ),
        kind_run_length=12.0,
    ),
    "vortex": BenchmarkProfile(
        name="vortex",
        description="Object-oriented database: pointer chasing with bursts of record data",
        phases=(
            ProgramPhase(WordMix(hold=0.30, small_int=0.20, pointer=0.28, float_like=0.0, random=0.22), 0.6),
            ProgramPhase(WordMix(hold=0.24, small_int=0.18, pointer=0.26, float_like=0.0, random=0.32), 0.4),
        ),
        kind_run_length=5.0,
    ),
    "mgrid": BenchmarkProfile(
        name="mgrid",
        description="Multi-grid solver: streaming double-precision data, high-entropy mantissas",
        phases=_single_phase(
            WordMix(hold=0.18, small_int=0.04, pointer=0.08, float_like=0.46, random=0.24)
        ),
        kind_run_length=2.5,
    ),
    "swim": BenchmarkProfile(
        name="swim",
        description="Shallow-water model: streaming FP arrays, little reuse",
        phases=_single_phase(
            WordMix(hold=0.20, small_int=0.04, pointer=0.08, float_like=0.44, random=0.24)
        ),
        kind_run_length=2.5,
    ),
    "mcf": BenchmarkProfile(
        name="mcf",
        description="Combinatorial optimisation: sparse pointer-heavy integer code",
        phases=(
            ProgramPhase(WordMix(hold=0.46, small_int=0.28, pointer=0.24, float_like=0.0, random=0.02), 0.8),
            ProgramPhase(WordMix(hold=0.41, small_int=0.28, pointer=0.28, float_like=0.0, random=0.03), 0.2),
        ),
        kind_run_length=12.0,
    ),
    "mesa": BenchmarkProfile(
        name="mesa",
        description="3-D graphics library: integer pixel/vertex data with repeated values",
        phases=(
            ProgramPhase(WordMix(hold=0.49, small_int=0.28, pointer=0.18, float_like=0.03, random=0.02), 0.7),
            ProgramPhase(WordMix(hold=0.42, small_int=0.30, pointer=0.22, float_like=0.04, random=0.02), 0.3),
        ),
        kind_run_length=12.0,
    ),
    "vpr": BenchmarkProfile(
        name="vpr",
        description="FPGA place & route: mixed integer work with bursts of float cost data",
        phases=(
            ProgramPhase(WordMix(hold=0.30, small_int=0.24, pointer=0.24, float_like=0.06, random=0.16), 0.6),
            ProgramPhase(WordMix(hold=0.22, small_int=0.20, pointer=0.22, float_like=0.10, random=0.26), 0.4),
        ),
        kind_run_length=5.0,
    ),
    "applu": BenchmarkProfile(
        name="applu",
        description="Parabolic/elliptic PDE solver: FP streaming with some index traffic",
        phases=(
            ProgramPhase(WordMix(hold=0.22, small_int=0.08, pointer=0.10, float_like=0.38, random=0.22), 0.8),
            ProgramPhase(WordMix(hold=0.28, small_int=0.14, pointer=0.12, float_like=0.26, random=0.20), 0.2),
        ),
        kind_run_length=3.0,
    ),
    "gap": BenchmarkProfile(
        name="gap",
        description="Group theory interpreter: small-integer arithmetic and pointer tables",
        phases=(
            ProgramPhase(WordMix(hold=0.45, small_int=0.32, pointer=0.20, float_like=0.0, random=0.03), 0.7),
            ProgramPhase(WordMix(hold=0.38, small_int=0.32, pointer=0.24, float_like=0.0, random=0.06), 0.3),
        ),
        kind_run_length=10.0,
    ),
    "wupwise": BenchmarkProfile(
        name="wupwise",
        description="Lattice QCD: dense complex FP arithmetic, high-entropy operands",
        phases=_single_phase(
            WordMix(hold=0.20, small_int=0.05, pointer=0.09, float_like=0.42, random=0.24)
        ),
        kind_run_length=2.5,
    ),
}

#: The paper's Table 1 ordering of the benchmarks (1-indexed in the paper).
TABLE1_ORDER: tuple[str, ...] = (
    "crafty",
    "vortex",
    "mgrid",
    "swim",
    "mcf",
    "mesa",
    "vpr",
    "applu",
    "gap",
    "wupwise",
)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name (case-insensitive)."""
    key = name.lower()
    if key not in SPEC2000_PROFILES:
        known = ", ".join(sorted(SPEC2000_PROFILES))
        raise KeyError(f"unknown benchmark {name!r}; known benchmarks: {known}")
    return SPEC2000_PROFILES[key]
