"""Representative-window selection (SimPoint analog).

The paper uses the SimPoint toolset to pick 10-million-instruction windows
that are representative of whole SPEC2000 runs.  This module provides the
same capability for bus traces: it splits a long trace into fixed-length
windows, summarises each window by an activity signature (per-bit toggle
rates plus an adjacent-opposite-toggle rate, the bus-level analog of a basic
block vector), clusters the signatures with k-means, and returns one
representative window per cluster together with its weight (the fraction of
execution time its cluster covers).

Downstream consumers can either simulate only the representative windows and
combine results with the weights, or use the selection simply to verify that
a shortened trace covers all the program's phases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.trace import BusTrace
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class SimPointSelection:
    """Result of representative-window selection.

    Attributes
    ----------
    window_length:
        Number of cycles per window.
    representative_windows:
        Index of the chosen window for each cluster.
    weights:
        Fraction of all windows belonging to each cluster (sums to 1).
    labels:
        Cluster label of every window.  Labels always index
        ``representative_windows`` / ``weights`` -- clusters that end up
        empty during clustering are dropped and the labels remapped onto
        the survivors.
    """

    window_length: int
    representative_windows: tuple[int, ...]
    weights: tuple[float, ...]
    labels: np.ndarray

    @property
    def n_clusters(self) -> int:
        """Number of clusters / representative windows."""
        return len(self.representative_windows)

    def extract(self, trace: BusTrace) -> list[BusTrace]:
        """The representative windows as sub-traces, in cluster order."""
        return [
            trace.window(index * self.window_length, self.window_length, name=f"{trace.name}.sp{i}")
            for i, index in enumerate(self.representative_windows)
        ]

    def weighted_estimate(self, per_window_values: np.ndarray) -> float:
        """Weighted combination of a metric measured on the representative windows."""
        values = np.asarray(per_window_values, dtype=float)
        if values.shape != (self.n_clusters,):
            raise ValueError(
                f"expected {self.n_clusters} per-window values, got shape {values.shape}"
            )
        return float(np.dot(values, np.asarray(self.weights)))


def transition_signatures(per_window: np.ndarray) -> np.ndarray:
    """Signatures of windows given as a ``(n_windows, length, n_bits)`` array
    of signed transitions (``diff`` of the 0/1 words).

    The signature of a window is the per-bit toggle rate (``n_bits`` features)
    concatenated with the rate of adjacent bit pairs toggling in opposite
    directions (one feature), which correlates with worst-case coupling
    events.  This is the single signature definition; callers that stream a
    long trace window by window (:class:`repro.trace.workloads.
    SimPointTraceSource`) feed it one window at a time.
    """
    toggle_rates = np.mean(per_window != 0, axis=1)
    opposite = per_window[:, :, :-1] * per_window[:, :, 1:] < 0
    opposite_rate = np.mean(np.any(opposite, axis=2), axis=1, keepdims=True)
    return np.concatenate([toggle_rates, opposite_rate], axis=1)


def window_signatures(trace: BusTrace, window_length: int) -> np.ndarray:
    """Activity signature of every complete window of the trace.

    See :func:`transition_signatures` for the signature definition.
    """
    if window_length <= 0:
        raise ValueError(f"window_length must be positive, got {window_length}")
    n_windows = trace.n_cycles // window_length
    if n_windows == 0:
        raise ValueError(
            f"trace has {trace.n_cycles} cycles, shorter than one window ({window_length})"
        )
    transitions = np.diff(trace.values.astype(np.int8), axis=0)
    usable = transitions[: n_windows * window_length]
    per_window = usable.reshape(n_windows, window_length, trace.n_bits)
    return transition_signatures(per_window)


def _kmeans(
    signatures: np.ndarray, n_clusters: int, rng: np.random.Generator, n_iterations: int = 50
) -> tuple[np.ndarray, np.ndarray]:
    """Plain k-means (numpy implementation, k-means++ style seeding)."""
    n_points = signatures.shape[0]
    centroids = signatures[rng.choice(n_points, size=1)]
    while centroids.shape[0] < n_clusters:
        distances = np.min(
            np.linalg.norm(signatures[:, None, :] - centroids[None, :, :], axis=2) ** 2, axis=1
        )
        total = distances.sum()
        if total <= 0:
            # All remaining points coincide with existing centroids.
            extra = signatures[rng.choice(n_points, size=n_clusters - centroids.shape[0])]
            centroids = np.concatenate([centroids, extra], axis=0)
            break
        probabilities = distances / total
        next_index = rng.choice(n_points, p=probabilities)
        centroids = np.concatenate([centroids, signatures[next_index : next_index + 1]], axis=0)

    labels = np.zeros(n_points, dtype=int)
    for iteration in range(n_iterations):
        distances = np.linalg.norm(signatures[:, None, :] - centroids[None, :, :], axis=2)
        new_labels = np.argmin(distances, axis=1)
        if iteration > 0 and np.array_equal(new_labels, labels):
            break
        labels = new_labels
        occupied = np.unique(labels)
        if occupied.size < centroids.shape[0]:
            # A cluster emptied mid-iteration (possible when the k-means++
            # seeding placed duplicate centroids on coinciding signatures).
            # Keeping its stale centroid around would let it re-capture
            # points later, so drop it and remap the labels onto the
            # survivors -- every returned label always indexes a live
            # centroid.
            lookup = np.full(centroids.shape[0], -1, dtype=int)
            lookup[occupied] = np.arange(occupied.size)
            centroids = centroids[occupied]
            labels = lookup[labels]
        for cluster in range(centroids.shape[0]):
            centroids[cluster] = signatures[labels == cluster].mean(axis=0)
    return labels, centroids


def select_simpoints(
    trace: BusTrace,
    window_length: int,
    n_clusters: int = 4,
    seed: SeedLike = None,
) -> SimPointSelection:
    """Select representative windows of a trace by clustering activity signatures.

    Parameters
    ----------
    trace:
        The full trace to summarise.
    window_length:
        Window size in cycles (the paper's SimPoint windows are 10 M
        instructions; bus-level studies typically use 10k-1M cycles).
    n_clusters:
        Number of phases / representative windows to select.  It is clamped
        to the number of available windows.
    seed:
        Seed for the k-means initialisation.
    """
    return select_from_signatures(
        window_signatures(trace, window_length), window_length, n_clusters=n_clusters, seed=seed
    )


def select_from_signatures(
    signatures: np.ndarray,
    window_length: int,
    n_clusters: int = 4,
    seed: SeedLike = None,
) -> SimPointSelection:
    """Cluster pre-computed window signatures into a :class:`SimPointSelection`.

    The signature-computation and clustering halves of
    :func:`select_simpoints`, split so streaming consumers can compute
    signatures window by window (in O(window) memory) and cluster here.
    """
    rng = make_rng(seed)
    n_windows = signatures.shape[0]
    n_clusters = min(n_clusters, n_windows)

    labels, centroids = _kmeans(signatures, n_clusters, rng)

    representatives: list[int] = []
    weights: list[float] = []
    survivors: list[int] = []
    for cluster in range(centroids.shape[0]):
        member_indices = np.nonzero(labels == cluster)[0]
        if member_indices.size == 0:
            # _kmeans drops emptied clusters itself; this is a belt-and-braces
            # guard so labels can never outrun the representative list.
            continue
        survivors.append(cluster)
        member_signatures = signatures[member_indices]
        distances = np.linalg.norm(member_signatures - centroids[cluster], axis=1)
        representatives.append(int(member_indices[int(np.argmin(distances))]))
        weights.append(member_indices.size / n_windows)
    if len(survivors) < centroids.shape[0]:
        # Remap labels onto the surviving clusters so every label indexes
        # representative_windows / weights.
        lookup = np.full(centroids.shape[0], -1, dtype=int)
        lookup[survivors] = np.arange(len(survivors))
        labels = lookup[labels]

    return SimPointSelection(
        window_length=window_length,
        representative_windows=tuple(representatives),
        weights=tuple(weights),
        labels=labels,
    )
