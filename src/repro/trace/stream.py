"""Streaming trace pipeline: chunked, constant-memory access to bus traces.

The paper evaluates the closed-loop DVS bus on 10 M-cycle traces.  Holding a
whole trace (plus the per-cycle statistics every layer derives from it) in
memory costs hundreds of MB per benchmark, so the simulation core consumes
workloads through this module instead:

* a :class:`TraceSource` describes a trace of known length without holding
  it, and

* :meth:`TraceSource.chunks` iterates the trace as :class:`TraceChunk`\\ s --
  short :class:`~repro.trace.trace.BusTrace` segments whose first word is the
  last word of the previous chunk, so per-cycle transition computations are
  chunk-local and concatenating chunk results reproduces the monolithic
  computation *exactly*.

Chunk-size invariance is a hard guarantee: every source produces the same
words for any ``chunk_cycles``, and the equivalence tests assert
bit-identical downstream results for chunk sizes that straddle the
controller's 10 000-cycle measurement window.

Examples
--------
Stream a synthetic benchmark and check the invariants directly:

>>> import numpy as np
>>> from repro.trace.stream import SyntheticTraceSource
>>> source = SyntheticTraceSource("crafty", n_cycles=10_000, seed=7)
>>> chunks = list(source.chunks(chunk_cycles=4_096))
>>> [chunk.n_cycles for chunk in chunks]
[4096, 4096, 1808]
>>> sum(chunk.n_cycles for chunk in chunks) == source.n_cycles
True

Each chunk's first word is the previous chunk's last word (the boundary
word), and the streamed words are bit-identical to a monolithic
materialisation at any chunk size:

>>> bool(np.array_equal(chunks[1].values[0], chunks[0].values[-1]))
True
>>> streamed = np.concatenate([chunks[0].values] + [c.values[1:] for c in chunks[1:]])
>>> bool(np.array_equal(streamed, source.materialize().values))
True
"""

from __future__ import annotations

import abc
from collections.abc import Iterator, Sequence

import numpy as np

from repro.telemetry import get_telemetry
from repro.trace.benchmarks import BenchmarkProfile, get_profile
from repro.trace.synthetic import iter_word_blocks
from repro.trace.trace import BusTrace, words_to_bits, words_to_packed
from repro.utils.rng import SeedLike

__all__ = [
    "DEFAULT_CHUNK_CYCLES",
    "TraceChunk",
    "TraceSource",
    "InMemoryTraceSource",
    "SyntheticTraceSource",
    "CpuKernelTraceSource",
    "NpzTraceSource",
    "ConcatenatedTraceSource",
    "EncodedTraceSource",
    "as_trace_source",
]

#: Default streaming granularity.  Large enough that per-chunk numpy overhead
#: is negligible, small enough that the chunk's working set (the per-cycle
#: coupling-classification temporaries dominate at ~1.5 kB/cycle) stays
#: cache-friendly: measured on the paper bus, 25 k-cycle chunks run ~40 %
#: faster than 100 k-cycle chunks at a quarter of the peak memory.  Results
#: are bit-identical for any value.
DEFAULT_CHUNK_CYCLES = 25_000


class TraceChunk:
    """One chunk of a streamed trace.

    ``trace`` is a :class:`~repro.trace.trace.BusTrace` segment holding
    ``n_cycles + 1`` words: word 0 is the *boundary word* -- the last word of
    the previous chunk (or the trace's initial state for the first chunk) --
    so the chunk's transitions are exactly ``diff(trace.values)``.
    """

    __slots__ = ("trace", "start_cycle", "index", "total_cycles")

    def __init__(self, trace: BusTrace, start_cycle: int, index: int, total_cycles: int) -> None:
        self.trace = trace
        self.start_cycle = int(start_cycle)
        self.index = int(index)
        self.total_cycles = int(total_cycles)

    @property
    def values(self) -> np.ndarray:
        """The chunk's 0/1 word array (boundary word included)."""
        return self.trace.values

    @property
    def n_cycles(self) -> int:
        """Transitions covered by this chunk."""
        return self.trace.n_cycles

    @property
    def n_bits(self) -> int:
        """Bus width."""
        return self.trace.n_bits

    @property
    def end_cycle(self) -> int:
        """Global cycle index one past the chunk's last transition."""
        return self.start_cycle + self.n_cycles

    @property
    def is_first(self) -> bool:
        """Whether this is the first chunk of the stream."""
        return self.start_cycle == 0

    @property
    def is_last(self) -> bool:
        """Whether this is the final chunk of the stream."""
        return self.end_cycle == self.total_cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceChunk(index={self.index}, cycles=[{self.start_cycle}, "
            f"{self.end_cycle}) of {self.total_cycles})"
        )


class TraceSource(abc.ABC):
    """A bus trace of known length, readable chunk by chunk.

    Subclasses implement :meth:`_word_blocks`, yielding consecutive
    ``(n_words_i, n_bits)`` 0/1 arrays whose concatenation is the full word
    array (the first block starts with the trace's initial word).  Block
    sizes are an implementation detail; the base class re-slices them into
    the requested chunk size with the boundary word carried across chunks.
    """

    @property
    @abc.abstractmethod
    def n_cycles(self) -> int:
        """Total transitions of the trace."""

    @property
    @abc.abstractmethod
    def n_bits(self) -> int:
        """Bus width in bits."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Trace name carried into chunks and materialised traces."""

    @abc.abstractmethod
    def _word_blocks(self) -> Iterator[np.ndarray]:
        """Yield consecutive 0/1 word arrays covering the whole trace."""

    def _packed_blocks(self) -> Iterator[np.ndarray]:
        """Yield the same word blocks in the packed byte representation.

        The base implementation packs each unpacked block; sources that hold
        (or can generate) packed words directly override this so the packed
        streaming path never widens to 0/1 arrays at all.
        """
        from repro.trace.trace import pack_values

        for block in self._word_blocks():
            yield pack_values(block)

    # ------------------------------------------------------------------ #
    # Chunked iteration
    # ------------------------------------------------------------------ #
    def chunks(
        self, chunk_cycles: int | None = None, packed: bool = False
    ) -> Iterator[TraceChunk]:
        """Iterate the trace as boundary-carrying :class:`TraceChunk`\\ s.

        Every chunk covers ``chunk_cycles`` transitions except possibly the
        last.  The produced words are identical for any chunk size and either
        representation; ``packed=True`` yields packed-backed chunks (the
        vectorized engine's input, 8x less buffered data), ``packed=False``
        unpacked ones.
        """
        if chunk_cycles is None:
            chunk_cycles = DEFAULT_CHUNK_CYCLES
        if chunk_cycles <= 0:
            raise ValueError(f"chunk_cycles must be positive, got {chunk_cycles}")
        total = self.n_cycles
        blocks = self._packed_blocks() if packed else self._word_blocks()
        buffer: np.ndarray | None = None
        start_cycle = 0
        index = 0
        for block in blocks:
            buffer = block if buffer is None else np.concatenate([buffer, block], axis=0)
            while buffer.shape[0] - 1 >= chunk_cycles:
                yield self._make_chunk(
                    buffer[: chunk_cycles + 1], start_cycle, index, total, packed
                )
                # Keep the boundary word; copy so the big parent buffer is freed.
                buffer = buffer[chunk_cycles:].copy()
                start_cycle += chunk_cycles
                index += 1
        if buffer is not None and buffer.shape[0] > 1:
            yield self._make_chunk(buffer, start_cycle, index, total, packed)

    def _make_chunk(
        self,
        words: np.ndarray,
        start_cycle: int,
        index: int,
        total: int,
        packed: bool = False,
    ) -> TraceChunk:
        rows = np.ascontiguousarray(words)
        if packed:
            trace = BusTrace(packed=rows, n_bits=self.n_bits, name=self.name)
        else:
            trace = BusTrace(values=rows, name=self.name)
        chunk = TraceChunk(trace, start_cycle=start_cycle, index=index, total_cycles=total)
        telemetry = get_telemetry()
        if telemetry.enabled:
            # Every chunk of every source funnels through here, so these three
            # counters are the stream-throughput ground truth for profiling.
            telemetry.count("trace.chunks_streamed")
            telemetry.count("trace.cycles_streamed", chunk.n_cycles)
            telemetry.count("trace.bytes_streamed", int(rows.nbytes))
        return chunk

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def materialize(self, packed: bool = False) -> BusTrace:
        """The whole trace as one in-memory :class:`BusTrace`.

        Costs O(n) memory -- use only when a monolithic array is genuinely
        needed (tests, small traces, interop).  ``packed=True`` materialises
        straight into the bit-packed representation (8x smaller).
        """
        if packed:
            parts = [block for block in self._packed_blocks()]
            return BusTrace(
                packed=np.concatenate(parts, axis=0), n_bits=self.n_bits, name=self.name
            )
        blocks = list(self._word_blocks())
        values = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=0)
        return BusTrace(values=values, name=self.name)


class InMemoryTraceSource(TraceSource):
    """Stream an already-materialised :class:`BusTrace`.

    Packed traces are sliced packed and unpacked one chunk at a time, so the
    8x packed memory saving survives streaming.
    """

    def __init__(self, trace: BusTrace) -> None:
        self._trace = trace

    @property
    def n_cycles(self) -> int:
        return self._trace.n_cycles

    @property
    def n_bits(self) -> int:
        return self._trace.n_bits

    @property
    def name(self) -> str:
        return self._trace.name

    @property
    def trace(self) -> BusTrace:
        """The backing trace."""
        return self._trace

    def _word_blocks(self) -> Iterator[np.ndarray]:
        if not self._trace.is_packed:
            # Yield bounded views rather than the whole array: `chunks` keeps
            # a rolling buffer of roughly one block plus one chunk, so a
            # single whole-trace block would make its carry-over reslicing
            # quadratic in the trace length (and transiently double memory).
            values = self._trace.values
            step = DEFAULT_CHUNK_CYCLES
            for start in range(0, values.shape[0], step):
                yield values[start : start + step]
            return
        from repro.trace.trace import unpack_values

        packed = self._trace.packed_values
        n_words = packed.shape[0]
        step = DEFAULT_CHUNK_CYCLES
        for start in range(0, n_words, step):
            yield unpack_values(packed[start : start + step], self._trace.n_bits)

    def _packed_blocks(self) -> Iterator[np.ndarray]:
        from repro.trace.trace import pack_values

        step = DEFAULT_CHUNK_CYCLES
        if self._trace.is_packed:
            packed = self._trace.packed_values
            for start in range(0, packed.shape[0], step):
                yield packed[start : start + step]
            return
        values = self._trace.values
        for start in range(0, values.shape[0], step):
            yield pack_values(values[start : start + step])

    def materialize(self, packed: bool = False) -> BusTrace:
        """Return the backing trace (converting representation if asked)."""
        return self._trace.pack() if packed else self._trace.unpacked()


class SyntheticTraceSource(TraceSource):
    """Stream a synthetic benchmark trace, generated block by block.

    The generator's fixed-size blocks each carry their own deterministic
    per-block RNG (see :mod:`repro.trace.synthetic`), so iterating this
    source -- any number of times, at any chunk size -- produces words
    bit-identical to the monolithic
    :func:`~repro.trace.synthetic.generate_trace` with the same arguments.
    """

    def __init__(
        self,
        profile: BenchmarkProfile | str,
        n_cycles: int,
        *,
        n_bits: int = 32,
        seed: SeedLike = None,
    ) -> None:
        if isinstance(profile, str):
            profile = get_profile(profile)
        if n_cycles <= 0:
            raise ValueError(f"n_cycles must be positive, got {n_cycles}")
        if n_bits <= 0 or n_bits > 64:
            raise ValueError(f"n_bits must be in 1..64, got {n_bits}")
        self.profile = profile
        self._n_cycles = int(n_cycles)
        self._n_bits = int(n_bits)
        # Resolve the seed to a SeedSequence eagerly so repeated iteration of
        # the same source replays the same stream even for a None seed.
        from repro.trace.synthetic import trace_seed_sequence

        self._root = trace_seed_sequence(seed)

    @property
    def n_cycles(self) -> int:
        return self._n_cycles

    @property
    def n_bits(self) -> int:
        return self._n_bits

    @property
    def name(self) -> str:
        return self.profile.name

    def _word_blocks(self) -> Iterator[np.ndarray]:
        for _, words in iter_word_blocks(
            self.profile, self._n_cycles, n_bits=self._n_bits, seed=self._root
        ):
            yield words_to_bits(words, self._n_bits)

    def _packed_blocks(self) -> Iterator[np.ndarray]:
        # Integer words pack by reinterpretation (no 0/1 detour): this is what
        # lets the vectorized engine stream synthetic paper-scale traces with
        # no per-bit work outside the kernels themselves.
        for _, words in iter_word_blocks(
            self.profile, self._n_cycles, n_bits=self._n_bits, seed=self._root
        ):
            yield words_to_packed(words, self._n_bits)


class CpuKernelTraceSource(TraceSource):
    """Stream the memory-read-bus trace of a mini-CPU kernel, run by run.

    The kernel (:mod:`repro.cpu.kernels`) is executed repeatedly with fresh
    per-run data images until ``n_cycles`` bus transitions have been emitted;
    each run's word stream becomes one generation block, so memory stays
    O(one run) regardless of trace length.  Every run's RNG is derived
    *statelessly* from the source's root :class:`~numpy.random.SeedSequence`
    and the run index (:func:`repro.cpu.tracing.kernel_run_rng`), which gives
    the same guarantees the synthetic source has:

    * iterating the source any number of times, at any chunk size, in either
      representation, produces bit-identical words, and
    * ``materialize()`` equals
      :func:`repro.cpu.tracing.kernel_bus_trace` with the same arguments.

    ``bus_policy="misses_only"`` attaches a fresh default data cache per
    iteration pass (cache state is part of the stream, so a shared cache
    would break re-iteration).
    """

    def __init__(
        self,
        kernel,
        n_cycles: int,
        *,
        n_bits: int = 32,
        seed: SeedLike = None,
        bus_policy: str = "all_loads",
        max_instructions_per_run: int = 200_000,
    ) -> None:
        from repro.cpu.kernels import Kernel, get_kernel

        if isinstance(kernel, str):
            kernel = get_kernel(kernel)
        if not isinstance(kernel, Kernel):
            raise TypeError(f"kernel must be a name or Kernel, got {type(kernel).__name__}")
        if n_cycles <= 0:
            raise ValueError(f"n_cycles must be positive, got {n_cycles}")
        if n_bits <= 0 or n_bits > 64:
            raise ValueError(f"n_bits must be in 1..64, got {n_bits}")
        self.kernel = kernel
        self.bus_policy = bus_policy
        self._n_cycles = int(n_cycles)
        self._n_bits = int(n_bits)
        self._max_instructions = int(max_instructions_per_run)
        # Resolve the seed to a SeedSequence eagerly so repeated iteration of
        # the same source replays the same runs even for a None seed.
        from repro.utils.rng import rng_seed_sequence

        self._root = rng_seed_sequence(seed)

    @property
    def n_cycles(self) -> int:
        return self._n_cycles

    @property
    def n_bits(self) -> int:
        return self._n_bits

    @property
    def name(self) -> str:
        return self.kernel.name

    def _run_word_blocks(self) -> Iterator[np.ndarray]:
        """Yield one ``uint64`` word array per kernel run (truncated at the end)."""
        from repro.cpu.memory import DirectMappedCache
        from repro.cpu.tracing import execute_kernel_once, kernel_run_rng

        cache = DirectMappedCache() if self.bus_policy == "misses_only" else None
        mask = (
            (np.uint64(1) << np.uint64(self._n_bits)) - np.uint64(1)
            if self._n_bits < 64
            else ~np.uint64(0)
        )
        needed = self._n_cycles + 1
        emitted = 0
        run = 0
        while emitted < needed:
            result, _ = execute_kernel_once(
                self.kernel,
                kernel_run_rng(self._root, run),
                cache,
                self.bus_policy,
                self._max_instructions,
            )
            words = np.asarray(result.bus_words, dtype=np.uint64) & mask
            if emitted + words.shape[0] > needed:
                words = words[: needed - emitted]
            emitted += words.shape[0]
            run += 1
            yield words

    def _word_blocks(self) -> Iterator[np.ndarray]:
        for words in self._run_word_blocks():
            yield words_to_bits(words, self._n_bits)

    def _packed_blocks(self) -> Iterator[np.ndarray]:
        # Integer words pack by reinterpretation, so the vectorized engine
        # consumes kernel traces without ever widening to 0/1 arrays.
        for words in self._run_word_blocks():
            yield words_to_packed(words, self._n_bits)


class NpzTraceSource(TraceSource):
    """Stream a trace saved by :func:`repro.trace.io.save_trace_npz`.

    The archive is loaded once into the bit-packed representation (8x smaller
    than the 0/1 array; legacy word archives are packed on load) and unpacked
    one chunk at a time.
    """

    def __init__(self, path) -> None:
        from repro.trace.io import load_trace_npz

        self._trace = load_trace_npz(path, packed=True)

    @property
    def n_cycles(self) -> int:
        return self._trace.n_cycles

    @property
    def n_bits(self) -> int:
        return self._trace.n_bits

    @property
    def name(self) -> str:
        return self._trace.name

    def _word_blocks(self) -> Iterator[np.ndarray]:
        yield from InMemoryTraceSource(self._trace)._word_blocks()

    def _packed_blocks(self) -> Iterator[np.ndarray]:
        yield from InMemoryTraceSource(self._trace)._packed_blocks()


class ConcatenatedTraceSource(TraceSource):
    """Several sources run back to back as one long trace (the Fig. 8 suite).

    Matches :func:`~repro.trace.trace.concatenate_traces` exactly: the
    transition from one program's last word to the next program's first word
    is included, so the total cycle count is
    ``sum(n_cycles_i) + (n_sources - 1)``.
    """

    def __init__(self, sources: Sequence[TraceSource], name: str = "suite") -> None:
        sources = list(sources)
        if not sources:
            raise ValueError("need at least one source to concatenate")
        widths = {source.n_bits for source in sources}
        if len(widths) > 1:
            raise ValueError(f"cannot concatenate sources of different widths: {sorted(widths)}")
        self._sources = sources
        self._name = name

    @property
    def sources(self) -> list[TraceSource]:
        """The concatenated sources, in execution order."""
        return list(self._sources)

    @property
    def n_cycles(self) -> int:
        return sum(source.n_cycles for source in self._sources) + len(self._sources) - 1

    @property
    def n_bits(self) -> int:
        return self._sources[0].n_bits

    @property
    def name(self) -> str:
        return self._name

    def boundaries(self) -> list[int]:
        """Cumulative per-program cycle counts (for plot annotation).

        Junction transitions between programs are not counted, matching the
        long-standing Fig. 8 annotation convention: the last boundary is
        ``sum(n_cycles_i)`` while the streamed run itself covers
        ``n_cycles_i`` plus the ``n_sources - 1`` junctions.
        """
        ends: list[int] = []
        offset = 0
        for source in self._sources:
            offset += source.n_cycles
            ends.append(offset)
        return ends

    def _word_blocks(self) -> Iterator[np.ndarray]:
        for source in self._sources:
            yield from source._word_blocks()

    def _packed_blocks(self) -> Iterator[np.ndarray]:
        for source in self._sources:
            yield from source._packed_blocks()


class EncodedTraceSource(TraceSource):
    """A source passed through a bus encoder, chunk by chunk.

    Sequential encoders carry their stream state (cumulative parity for
    transition signalling, the previously driven word and invert lines for
    bus-invert) across chunks via
    :meth:`~repro.encoding.base.BusEncoder.encode_block`, so the streamed
    encoding is bit-identical to encoding the materialised trace at once.
    """

    def __init__(self, source: TraceSource, encoder) -> None:
        self._source = source
        self._encoder = encoder

    @property
    def n_cycles(self) -> int:
        return self._source.n_cycles

    @property
    def n_bits(self) -> int:
        return self._encoder.encoded_bits(self._source.n_bits)

    @property
    def name(self) -> str:
        return self._encoder.encoded_name(self._source.name)

    def _word_blocks(self) -> Iterator[np.ndarray]:
        state = None
        first = True
        for block in self._source._word_blocks():
            encoded, state = self._encoder.encode_block(block, state, first_word=first)
            first = False
            yield encoded


WorkloadLike = BusTrace | TraceSource


def as_trace_source(workload: WorkloadLike) -> TraceSource:
    """Coerce a workload to a :class:`TraceSource` (traces are wrapped)."""
    if isinstance(workload, TraceSource):
        return workload
    if isinstance(workload, BusTrace):
        return InMemoryTraceSource(workload)
    raise TypeError(f"cannot stream a workload of type {type(workload).__name__}")
