"""IPC impact of corrected bus timing errors under a pipeline model.

The paper translates its measured error rates into performance loss with the
pessimistic one-error-one-cycle rule; these helpers evaluate the same error
streams under any :class:`~repro.arch.pipeline.PipelineModel`, so the gap
between the paper's reported "performance degradation" and what a real core
would see can be quantified (the IPC ablation benchmark and the
``pipeline_impact`` example both build on this module).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.arch.pipeline import PipelineModel
from repro.utils.rng import SeedLike
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class IPCImpact:
    """Performance impact of an error stream under one pipeline model.

    Attributes
    ----------
    model_name:
        The pipeline model evaluated.
    n_cycles:
        Bus cycles simulated (equal to the number of load deliveries under
        the paper's one-instruction-per-cycle convention).
    n_errors:
        Corrected timing errors in the stream.
    exposed_penalty_cycles:
        Replay cycles that actually lengthened execution.
    baseline_ipc / effective_ipc:
        Commit rate without and with the exposed replay cycles.
    """

    model_name: str
    n_cycles: int
    n_errors: int
    exposed_penalty_cycles: int
    baseline_ipc: float
    effective_ipc: float

    @property
    def error_rate(self) -> float:
        """Errors per bus cycle (the paper's reported quantity)."""
        if self.n_cycles == 0:
            return 0.0
        return self.n_errors / self.n_cycles

    @property
    def ipc_loss_fraction(self) -> float:
        """Fractional IPC degradation relative to the error-free baseline."""
        return 1.0 - self.effective_ipc / self.baseline_ipc

    @property
    def hidden_fraction(self) -> float:
        """Fraction of replay cycles hidden behind existing stalls."""
        total = self.n_errors
        if total == 0:
            return 0.0
        return 1.0 - self.exposed_penalty_cycles / total

    @property
    def paper_assumption_loss(self) -> float:
        """The loss the paper's IPC-drops-by-the-error-rate rule would report."""
        if self.n_cycles == 0:
            return 0.0
        return self.n_errors / (self.n_cycles + self.n_errors)

    def as_dict(self) -> dict:
        """Stable JSON-able view of one pipeline model's impact."""
        return {
            "model": self.model_name,
            "n_cycles": int(self.n_cycles),
            "n_errors": int(self.n_errors),
            "error_rate_percent": round(self.error_rate * 100.0, 3),
            "ipc_loss_percent": round(self.ipc_loss_fraction * 100.0, 3),
            "replays_hidden_percent": round(self.hidden_fraction * 100.0, 2),
            "paper_assumption_loss_percent": round(self.paper_assumption_loss * 100.0, 3),
        }


def evaluate_ipc_impact(
    model: PipelineModel, error_mask: np.ndarray, seed: SeedLike = None
) -> IPCImpact:
    """Evaluate a per-cycle error mask under a pipeline model."""
    error_mask = np.asarray(error_mask, dtype=bool)
    n_cycles = int(error_mask.size)
    if n_cycles == 0:
        raise ValueError("error_mask must cover at least one cycle")
    n_errors = int(np.count_nonzero(error_mask))
    exposed = model.exposed_penalty_cycles(error_mask, seed=seed)
    effective = model.effective_ipc(n_cycles, exposed)
    return IPCImpact(
        model_name=model.name,
        n_cycles=n_cycles,
        n_errors=n_errors,
        exposed_penalty_cycles=exposed,
        baseline_ipc=model.baseline_ipc,
        effective_ipc=effective,
    )


def ipc_impact_from_error_rate(
    model: PipelineModel,
    error_rate: float,
    n_cycles: int,
    seed: SeedLike = None,
) -> IPCImpact:
    """Evaluate a uniformly random error stream of a given rate.

    Useful for sweeps where only the rate matters; closed-loop DVS runs
    should pass their real (bursty) error masks to
    :func:`evaluate_ipc_impact` instead, because clustering makes errors
    harder to hide.
    """
    check_fraction("error_rate", error_rate)
    if n_cycles <= 0:
        raise ValueError(f"n_cycles must be positive, got {n_cycles}")
    from repro.utils.rng import make_rng  # local import keeps module deps minimal

    rng = make_rng(seed)
    error_mask = rng.random(n_cycles) < error_rate
    return evaluate_ipc_impact(model, error_mask, seed=rng)


def ipc_penalty_curve(
    model: PipelineModel,
    error_rates: Sequence[float],
    n_cycles: int = 100_000,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Fractional IPC loss of the model at each error rate (for the ablation bench)."""
    losses = [
        ipc_impact_from_error_rate(model, rate, n_cycles, seed=seed).ipc_loss_fraction
        for rate in error_rates
    ]
    return np.asarray(losses)
