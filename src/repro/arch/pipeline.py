"""Pipeline models: from the paper's IPC=1 assumption to out-of-order cores.

The paper evaluates the bus in isolation with the pessimistic simplification
that every corrected timing error costs exactly one committed-instruction
slot (IPC loss == error rate).  It also points out, twice, why reality is
kinder: the baseline IPC of a real pipeline is below one (so the same number
of errors lands in a larger time window), and an out-of-order core can
overlap the one-cycle replay with stalls it was going to suffer anyway --
"the performance (IPC) may not necessarily degrade by the same amount as the
error-rate (especially for out-of-order execution)".

:class:`PipelineModel` captures exactly those two effects with two
parameters:

``baseline_ipc``
    Committed instructions per cycle with a perfect (error-free) bus.  The
    gap to 1.0 is the fraction of cycles in which commit stalls for reasons
    unrelated to the DVS bus (cache misses, branch mispredictions, structural
    hazards).
``overlap_window_cycles``
    How far ahead (in cycles) the out-of-order window lets a replay hide
    behind an unrelated stall.  0 models an in-order core: every replay
    cycle is exposed.

The model is deliberately small -- it adds no new magic numbers beyond what
the paper itself discusses -- but it is a *simulation* (errors and stalls are
placed on a concrete timeline), not a closed-form guess, so clustered errors
during control-loop transients are penalised realistically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PipelineModel:
    """A pipeline's ability to absorb one-cycle bus error recoveries.

    Attributes
    ----------
    name:
        Label used in reports.
    baseline_ipc:
        Error-free commit rate (instructions per cycle), in (0, 1].
    overlap_window_cycles:
        Number of following cycles within which an unrelated stall can absorb
        a replay cycle (0 = in-order, no overlap).
    error_penalty_cycles:
        Replay penalty per corrected error (1 in the paper).
    """

    name: str
    baseline_ipc: float = 1.0
    overlap_window_cycles: int = 0
    error_penalty_cycles: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.baseline_ipc <= 1.0:
            raise ValueError(f"baseline_ipc must be in (0, 1], got {self.baseline_ipc}")
        if self.overlap_window_cycles < 0:
            raise ValueError(
                f"overlap_window_cycles must be >= 0, got {self.overlap_window_cycles}"
            )
        check_positive("error_penalty_cycles", self.error_penalty_cycles)

    @property
    def stall_fraction(self) -> float:
        """Fraction of cycles in which commit stalls for bus-unrelated reasons."""
        return 1.0 - self.baseline_ipc

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def exposed_penalty_cycles(self, error_mask: np.ndarray, seed: SeedLike = None) -> int:
        """Replay cycles that lengthen execution, given per-cycle error flags.

        Unrelated stall cycles are drawn as a Bernoulli process with rate
        ``stall_fraction``; a replay is *hidden* if an unused stall cycle
        falls within ``overlap_window_cycles`` after the error, and exposed
        otherwise.  Each stall cycle can hide at most one replay cycle.
        """
        error_mask = np.asarray(error_mask, dtype=bool)
        n_errors = int(np.count_nonzero(error_mask))
        if n_errors == 0:
            return 0
        total_penalty = n_errors * self.error_penalty_cycles
        if self.overlap_window_cycles == 0 or self.stall_fraction <= 0.0:
            return total_penalty

        rng = make_rng(seed)
        stall_mask = rng.random(error_mask.size) < self.stall_fraction
        error_cycles = np.nonzero(error_mask)[0]
        hidden = 0
        next_free_stall = 0  # stalls are consumed in order, at most once each
        stall_cycles = np.nonzero(stall_mask)[0]
        for cycle in error_cycles:
            budget = self.error_penalty_cycles
            while budget > 0 and next_free_stall < len(stall_cycles):
                candidate = stall_cycles[next_free_stall]
                if candidate < cycle:
                    next_free_stall += 1
                    continue
                if candidate <= cycle + self.overlap_window_cycles:
                    hidden += 1
                    budget -= 1
                    next_free_stall += 1
                else:
                    break
        return total_penalty - hidden

    def effective_ipc(self, n_instructions: int, exposed_penalty_cycles: int) -> float:
        """IPC after stretching execution by the exposed replay cycles."""
        if n_instructions <= 0:
            raise ValueError(f"n_instructions must be positive, got {n_instructions}")
        if exposed_penalty_cycles < 0:
            raise ValueError(
                f"exposed_penalty_cycles must be >= 0, got {exposed_penalty_cycles}"
            )
        baseline_cycles = n_instructions / self.baseline_ipc
        return n_instructions / (baseline_cycles + exposed_penalty_cycles)


#: The paper's bus-in-isolation assumption: in-order, IPC = 1, every replay exposed.
IN_ORDER_IPC1 = PipelineModel(name="in-order, IPC=1 (paper assumption)")

#: A modest out-of-order core: some existing stalls, a small overlap window.
MODEST_OOO = PipelineModel(name="modest OoO", baseline_ipc=0.85, overlap_window_cycles=8)

#: An aggressive out-of-order core: lower baseline IPC, deep overlap window.
AGGRESSIVE_OOO = PipelineModel(
    name="aggressive OoO", baseline_ipc=0.7, overlap_window_cycles=32
)

#: The three models used by the IPC ablation benchmark, keyed by name.
PIPELINE_MODELS: dict[str, PipelineModel] = {
    model.name: model for model in (IN_ORDER_IPC1, MODEST_OOO, AGGRESSIVE_OOO)
}
