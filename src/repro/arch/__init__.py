"""Architectural substrate: how the pipeline absorbs bus error recoveries.

The paper's system-level picture (Fig. 1) has the DVS read bus feeding the
memory unit of an execution core, where load data sits in a buffer before
being committed; a timing error is handled "in a manner similar to cache
misses and speculative loads, with a one cycle penalty for error recovery".
For the bus-in-isolation study the paper then adopts the *pessimistic*
simplification that IPC drops by exactly the error rate (Section 3), while
noting that an out-of-order core would hide part of the penalty.

This package models both ends of that argument:

* :mod:`repro.arch.memory_unit` -- the load-data buffer at the bus receiver
  and its one-cycle replay bookkeeping,
* :mod:`repro.arch.pipeline` -- pipeline models from the paper's in-order
  IPC=1 assumption to aggressive out-of-order cores that overlap recoveries
  with existing stalls,
* :mod:`repro.arch.ipc` -- IPC-impact evaluation of an error stream under a
  pipeline model, so the "performance degradation < error rate" claim can be
  quantified.
"""

from repro.arch.memory_unit import LoadDataBuffer, LoadEntry
from repro.arch.pipeline import (
    AGGRESSIVE_OOO,
    IN_ORDER_IPC1,
    MODEST_OOO,
    PIPELINE_MODELS,
    PipelineModel,
)
from repro.arch.ipc import (
    IPCImpact,
    evaluate_ipc_impact,
    ipc_impact_from_error_rate,
    ipc_penalty_curve,
)

__all__ = [
    "LoadDataBuffer",
    "LoadEntry",
    "AGGRESSIVE_OOO",
    "IN_ORDER_IPC1",
    "MODEST_OOO",
    "PIPELINE_MODELS",
    "PipelineModel",
    "IPCImpact",
    "evaluate_ipc_impact",
    "ipc_impact_from_error_rate",
    "ipc_penalty_curve",
]
