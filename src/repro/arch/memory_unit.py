"""The load-data buffer at the receiving end of the DVS read bus.

Fig. 1 of the paper replaces the flip-flops that hold incoming load data with
double-sampling flip-flops: load data "is typically held in a buffer before
being committed to an architectural state", and a timing error is handled
like a cache miss or a mis-speculated load -- the wrong word delivered in the
erroneous cycle is squashed and the correct word (from the shadow latch)
replaces it one cycle later.

:class:`LoadDataBuffer` is a behavioural model of that buffer.  It is not on
the performance-critical simulation path (the vectorised bus model handles
millions of cycles); it exists to make the recovery protocol explicit, to be
unit-testable, and to drive the worked pipeline example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_positive


@dataclass
class LoadEntry:
    """One load waiting in the memory unit for its data word.

    Attributes
    ----------
    tag:
        Identifier of the load (e.g. its sequence number in program order).
    data:
        The word most recently delivered for this load (``None`` until the
        bus delivers something).
    valid:
        Whether ``data`` is known to be correct.  A timing error clears the
        flag for one cycle until the shadow-latch word arrives.
    replays:
        Number of times this entry's data had to be replaced.
    """

    tag: int
    data: int | None = None
    valid: bool = False
    replays: int = 0


@dataclass
class LoadDataBuffer:
    """Bounded buffer of outstanding loads fed by the DVS read bus.

    Parameters
    ----------
    capacity:
        Maximum number of loads the memory unit can hold before the pipeline
        must stall further loads (a typical load-queue depth is 16-32).
    """

    capacity: int = 16
    _entries: list[LoadEntry] = field(default_factory=list, repr=False)
    _total_replays: int = field(default=0, repr=False)
    _total_deliveries: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        check_positive("capacity", self.capacity)

    # ------------------------------------------------------------------ #
    # Occupancy
    # ------------------------------------------------------------------ #
    @property
    def occupancy(self) -> int:
        """Number of loads currently held."""
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """Whether a new load would have to stall."""
        return self.occupancy >= self.capacity

    @property
    def total_replays(self) -> int:
        """Replays performed since the buffer was created."""
        return self._total_replays

    @property
    def total_deliveries(self) -> int:
        """Bus deliveries (correct or later replayed) since creation."""
        return self._total_deliveries

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #
    def allocate(self, tag: int) -> LoadEntry:
        """Reserve an entry for a newly issued load."""
        if self.is_full:
            raise RuntimeError(f"load buffer is full (capacity {self.capacity})")
        if any(entry.tag == tag for entry in self._entries):
            raise ValueError(f"a load with tag {tag} is already outstanding")
        entry = LoadEntry(tag=tag)
        self._entries.append(entry)
        return entry

    def deliver(self, tag: int, data: int, error: bool = False) -> LoadEntry:
        """Deliver a bus word for an outstanding load.

        ``error=True`` models the double-sampling flip-flop's error signal:
        the delivered word is the *wrong* (main-latch) value, so the entry is
        marked invalid and must be completed by :meth:`replay` on the next
        cycle.  Without an error the entry becomes valid immediately.
        """
        entry = self._find(tag)
        self._total_deliveries += 1
        entry.data = data
        entry.valid = not error
        return entry

    def replay(self, tag: int, data: int) -> LoadEntry:
        """Deliver the shadow-latch word one cycle after an error."""
        entry = self._find(tag)
        if entry.valid:
            raise RuntimeError(f"load {tag} is already valid; nothing to replay")
        if entry.data is None:
            raise RuntimeError(f"load {tag} has not been delivered yet; cannot replay")
        entry.data = data
        entry.valid = True
        entry.replays += 1
        self._total_replays += 1
        return entry

    def commit(self, tag: int) -> int:
        """Retire a load, returning its data word.

        Only valid entries may commit -- committing an invalid entry would be
        exactly the architectural corruption the error recovery exists to
        prevent, so it raises.
        """
        entry = self._find(tag)
        if not entry.valid:
            raise RuntimeError(f"load {tag} has unconfirmed data; commit must wait for replay")
        if entry.data is None:  # pragma: no cover - valid implies delivered
            raise RuntimeError(f"load {tag} committed without data")
        self._entries.remove(entry)
        return entry.data

    def _find(self, tag: int) -> LoadEntry:
        for entry in self._entries:
            if entry.tag == tag:
                return entry
        raise KeyError(f"no outstanding load with tag {tag}")
