"""On-disk format of the characterization database (normative constants).

A ``.chardb`` file is the shippable form of the paper's one-time HSPICE-style
characterization step: every delay/error/energy surface a simulation needs,
precomputed once and loaded in O(1) without touching the circuit models.  The
layout is deliberately simple enough to read from any language (see
``docs/chardb_format.md`` for the full normative specification):

* a fixed 96-byte little-endian header (:func:`pack_header` /
  :func:`unpack_header`) carrying the magic, the schema version, an
  endianness sentinel, the index/data extents and a SHA-256 content hash,
* a canonical-JSON index describing every characterization entry and where
  its surface arrays live, and
* a 64-byte-aligned array region of raw little-endian ``float64`` surfaces,
  suitable for zero-copy memory mapping.

Everything below the header is covered by the content hash, and every byte of
the file is a deterministic function of the build inputs: rebuilding the same
database from the same circuit models produces the identical file, which is
what lets CI byte-compare the committed artifact against a fresh rebuild.

>>> header = Header(index_length=120, data_offset=256, data_length=1024,
...                 content_hash=b"\\x00" * 32)
>>> packed = pack_header(header)
>>> len(packed) == HEADER_SIZE
True
>>> unpack_header(packed) == header
True
>>> unpack_header(b"NOTACHDB" + packed[8:])
Traceback (most recent call last):
    ...
repro.chardb.format.ChardbFormatError: not a chardb file (bad magic b'NOTACHDB')
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

__all__ = [
    "MAGIC",
    "SCHEMA_VERSION",
    "ENDIAN_MARK",
    "HEADER_SIZE",
    "ARRAY_ALIGNMENT",
    "ARRAY_DTYPE",
    "Header",
    "pack_header",
    "unpack_header",
    "content_hash",
    "align_up",
    "ChardbError",
    "ChardbFormatError",
    "ChardbSchemaError",
    "ChardbLookupError",
]

#: File magic, first 8 bytes of every characterization database.
MAGIC = b"REPROCDB"

#: Current schema version.  Bump on any incompatible layout or index change;
#: readers refuse files whose version differs from their own.
SCHEMA_VERSION = 1

#: Endianness sentinel stored as a little-endian u16.  A reader that decodes
#: 0x0201 instead of 0x0102 is applying the wrong byte order.
ENDIAN_MARK = 0x0102

#: Size of the fixed header in bytes.
HEADER_SIZE = 96

#: Alignment of every surface array inside the data region (bytes).
ARRAY_ALIGNMENT = 64

#: The one and only array element type: little-endian IEEE-754 float64.
ARRAY_DTYPE = "<f8"

#: struct layout of the header (see docs/chardb_format.md):
#: magic / schema u16 / endian u16 / header size u32 / index offset u64 /
#: index length u64 / data offset u64 / data length u64 / sha-256 / reserved.
_HEADER_STRUCT = struct.Struct("<8sHHIQQQQ32s16s")
assert _HEADER_STRUCT.size == HEADER_SIZE


class ChardbError(Exception):
    """Base class of every characterization-database error."""


class ChardbFormatError(ChardbError):
    """The file is not a chardb, is truncated, or fails integrity checks."""


class ChardbSchemaError(ChardbError):
    """The file is a chardb, but of an incompatible schema version."""


class ChardbLookupError(ChardbError, KeyError):
    """No entry in the database matches the requested combination."""

    def __str__(self) -> str:  # KeyError quotes its args; keep the message plain
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class Header:
    """The decoded fixed header of a characterization database."""

    index_length: int
    data_offset: int
    data_length: int
    content_hash: bytes
    schema_version: int = SCHEMA_VERSION
    index_offset: int = field(default=HEADER_SIZE)

    def __post_init__(self) -> None:
        if len(self.content_hash) != 32:
            raise ValueError(
                f"content_hash must be 32 bytes (SHA-256), got {len(self.content_hash)}"
            )


def pack_header(header: Header) -> bytes:
    """Serialise a :class:`Header` into its 96-byte on-disk form."""
    return _HEADER_STRUCT.pack(
        MAGIC,
        header.schema_version,
        ENDIAN_MARK,
        HEADER_SIZE,
        header.index_offset,
        header.index_length,
        header.data_offset,
        header.data_length,
        header.content_hash,
        b"\x00" * 16,
    )


def unpack_header(raw: bytes) -> Header:
    """Decode and validate the fixed header of a chardb file.

    Raises
    ------
    ChardbFormatError
        If the buffer is too short, the magic is wrong, or the endianness
        sentinel does not decode to :data:`ENDIAN_MARK`.
    ChardbSchemaError
        If the schema version differs from :data:`SCHEMA_VERSION`.
    """
    if len(raw) < HEADER_SIZE:
        raise ChardbFormatError(
            f"truncated chardb header: {len(raw)} bytes, need {HEADER_SIZE}"
        )
    (
        magic,
        schema,
        endian,
        header_size,
        index_offset,
        index_length,
        data_offset,
        data_length,
        digest,
        _reserved,
    ) = _HEADER_STRUCT.unpack(raw[:HEADER_SIZE])
    if magic != MAGIC:
        raise ChardbFormatError(f"not a chardb file (bad magic {magic!r})")
    if endian != ENDIAN_MARK:
        raise ChardbFormatError(
            f"endianness sentinel mismatch (read 0x{endian:04x}, want 0x{ENDIAN_MARK:04x})"
        )
    if header_size != HEADER_SIZE:
        raise ChardbFormatError(f"unexpected header size {header_size}, want {HEADER_SIZE}")
    if schema != SCHEMA_VERSION:
        raise ChardbSchemaError(
            f"chardb schema version {schema} is not supported by this reader "
            f"(expects {SCHEMA_VERSION}); rebuild the database with "
            f"'python -m repro chardb build'"
        )
    return Header(
        schema_version=schema,
        index_offset=index_offset,
        index_length=index_length,
        data_offset=data_offset,
        data_length=data_length,
        content_hash=digest,
    )


def content_hash(payload: bytes) -> bytes:
    """SHA-256 of everything after the header (index + padding + data)."""
    return hashlib.sha256(payload).digest()


def align_up(offset: int, alignment: int = ARRAY_ALIGNMENT) -> int:
    """Round ``offset`` up to the next multiple of ``alignment``.

    >>> align_up(0), align_up(1), align_up(64), align_up(65)
    (0, 64, 64, 128)
    """
    return (offset + alignment - 1) // alignment * alignment
