"""Precomputed characterization database (the repo's ``chipdb`` analog).

Every simulation needs the bus's delay/error/energy surfaces — the paper's
one-time HSPICE characterization step.  This package bakes those surfaces for
every (PVT corner × voltage grid × bus design × encoder width) combination
into a compact, versioned, memory-mappable artifact (see
``docs/chardb_format.md``), so simulations, sweeps and the job server load
them in O(1) instead of re-deriving them from :mod:`repro.circuit`:

* :mod:`repro.chardb.format` — the normative on-disk layout (header, schema
  version, content hash, array encoding),
* :mod:`repro.chardb.builder` — deterministic artifact construction from the
  live circuit models (``repro chardb build``),
* :mod:`repro.chardb.database` — the zero-copy mmap reader,
* :mod:`repro.chardb.active` — the per-process active database that
  :class:`~repro.bus.bus_model.CharacterizedBus` resolves tables through,
  with a guaranteed bit-identical live fallback.

Build a database covering one corner and load a ready-to-simulate bus back
out of it without touching the circuit layer:

>>> import os, tempfile
>>> from repro.chardb import BuildSpec, CharacterizationDatabase, write_database
>>> from repro.chardb.design_codec import corner_to_params
>>> from repro.circuit.pvt import TYPICAL_CORNER
>>> spec = BuildSpec(corners=(corner_to_params(TYPICAL_CORNER),))
>>> path = os.path.join(tempfile.mkdtemp(), "tiny.chardb")
>>> write_database(path, spec)["entries"]
1
>>> database = CharacterizationDatabase.open(path)
>>> len(database)
1
>>> bus = database.bus(TYPICAL_CORNER)
>>> round(bus.zero_error_voltage(), 2)
0.98

The file is content-addressed for the runtime cache: ``JobSpec.key`` folds
:func:`chardb_fingerprint` into the job identity whenever a job carries a
``chardb`` parameter, so results computed against one artifact are never
replayed for another.
"""

from repro.chardb.active import (
    clear_active_chardb,
    get_active_chardb,
    resolve_table,
    set_active_chardb,
    use_chardb,
)
from repro.chardb.builder import (
    DEFAULT_DB_PATH,
    BuildSpec,
    build_database_bytes,
    default_build_spec,
    write_database,
)
from repro.chardb.database import CharacterizationDatabase, chardb_fingerprint
from repro.chardb.format import (
    SCHEMA_VERSION,
    ChardbError,
    ChardbFormatError,
    ChardbLookupError,
    ChardbSchemaError,
)

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_DB_PATH",
    "BuildSpec",
    "CharacterizationDatabase",
    "ChardbError",
    "ChardbFormatError",
    "ChardbLookupError",
    "ChardbSchemaError",
    "build_database_bytes",
    "chardb_fingerprint",
    "clear_active_chardb",
    "default_build_spec",
    "get_active_chardb",
    "resolve_table",
    "set_active_chardb",
    "use_chardb",
    "write_database",
]
