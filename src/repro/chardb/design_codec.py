"""Loss-free JSON codecs for bus designs, corners and voltage grids.

The database index stores, for every entry, the *complete* set of parameters
needed to rebuild the exact :class:`~repro.bus.bus_design.BusDesign` whose
surfaces were tabulated — down to the already-sized repeater chain.  That
serves two purposes:

* :func:`design_fingerprint` hashes the encoded form with the runtime's
  canonical-JSON hasher, giving every design a stable content address that
  the loader uses as a lookup key, and
* :func:`design_from_params` reconstructs the design object *without*
  re-running the repeater sizing flow (the sized ``repeaters.size`` is stored
  verbatim), so loading a bus from the database never touches the circuit
  models.

All floats survive the round trip exactly: Python's ``repr``-based JSON float
encoding is shortest-round-trip, so ``design_from_params(design_to_params(d))``
compares equal to ``d`` field for field.

>>> from repro.bus.bus_design import BusDesign
>>> design = BusDesign.paper_bus()
>>> rebuilt = design_from_params(design_to_params(design))
>>> design_to_params(rebuilt) == design_to_params(design)
True
>>> design_fingerprint(rebuilt) == design_fingerprint(design)
True
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.bus.bus_design import BusDesign
from repro.circuit.lookup_table import VoltageGrid
from repro.circuit.mosfet import TransistorParams
from repro.circuit.pvt import ProcessCorner, PVTCorner
from repro.clocking import ClockingParameters
from repro.interconnect.crosstalk import NeighborTopology
from repro.interconnect.parasitics import WireParasitics
from repro.interconnect.repeater import RepeaterChain
from repro.interconnect.technology import TechnologyNode
from repro.runtime.hashing import stable_hash

__all__ = [
    "corner_to_params",
    "corner_from_params",
    "grid_to_params",
    "grid_from_params",
    "design_to_params",
    "design_from_params",
    "design_fingerprint",
]

Params = dict[str, Any]


# --------------------------------------------------------------------- #
# PVT corners and voltage grids
# --------------------------------------------------------------------- #
def corner_to_params(corner: PVTCorner) -> Params:
    """Encode a PVT corner as a JSON-able dict.

    >>> from repro.circuit.pvt import WORST_CASE_CORNER
    >>> corner_to_params(WORST_CASE_CORNER)
    {'process': 'slow', 'temperature_c': 100.0, 'ir_drop': 0.1}
    """
    return {
        "process": corner.process.value,
        "temperature_c": corner.temperature_c,
        "ir_drop": corner.ir_drop,
    }


def corner_from_params(params: Params) -> PVTCorner:
    """Rebuild a :class:`PVTCorner` from its encoded form."""
    return PVTCorner(
        process=ProcessCorner(params["process"]),
        temperature_c=float(params["temperature_c"]),
        ir_drop=float(params["ir_drop"]),
    )


def grid_to_params(grid: VoltageGrid) -> Params:
    """Encode a voltage grid as its three defining scalars."""
    return {"v_min": grid.v_min, "v_max": grid.v_max, "step": grid.step}


def grid_from_params(params: Params) -> VoltageGrid:
    """Rebuild a :class:`VoltageGrid` from its encoded form."""
    return VoltageGrid(
        v_min=float(params["v_min"]),
        v_max=float(params["v_max"]),
        step=float(params["step"]),
    )


# --------------------------------------------------------------------- #
# Bus designs
# --------------------------------------------------------------------- #
def _transistor_to_params(transistor: TransistorParams) -> Params:
    return {
        "vth0": {corner.value: transistor.vth0[corner] for corner in ProcessCorner},
        "drive_factor": {
            corner.value: transistor.drive_factor[corner] for corner in ProcessCorner
        },
        "alpha": transistor.alpha,
        "vth_temp_coeff": transistor.vth_temp_coeff,
        "mobility_temp_exp": transistor.mobility_temp_exp,
        "reference_temperature_c": transistor.reference_temperature_c,
        "unit_drive_current": transistor.unit_drive_current,
        "resistance_fit": transistor.resistance_fit,
        "unit_gate_cap": transistor.unit_gate_cap,
        "unit_drain_cap": transistor.unit_drain_cap,
        "unit_leakage_current": transistor.unit_leakage_current,
        "subthreshold_n": transistor.subthreshold_n,
        "dibl": transistor.dibl,
    }


def _transistor_from_params(params: Params) -> TransistorParams:
    return TransistorParams(
        vth0={ProcessCorner(key): float(value) for key, value in params["vth0"].items()},
        drive_factor={
            ProcessCorner(key): float(value) for key, value in params["drive_factor"].items()
        },
        alpha=float(params["alpha"]),
        vth_temp_coeff=float(params["vth_temp_coeff"]),
        mobility_temp_exp=float(params["mobility_temp_exp"]),
        reference_temperature_c=float(params["reference_temperature_c"]),
        unit_drive_current=float(params["unit_drive_current"]),
        resistance_fit=float(params["resistance_fit"]),
        unit_gate_cap=float(params["unit_gate_cap"]),
        unit_drain_cap=float(params["unit_drain_cap"]),
        unit_leakage_current=float(params["unit_leakage_current"]),
        subthreshold_n=float(params["subthreshold_n"]),
        dibl=float(params["dibl"]),
    )


def _shield_mask_to_string(mask: np.ndarray) -> str:
    return "".join("1" if flag else "0" for flag in np.asarray(mask, dtype=bool))


def _shield_mask_from_string(encoded: str) -> np.ndarray:
    return np.array([character == "1" for character in encoded], dtype=bool)


def design_to_params(design: BusDesign) -> Params:
    """Encode a fully-sized bus design as a JSON-able dict."""
    technology = design.technology
    topology = design.topology
    return {
        "n_bits": design.n_bits,
        "length": design.length,
        "n_segments": design.n_segments,
        "technology": {
            "name": technology.name,
            "feature_size": technology.feature_size,
            "nominal_vdd": technology.nominal_vdd,
            "wire_width": technology.wire_width,
            "wire_spacing": technology.wire_spacing,
            "wire_thickness": technology.wire_thickness,
            "dielectric_height": technology.dielectric_height,
            "resistivity": technology.resistivity,
            "dielectric_constant": technology.dielectric_constant,
            "transistor": _transistor_to_params(technology.transistor),
        },
        "parasitics": {
            "resistance_per_meter": design.parasitics.resistance_per_meter,
            "ground_cap_per_meter": design.parasitics.ground_cap_per_meter,
            "coupling_cap_per_meter": design.parasitics.coupling_cap_per_meter,
        },
        "topology": {
            "n_wires": topology.n_wires,
            "left_is_shield": _shield_mask_to_string(topology.left_is_shield),
            "right_is_shield": _shield_mask_to_string(topology.right_is_shield),
            "secondary_weight": topology.secondary_weight,
        },
        "repeaters": {
            "n_segments": design.repeaters.n_segments,
            "size": design.repeaters.size,
            "receiver_capacitance": design.repeaters.receiver_capacitance,
        },
        "clocking": {
            "frequency": design.clocking.frequency,
            "setup_slack_fraction": design.clocking.setup_slack_fraction,
            "shadow_delay_fraction": design.clocking.shadow_delay_fraction,
        },
        "design_corner": corner_to_params(design.design_corner),
    }


def design_from_params(params: Params) -> BusDesign:
    """Rebuild a :class:`BusDesign` from its encoded form.

    The repeater chain is restored with its stored size — the sizing flow
    (and with it the whole circuit timing model) is *not* re-run.
    """
    technology_params = params["technology"]
    topology_params = params["topology"]
    repeater_params = params["repeaters"]
    clocking_params = params["clocking"]
    parasitic_params = params["parasitics"]
    return BusDesign(
        technology=TechnologyNode(
            name=str(technology_params["name"]),
            feature_size=float(technology_params["feature_size"]),
            nominal_vdd=float(technology_params["nominal_vdd"]),
            wire_width=float(technology_params["wire_width"]),
            wire_spacing=float(technology_params["wire_spacing"]),
            wire_thickness=float(technology_params["wire_thickness"]),
            dielectric_height=float(technology_params["dielectric_height"]),
            resistivity=float(technology_params["resistivity"]),
            dielectric_constant=float(technology_params["dielectric_constant"]),
            transistor=_transistor_from_params(technology_params["transistor"]),
        ),
        n_bits=int(params["n_bits"]),
        length=float(params["length"]),
        n_segments=int(params["n_segments"]),
        parasitics=WireParasitics(
            resistance_per_meter=float(parasitic_params["resistance_per_meter"]),
            ground_cap_per_meter=float(parasitic_params["ground_cap_per_meter"]),
            coupling_cap_per_meter=float(parasitic_params["coupling_cap_per_meter"]),
        ),
        topology=NeighborTopology(
            n_wires=int(topology_params["n_wires"]),
            left_is_shield=_shield_mask_from_string(topology_params["left_is_shield"]),
            right_is_shield=_shield_mask_from_string(topology_params["right_is_shield"]),
            secondary_weight=float(topology_params["secondary_weight"]),
        ),
        repeaters=RepeaterChain(
            n_segments=int(repeater_params["n_segments"]),
            size=float(repeater_params["size"]),
            receiver_capacitance=float(repeater_params["receiver_capacitance"]),
        ),
        clocking=ClockingParameters(
            frequency=float(clocking_params["frequency"]),
            setup_slack_fraction=float(clocking_params["setup_slack_fraction"]),
            shadow_delay_fraction=float(clocking_params["shadow_delay_fraction"]),
        ),
        design_corner=corner_from_params(params["design_corner"]),
    )


def design_fingerprint(design: BusDesign) -> str:
    """Stable content address of a bus design (SHA-256 over canonical JSON)."""
    return stable_hash(design_to_params(design))
