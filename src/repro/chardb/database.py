"""Memory-mapped reader for characterization databases.

:class:`CharacterizationDatabase` opens a ``.chardb`` file, parses its index
once, and thereafter serves :class:`~repro.circuit.lookup_table.DelayEnergyTable`
objects in O(1) — the surface arrays are ``numpy`` views straight into the
memory-mapped data region, so loading a table copies no array data and never
imports the circuit models.

Lookups are keyed three ways:

* by *content*: ``(design fingerprint, corner, grid)`` — what the bus layer
  uses to resolve a table for an already-constructed design,
* by *family*: ``(n_bits, coupling_scale)`` — what the CLI and job server use
  to reconstruct the paper-bus variant a sweep point denotes without running
  the design flow, and
* by *file*: :func:`chardb_fingerprint` content-addresses the whole artifact
  for ``JobSpec.key``, so cached results are invalidated the moment the
  database they were computed against changes.
"""

from __future__ import annotations

import mmap
from pathlib import Path
from typing import Any, BinaryIO

import numpy as np

from repro.chardb.design_codec import corner_to_params, design_fingerprint, design_from_params
from repro.chardb.format import (
    ARRAY_DTYPE,
    HEADER_SIZE,
    ChardbError,
    ChardbFormatError,
    ChardbLookupError,
    Header,
    content_hash,
    unpack_header,
)
from repro.circuit.lookup_table import DelayEnergyTable, VoltageGrid
from repro.circuit.pvt import PVTCorner

__all__ = ["CharacterizationDatabase", "chardb_fingerprint"]

#: Lookup key of one entry: (design fingerprint, corner identity, grid identity).
EntryKey = tuple[str, tuple[str, float, float], tuple[float, float, float]]

#: Family key of one design: (n_bits, coupling_scale).
FamilyKey = tuple[int, float]


def _corner_key(corner: PVTCorner) -> tuple[str, float, float]:
    params = corner_to_params(corner)
    return (params["process"], params["temperature_c"], params["ir_drop"])


def _grid_key(grid: VoltageGrid) -> tuple[float, float, float]:
    return (grid.v_min, grid.v_max, grid.step)


class CharacterizationDatabase:
    """An open, validated, memory-mapped characterization database."""

    # Both handles are dropped (set to None) by close(); a constructor that
    # fails mid-validation may never have assigned them at all, hence the
    # getattr() guards below.
    _map: mmap.mmap | None
    _file: BinaryIO | None

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            self._file = self.path.open("rb")
        except OSError as error:
            raise ChardbFormatError(f"cannot open chardb {self.path}: {error}") from error
        # Validation failures must not leak the file handle or the map, no
        # matter what they raise (mmap raises OSError/ValueError, a malformed
        # index raises KeyError/TypeError); release-on-failure instead of a
        # catch-all handler so even KeyboardInterrupt cleans up.
        opened = False
        try:
            size = self.path.stat().st_size
            if size < HEADER_SIZE:
                raise ChardbFormatError(
                    f"{self.path} is {size} bytes, smaller than the {HEADER_SIZE}-byte header"
                )
            self._map = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
            self.header: Header = unpack_header(self._map[:HEADER_SIZE])
            self._validate_extents(size)
            self._index = self._parse_index()
            self._entries: dict[EntryKey, dict[str, Any]] = {}
            self._families: dict[FamilyKey, str] = {}
            self._build_lookup_maps()
            opened = True
        finally:
            if not opened:
                self.close()

    # ------------------------------------------------------------------ #
    # Construction / teardown
    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, path: str | Path) -> CharacterizationDatabase:
        """Open and validate a database file (header, extents, index)."""
        return cls(path)

    def close(self) -> None:
        """Release the memory map and file handle.

        Tables already served keep their own references to the map, so they
        stay valid; ``close`` only drops this object's handles.
        """
        mapping = getattr(self, "_map", None)
        if mapping is not None:
            try:
                mapping.close()
            except BufferError:
                # Served tables still hold zero-copy views into the map;
                # mmap refuses to unmap under them.  Dropping our reference
                # is enough -- the mapping is released when the last view is
                # garbage-collected.
                pass
            self._map = None
        handle = getattr(self, "_file", None)
        if handle is not None:
            handle.close()
            self._file = None

    def __enter__(self) -> CharacterizationDatabase:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _validate_extents(self, file_size: int) -> None:
        header = self.header
        index_end = header.index_offset + header.index_length
        data_end = header.data_offset + header.data_length
        if index_end > file_size or header.data_offset < index_end or data_end != file_size:
            raise ChardbFormatError(
                f"{self.path} is truncated or has inconsistent extents: "
                f"size={file_size}, index=[{header.index_offset}, {index_end}), "
                f"data=[{header.data_offset}, {data_end})"
            )

    def _parse_index(self) -> dict[str, Any]:
        import json

        header = self.header
        raw = self._map[header.index_offset : header.index_offset + header.index_length]
        try:
            index = json.loads(raw.decode("ascii"))
        except (UnicodeDecodeError, ValueError) as error:
            raise ChardbFormatError(f"{self.path} has a corrupt index: {error}") from error
        if index.get("schema") != header.schema_version:
            raise ChardbFormatError(
                f"{self.path}: index schema {index.get('schema')!r} disagrees with "
                f"header schema {header.schema_version}"
            )
        return index

    def _build_lookup_maps(self) -> None:
        data_length = self.header.data_length
        for position, entry in enumerate(self._index["entries"]):
            fingerprint = entry["design"]
            if fingerprint not in self._index["designs"]:
                raise ChardbFormatError(
                    f"{self.path}: entry {position} references unknown design {fingerprint}"
                )
            for name, (offset, count) in entry["arrays"].items():
                if offset < 0 or offset + count * 8 > data_length:
                    raise ChardbFormatError(
                        f"{self.path}: array {name!r} of entry {position} "
                        f"([{offset}, +{count * 8}) bytes) exceeds the data region "
                        f"({data_length} bytes)"
                    )
            corner = entry["corner"]
            grid = entry["grid"]
            key: EntryKey = (
                fingerprint,
                (corner["process"], corner["temperature_c"], corner["ir_drop"]),
                (grid["v_min"], grid["v_max"], grid["step"]),
            )
            self._entries[key] = entry
            self._families.setdefault(
                (int(entry["n_bits"]), float(entry["coupling_scale"])), fingerprint
            )

    def verify(self) -> None:
        """Recompute the content hash; raise :class:`ChardbFormatError` on drift."""
        payload = self._map[self.header.index_offset :]
        digest = content_hash(payload)
        if digest != self.header.content_hash:
            raise ChardbFormatError(
                f"{self.path} fails its integrity check: stored content hash "
                f"{self.header.content_hash.hex()} != recomputed {digest.hex()}"
            )

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def fingerprint(self) -> str:
        """Hex content hash of the file (what ``JobSpec.key`` folds in)."""
        return self.header.content_hash.hex()

    def _surface(self, offset: int, count: int) -> np.ndarray:
        absolute = self.header.data_offset + offset
        return np.frombuffer(self._map, dtype=ARRAY_DTYPE, count=count, offset=absolute)

    def _table_from_entry(self, entry: dict[str, Any], corner: PVTCorner) -> DelayEnergyTable:
        grid = VoltageGrid(
            v_min=entry["grid"]["v_min"],
            v_max=entry["grid"]["v_max"],
            step=entry["grid"]["step"],
        )
        arrays = {
            name: self._surface(offset, count)
            for name, (offset, count) in entry["arrays"].items()
        }
        return DelayEnergyTable(
            grid=grid,
            corner=corner,
            base_delay=arrays["base_delay"],
            coupling_delay=arrays["coupling_delay"],
            leakage_power=arrays["leakage_power"],
            self_capacitance_per_wire=entry["scalars"]["self_capacitance_per_wire"],
            coupling_capacitance_per_pair=entry["scalars"]["coupling_capacitance_per_pair"],
            metadata=dict(entry["metadata"]),
        )

    def find_table(
        self, design: Any, corner: PVTCorner, grid: VoltageGrid | None = None
    ) -> DelayEnergyTable | None:
        """The stored table for (design, corner, grid), or ``None`` on a miss.

        ``design`` is a :class:`~repro.bus.bus_design.BusDesign`; it is matched
        by content fingerprint, so any equal design resolves regardless of how
        it was constructed.  A ``None`` grid means the design's default grid.
        """
        if grid is None:
            from repro.bus.characterization import default_voltage_grid

            grid = default_voltage_grid(design)
        key: EntryKey = (design_fingerprint(design), _corner_key(corner), _grid_key(grid))
        entry = self._entries.get(key)
        if entry is None:
            return None
        return self._table_from_entry(entry, corner)

    def table_for(
        self, design: Any, corner: PVTCorner, grid: VoltageGrid | None = None
    ) -> DelayEnergyTable:
        """Like :meth:`find_table`, but a miss raises :class:`ChardbLookupError`."""
        table = self.find_table(design, corner, grid)
        if table is None:
            raise ChardbLookupError(
                f"{self.path} has no entry for corner {corner.label!r} of this design "
                f"(fingerprint {design_fingerprint(design)[:16]}...); rebuild the "
                f"database or drop --chardb"
            )
        return table

    def design(self, n_bits: int = 32, coupling_scale: float = 1.0) -> Any:
        """Reconstruct the stored design of a (width, coupling) family."""
        fingerprint = self._families.get((int(n_bits), float(coupling_scale)))
        if fingerprint is None:
            known = sorted(self._families)
            raise ChardbLookupError(
                f"{self.path} has no design family (n_bits={n_bits}, "
                f"coupling_scale={coupling_scale}); stored families: {known}"
            )
        return design_from_params(self._index["designs"][fingerprint])

    def bus(
        self,
        corner: PVTCorner,
        n_bits: int = 32,
        coupling_scale: float = 1.0,
        flipflop_energy: Any = None,
    ) -> Any:
        """A :class:`CharacterizedBus` assembled entirely from stored data."""
        from repro.bus.bus_model import CharacterizedBus

        design = self.design(n_bits, coupling_scale)
        table = self.table_for(design, corner)
        return CharacterizedBus(
            design, corner, grid=table.grid, flipflop_energy=flipflop_energy, table=table
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def entries(self) -> list[dict[str, Any]]:
        """The raw index entries, in on-disk order."""
        return list(self._index["entries"])

    def summary(self) -> dict[str, Any]:
        """A JSON-able overview of the database (what ``chardb inspect`` prints)."""
        widths = sorted({int(entry["n_bits"]) for entry in self._index["entries"]})
        couplings = sorted({float(entry["coupling_scale"]) for entry in self._index["entries"]})
        corners = sorted(
            {
                (entry["corner"]["process"], entry["corner"]["temperature_c"], entry["corner"]["ir_drop"])
                for entry in self._index["entries"]
            }
        )
        return {
            "path": str(self.path),
            "schema": self.header.schema_version,
            "bytes": self.header.data_offset + self.header.data_length,
            "content_hash": self.fingerprint,
            "entries": len(self._entries),
            "designs": len(self._index["designs"]),
            "widths": widths,
            "coupling_scales": couplings,
            "corners": [
                {"process": process, "temperature_c": temperature, "ir_drop": ir_drop}
                for process, temperature, ir_drop in corners
            ],
        }


def chardb_fingerprint(path: str | Path) -> str | None:
    """Content fingerprint of a chardb file for cache keys, or ``None``.

    Reads only the 96-byte header.  Returns ``None`` when the file is missing,
    unreadable, or not a valid chardb header — mirroring the semantics of
    :func:`repro.trace.workloads.workload_fingerprint` (no fingerprint is
    folded into the job key, and actually *using* the database will fail
    loudly elsewhere).
    """
    try:
        with Path(path).open("rb") as handle:
            header = unpack_header(handle.read(HEADER_SIZE))
    except (OSError, ChardbError):
        # OSError: missing/unreadable file.  ChardbError: truncated header,
        # bad magic, or foreign schema (unpack_header converts the low-level
        # struct failures itself).  Anything else is a bug, not a bad file.
        return None
    return f"{header.schema_version}:{header.content_hash.hex()}"
