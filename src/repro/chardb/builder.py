"""Deterministic construction of characterization-database files.

The builder runs the live characterization flow (:mod:`repro.bus` over
:mod:`repro.circuit`) once per (bus design × PVT corner) combination and
serialises the resulting surfaces into the on-disk format of
:mod:`repro.chardb.format`.  Every byte of the output is a pure function of
the build specification and the circuit models:

* entries are emitted in a total order (width, coupling scale, then corner),
* the index is canonical JSON (sorted keys, shortest-round-trip floats), and
* the file carries no timestamps or environment data.

Rebuilding with unchanged models therefore reproduces the committed artifact
bit for bit, which is what the CI drift gate (`repro chardb build --check`)
relies on.

The default specification covers everything the experiment registry touches:
the five standard corners of Fig. 5/10 plus the two extra regulator-floor
corners that :meth:`DVSBusSystem.__init__` probes via
``minimum_safe_voltage``, the three bus widths the encoder set produces
(32 signal wires, 33 for bus-invert, 36 for bus-invert/8), and the coupling
multipliers of the Section 6 modified-bus sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.chardb.design_codec import (
    corner_from_params,
    corner_to_params,
    design_fingerprint,
    design_to_params,
    grid_to_params,
)
from repro.chardb.format import (
    HEADER_SIZE,
    SCHEMA_VERSION,
    Header,
    align_up,
    content_hash,
    pack_header,
)
from repro.circuit.pvt import STANDARD_CORNERS, PVTCorner, ProcessCorner
from repro.runtime.hashing import canonical_json

__all__ = [
    "BuildSpec",
    "DEFAULT_DB_PATH",
    "SURFACE_NAMES",
    "default_build_spec",
    "paper_design",
    "build_database_bytes",
    "write_database",
]

#: Repository-relative location of the committed artifact.
DEFAULT_DB_PATH = "chardb/paper.chardb"

#: The per-voltage surfaces stored for every entry, in on-disk order.
SURFACE_NAMES: tuple[str, ...] = ("base_delay", "coupling_delay", "leakage_power")

Params = dict[str, Any]


def _floor_corners() -> tuple[Params, ...]:
    """The regulator-floor corners probed by ``DVSBusSystem.__init__``.

    The floor policy re-characterises at (process, 100 C, 10 % IR drop); the
    slow-process floor *is* the worst-case corner already in the standard
    set, so only the typical- and fast-process floors are extra.
    """
    return tuple(
        corner_to_params(PVTCorner(process, 100.0, 0.10))
        for process in (ProcessCorner.TYPICAL, ProcessCorner.FAST)
    )


@dataclass(frozen=True)
class BuildSpec:
    """What to characterise: the cartesian grid baked into one database.

    Attributes
    ----------
    corners:
        PVT corners as JSON-able parameter dicts (see
        :func:`repro.chardb.design_codec.corner_to_params`).
    widths:
        Bus widths in signal wires; widths other than 32 re-run the paper's
        design flow exactly like the encoding study does.
    coupling_scales:
        Coupling-ratio multipliers of the Section 6 modified bus; ``1.0`` is
        the unmodified paper bus.
    v_min:
        Lowest tabulated supply voltage of every entry's grid.
    """

    corners: tuple[Params, ...]
    widths: tuple[int, ...] = (32,)
    coupling_scales: tuple[float, ...] = (1.0,)
    v_min: float = 0.60

    def __post_init__(self) -> None:
        if not self.corners:
            raise ValueError("BuildSpec needs at least one corner")
        if not self.widths:
            raise ValueError("BuildSpec needs at least one width")
        if not self.coupling_scales:
            raise ValueError("BuildSpec needs at least one coupling scale")


def default_build_spec() -> BuildSpec:
    """The grid every stock experiment resolves from (105 entries)."""
    corners = tuple(
        corner_to_params(corner) for _, corner in sorted(STANDARD_CORNERS.items())
    ) + _floor_corners()
    return BuildSpec(
        corners=corners,
        # 32 = the paper bus; 33/36 = bus-invert and bus-invert/8 widths.
        widths=(32, 33, 36),
        # The modified-bus sweep grid (1.95 is the paper's Section 6 point).
        coupling_scales=(1.0, 1.25, 1.5, 1.95, 2.5),
        v_min=0.60,
    )


def paper_design(n_bits: int = 32, coupling_scale: float = 1.0):
    """The design a (width, coupling) pair denotes, as the runtime builds it.

    Mirrors ``repro.runtime.tasks._characterized_bus`` exactly: widths other
    than 32 go through the encoding study's redesign flow, and coupling
    multipliers other than 1.0 apply the Section 6 modification on top.
    """
    from repro.bus.bus_design import BusDesign
    from repro.encoding.analysis import design_for_width

    design = design_for_width(BusDesign.paper_bus(), n_bits)
    if coupling_scale != 1.0:
        design = design.with_modified_coupling(coupling_scale)
    return design


@dataclass
class _PendingEntry:
    index: Params
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


def _characterize_entries(spec: BuildSpec) -> tuple[dict[str, Params], list[_PendingEntry]]:
    """Run live characterization over the whole grid, in deterministic order."""
    from repro.bus.characterization import (
        characterization_surfaces,
        characterize_bus,
        default_voltage_grid,
    )

    designs: dict[str, Params] = {}
    entries: list[_PendingEntry] = []
    sorted_corners = sorted(
        spec.corners,
        key=lambda params: (params["process"], params["temperature_c"], params["ir_drop"]),
    )
    for n_bits in sorted(spec.widths):
        for coupling_scale in sorted(spec.coupling_scales):
            design = paper_design(n_bits, coupling_scale)
            fingerprint = design_fingerprint(design)
            designs[fingerprint] = design_to_params(design)
            grid = default_voltage_grid(design, spec.v_min)
            for corner_params in sorted_corners:
                corner = corner_from_params(corner_params)
                table = characterize_bus(design, corner, grid)
                entry = _PendingEntry(
                    index={
                        "design": fingerprint,
                        "n_bits": n_bits,
                        "coupling_scale": coupling_scale,
                        "corner": corner_to_params(corner),
                        "grid": grid_to_params(grid),
                        "scalars": {
                            "self_capacitance_per_wire": table.self_capacitance_per_wire,
                            "coupling_capacitance_per_pair": table.coupling_capacitance_per_pair,
                        },
                        "metadata": dict(table.metadata),
                    }
                )
                entry.arrays = characterization_surfaces(table)
                entries.append(entry)
    return designs, entries


def build_database_bytes(spec: BuildSpec) -> bytes:
    """Characterise the full grid and serialise it into chardb file bytes."""
    designs, entries = _characterize_entries(spec)

    # Lay out the array region first so the index can carry the offsets.
    data_parts: list[bytes] = []
    cursor = 0
    for entry in entries:
        array_index: dict[str, list[int]] = {}
        for name in SURFACE_NAMES:
            surface = entry.arrays[name]
            offset = align_up(cursor)
            if offset > cursor:
                data_parts.append(b"\x00" * (offset - cursor))
            raw = surface.tobytes()
            data_parts.append(raw)
            array_index[name] = [offset, int(surface.size)]
            cursor = offset + len(raw)
        entry.index["arrays"] = array_index
    data_bytes = b"".join(data_parts)

    index_document = {
        "schema": SCHEMA_VERSION,
        "designs": designs,
        "entries": [entry.index for entry in entries],
    }
    index_bytes = canonical_json(index_document).encode("ascii")
    data_offset = align_up(HEADER_SIZE + len(index_bytes))
    index_padding = b"\x00" * (data_offset - HEADER_SIZE - len(index_bytes))

    payload = index_bytes + index_padding + data_bytes
    header = Header(
        index_length=len(index_bytes),
        data_offset=data_offset,
        data_length=len(data_bytes),
        content_hash=content_hash(payload),
    )
    return pack_header(header) + payload


def write_database(path: str | Path, spec: BuildSpec) -> dict[str, Any]:
    """Build a database and write it to ``path``; returns a summary dict."""
    raw = build_database_bytes(spec)
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_bytes(raw)
    n_entries = len(spec.corners) * len(spec.widths) * len(spec.coupling_scales)
    return {
        "path": str(destination),
        "bytes": len(raw),
        "entries": n_entries,
        "corners": len(spec.corners),
        "widths": list(sorted(spec.widths)),
        "coupling_scales": list(sorted(spec.coupling_scales)),
    }
