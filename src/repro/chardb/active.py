"""Process-global active database and the db-first table resolver.

The bus layer never receives a database object explicitly — threading one
through every :class:`CharacterizedBus` construction site (CLI commands,
sweep tasks, experiment runners, server workers) would couple all of them to
the chardb.  Instead there is one *active* database per process, resolved in
priority order:

1. an explicit override installed by :func:`set_active_chardb` or the
   :func:`use_chardb` context manager (the experiment task uses this), then
2. the ``REPRO_CHARDB`` environment variable (the CLI sets it, and worker
   processes spawned by the executor / work queue / job server inherit it),
3. otherwise no database: everything falls back to live characterization.

:func:`resolve_table` is the single seam the bus layer calls: database hit →
zero-copy stored table; miss (or no active database) → live
:func:`~repro.bus.characterization.characterize_bus`.  Because the stored
surfaces are bit-identical to live characterization (enforced by the
equivalence suite and the CI drift gate), the fallback changes nothing but
speed, so a partially-covering database is safe by construction.  Hits and
misses are counted on the telemetry hub as ``chardb.hits`` / ``chardb.misses``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any
from collections.abc import Iterator

from repro.chardb.database import CharacterizationDatabase
from repro.chardb.format import ChardbError

__all__ = [
    "set_active_chardb",
    "clear_active_chardb",
    "get_active_chardb",
    "use_chardb",
    "resolve_table",
]

#: Environment variable naming the database file to activate lazily.
ENV_VAR = "REPRO_CHARDB"

class _Unset:
    """Sentinel type: no explicit override installed (defer to the environment)."""


_UNSET = _Unset()

#: Explicit override: _UNSET = defer to the environment, None = force live
#: characterization, otherwise the database to use.
_explicit: CharacterizationDatabase | None | _Unset = _UNSET

#: Databases opened by path, keyed by (path, mtime_ns, size) so a rebuilt
#: file is re-opened instead of served stale.  Entries stay open for the
#: process lifetime; a sweep activating the same artifact hundreds of times
#: parses its index exactly once per worker.
_open_cache: dict[Any, CharacterizationDatabase] = {}


def _open_cached(path: str) -> CharacterizationDatabase:
    try:
        stat = os.stat(path)
        key = (os.path.realpath(path), stat.st_mtime_ns, stat.st_size)
    except OSError as error:
        raise ChardbError(f"cannot activate chardb {path!r}: {error}") from error
    database = _open_cache.get(key)
    if database is None:
        try:
            database = CharacterizationDatabase.open(path)
        except ChardbError as error:
            raise ChardbError(f"cannot activate chardb {path!r}: {error}") from error
        _open_cache[key] = database
    return database


def set_active_chardb(database: CharacterizationDatabase | None) -> None:
    """Install an explicit active database (``None`` forces live characterization)."""
    global _explicit
    _explicit = database


def clear_active_chardb() -> None:
    """Drop any explicit override and defer to the environment again."""
    global _explicit
    _explicit = _UNSET


def get_active_chardb() -> CharacterizationDatabase | None:
    """The database surface lookups should try first, or ``None``.

    An unreadable or corrupt path in ``REPRO_CHARDB`` raises
    :class:`ChardbError` — a requested database that cannot be used must fail
    loudly, not silently fall back to live characterization.
    """
    if not isinstance(_explicit, _Unset):
        return _explicit
    path = os.environ.get(ENV_VAR)
    if not path:
        return None
    return _open_cached(path)


@contextmanager
def use_chardb(
    source: CharacterizationDatabase | str | Path | None,
) -> Iterator[CharacterizationDatabase | None]:
    """Scope an explicit active database to a ``with`` block.

    ``source`` may be an open database, a path (opened through the process
    cache, so repeated activation of the same artifact is O(1)), or ``None``
    to force live characterization inside the block.
    """
    global _explicit
    if isinstance(source, (str, Path)):
        database: CharacterizationDatabase | None = _open_cached(str(source))
    else:
        database = source
    previous = _explicit
    set_active_chardb(database)
    try:
        yield database
    finally:
        _explicit = previous


def resolve_table(design: Any, corner: Any, grid: Any = None):
    """A delay/energy table for (design, corner, grid): stored if available.

    This is the single seam between the bus layer and the database.  With an
    active database and a matching entry the stored surfaces are returned
    (zero-copy, no circuit-model evaluation); otherwise the live
    characterization path runs.
    """
    database = get_active_chardb()
    if database is not None:
        table = database.find_table(design, corner, grid)
        from repro.telemetry import get_telemetry

        if table is not None:
            get_telemetry().count("chardb.hits")
            return table
        get_telemetry().count("chardb.misses")
    from repro.bus.characterization import characterize_bus

    return characterize_bus(design, corner, grid)
