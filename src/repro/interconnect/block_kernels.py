"""Vectorized block-simulation kernels over integer *lanes*.

The scalar reference kernels in :mod:`repro.interconnect.crosstalk` classify
every wire of every cycle through ``(n_cycles, n_wires)`` float64 temporaries
-- dozens of bytes touched per wire per cycle.  This module re-derives the
same three per-cycle statistics (worst coupling factor, toggle count,
coupling-energy weight) from the bus words held as machine integers, one
*lane* per cycle:

* a bus word of ``n_bits <= 32`` is one little-endian ``uint32``; wider buses
  (up to 64 wires) use ``uint64``.  Wire ``i`` is bit ``i``, exactly the
  ``bitorder="little"`` convention of the packed trace representation, so a
  packed chunk reinterprets as lanes with no per-bit work at all.
* neighbour relations become single-instruction shifts: the left neighbour of
  every wire simultaneously is ``lanes << 1``, the second-right neighbour is
  ``lanes >> 2``, and shield adjacencies are AND masks.

Per victim wire the effective coupling factor of the scalar model is

    ``lambda = p + w * (q - 2)``   with
    ``p = 2 + (#opposite - #same)`` over the two near neighbours and
    ``q = 2 + (#opposite - #same)`` over the two second neighbours,

so each wire's *score* ``8 * p + q`` (an integer in ``0..36``) determines its
factor through a small lookup table whose values are computed with the
same float64 operations as the scalar path -- which is what makes the block
kernels **bit-identical** to it, clipping included.  Whenever the score order
agrees with the factor order (any ``secondary_weight <= 0.25``, including the
default 0.15), the per-cycle worst factor is just ``table[max(score)]``; a
non-monotone weight first remaps scores through a rank table so the maximum
is still taken on integers.

Bit-level identities used (``t`` = per-wire transition in ``{-1, 0, +1}``):

* ``toggled = word_new XOR word_old`` (``|t|`` as a bitplane),
* a toggling pair switches in *opposite* directions iff their new values
  differ (``dir = word_new``), and in the *same* direction otherwise,
* ``(t_i - t_j)^2 = tog_i + tog_j + 2 * opp_ij - 2 * same_ij`` for the
  coupling-energy weight of an adjacent pair.

Buses wider than 64 wires (no such design exists in the repo, but the model
allows them) and big-endian hosts fall back to the scalar kernels -- see
:func:`lanes_supported`.
"""

from __future__ import annotations

import sys
from functools import lru_cache

import numpy as np

from repro.interconnect.crosstalk import NeighborTopology

__all__ = [
    "lanes_supported",
    "lanes_from_packed",
    "block_statistics_arrays",
    "block_worst_coupling",
    "block_toggle_counts",
    "block_coupling_energy_weights",
    "coupling_score_tables",
    "CouplingScoreTables",
]

#: The lane layout splices packed little-bitorder bytes directly into machine
#: integers, which only lines up on little-endian hosts.
_LITTLE_ENDIAN = sys.byteorder == "little"

#: Largest bus width a single integer lane can hold.
MAX_LANE_BITS = 64

#: Number of distinct per-wire scores: ``8 * p + q`` with ``p, q`` in 0..4.
_N_SCORES = 8 * 4 + 4 + 1


def lanes_supported(n_bits: int) -> bool:
    """Whether the lane kernels can run for an ``n_bits``-wide bus."""
    return _LITTLE_ENDIAN and 0 < n_bits <= MAX_LANE_BITS


def lanes_from_packed(packed: np.ndarray) -> np.ndarray:
    """Reinterpret packed trace bytes as one integer lane per bus word.

    ``packed`` is the ``(n_words, n_bytes)`` uint8 array of the packed trace
    representation (wire ``i`` -> byte ``i // 8``, bit ``i % 8``).  Buses up
    to 32 wires become uint32 lanes, wider ones uint64; byte widths that do
    not fill a lane are zero-padded (the padding bits never toggle, so every
    kernel ignores them).
    """
    packed = np.asarray(packed, dtype=np.uint8)
    n_words, n_bytes = packed.shape
    lane_bytes = 4 if n_bytes <= 4 else 8
    if n_bytes > 8:
        raise ValueError(f"lanes support at most {MAX_LANE_BITS} wires, got {n_bytes} bytes")
    dtype = np.uint32 if lane_bytes == 4 else np.uint64
    if n_bytes == lane_bytes:
        buffer = np.ascontiguousarray(packed)
    else:
        buffer = np.zeros((n_words, lane_bytes), dtype=np.uint8)
        buffer[:, :n_bytes] = packed
    return buffer.view(dtype).reshape(n_words)


def _wire_mask(bits: np.ndarray, dtype: type) -> np.number:
    """An integer lane with bit ``i`` set where ``bits[i]`` is true."""
    value = 0
    for index in np.nonzero(np.asarray(bits, dtype=bool))[0]:
        value |= 1 << int(index)
    return dtype(value)


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount(lanes: np.ndarray) -> np.ndarray:
        """Per-lane population count as int64."""
        return np.bitwise_count(lanes).astype(np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POPCOUNT8 = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
        axis=1
    ).astype(np.uint16)

    def _popcount(lanes: np.ndarray) -> np.ndarray:
        as_bytes = lanes.reshape(-1, 1).view(np.uint8)
        return _POPCOUNT8[as_bytes].sum(axis=1).astype(np.int64)


def _unpack_plane(plane: np.ndarray, n_bits: int) -> np.ndarray:
    """One lane bitplane as an ``(n, n_bits)`` uint8 0/1 array."""
    as_bytes = np.ascontiguousarray(plane).view(np.uint8).reshape(len(plane), -1)
    return np.unpackbits(as_bytes, axis=1, count=n_bits, bitorder="little")


class CouplingScoreTables:
    """Score -> coupling-factor lookup tables of one topology.

    ``value_by_score`` maps a per-wire score ``8 * p + q`` straight to the
    clipped float64 coupling factor.  ``monotone`` says whether that mapping
    is non-decreasing over attainable scores, in which case the per-cycle
    worst factor is ``value_by_score[scores.max()]``; otherwise
    ``rank_by_score`` / ``value_by_rank`` provide an order-preserving integer
    remap so the maximum is still taken on small integers.
    """

    __slots__ = ("monotone", "value_by_score", "rank_by_score", "value_by_rank")

    def __init__(
        self,
        monotone: bool,
        value_by_score: np.ndarray,
        rank_by_score: np.ndarray,
        value_by_rank: np.ndarray,
    ) -> None:
        self.monotone = monotone
        self.value_by_score = value_by_score
        self.rank_by_score = rank_by_score
        self.value_by_rank = value_by_rank


@lru_cache(maxsize=64)
def _score_tables(
    secondary_weight: float, max_coupling_factor: float
) -> CouplingScoreTables:
    """Build (and cache) the score tables for one (weight, clip-bound) pair."""
    weight = np.float64(secondary_weight)
    values = np.zeros(_N_SCORES, dtype=np.float64)
    attainable = np.zeros(_N_SCORES, dtype=bool)
    for p in range(5):
        for q in range(5):
            # The same float64 expression the scalar kernel evaluates
            # elementwise; the secondary term is skipped (not multiplied by
            # zero) when the weight is non-positive, exactly as there.
            primary = np.float64(p)
            if secondary_weight > 0.0:
                raw = primary + weight * (np.float64(q) - np.float64(2.0))
            else:
                raw = primary
            score = 8 * p + q
            values[score] = np.clip(raw, 0.0, max_coupling_factor)
            attainable[score] = True
    # Unattainable scores (q in 5..7) inherit the previous value so a plain
    # monotone scan over the table stays meaningful; they are never produced.
    for score in range(1, _N_SCORES):
        if not attainable[score]:
            values[score] = values[score - 1]

    monotone = bool(np.all(np.diff(values) >= 0.0))
    order = np.argsort(values, kind="stable")
    rank_by_score = np.zeros(_N_SCORES, dtype=np.uint8)
    value_by_rank = np.zeros(_N_SCORES, dtype=np.float64)
    for rank, score in enumerate(order.tolist()):
        rank_by_score[score] = rank
        value_by_rank[rank] = values[score]
    return CouplingScoreTables(monotone, values, rank_by_score, value_by_rank)


def coupling_score_tables(topology: NeighborTopology) -> CouplingScoreTables:
    """The score tables of a topology (cached by weight and clip bound)."""
    return _score_tables(
        float(topology.secondary_weight), float(topology.max_coupling_factor)
    )


def _neighbor_planes(
    tog: np.ndarray,
    direction: np.ndarray,
    shift: int,
    left: bool,
    mask: np.number,
) -> tuple[np.ndarray, np.ndarray]:
    """(opposite, same) bitplanes of one neighbour relation.

    ``shift`` is the wire distance (1 or 2); ``left`` selects the direction
    (a *left* neighbour's bit reaches the victim's position via ``<<``).
    ``mask`` clears victims whose neighbour is a shield (or absent) -- those
    wires see the neutral quiet factor, i.e. contribute to neither plane.
    """
    if left:
        neighbor_tog = (tog << shift) & mask
        neighbor_dir = direction << shift
    else:
        neighbor_tog = (tog >> shift) & mask
        neighbor_dir = direction >> shift
    both = tog & neighbor_tog
    opposite = both & (direction ^ neighbor_dir)
    same = both ^ opposite
    return opposite, same


def _transition_lanes(lanes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(toggled, new-value) lanes of every transition of a word stream."""
    new = lanes[1:]
    return new ^ lanes[:-1], new


def _class_planes(
    tog: np.ndarray,
    opposite_a: np.ndarray,
    same_a: np.ndarray,
    opposite_b: np.ndarray,
    same_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Bitplanes of the five ``2 + #opp - #same`` classes, descending (4..0).

    The two opposite/same planes of one neighbour pair are mutually exclusive
    per wire, so every *toggling* wire lands in exactly one class; quiet
    wires are in none (all inputs carry the victim-toggles factor).
    """
    class4 = opposite_a & opposite_b
    class3 = (opposite_a ^ opposite_b) & ~(same_a | same_b)
    class1 = (same_a ^ same_b) & ~(opposite_a | opposite_b)
    class0 = same_a & same_b
    class2 = tog & ~(class4 | class3 | class1 | class0)
    return class4, class3, class2, class1, class0


def _pick_highest(planes: tuple[np.ndarray, ...]) -> tuple[np.ndarray, np.ndarray]:
    """Per cycle: the highest non-empty plane's level (4..0) and its wires.

    ``planes`` are descending class bitplanes; returns the uint8 level per
    cycle (0 when every plane is empty) and the lane of wires sitting in
    that level's plane.
    """
    level = np.zeros(len(planes[0]), dtype=np.uint8)
    selected = planes[-1].copy()
    # Walk upward so higher classes overwrite lower ones in one where-chain.
    for rank, plane in enumerate(reversed(planes[:-1]), start=1):
        present = plane != 0
        np.copyto(level, np.uint8(rank), where=present)
        np.copyto(selected, plane, where=present)
    return level, selected


def block_worst_coupling(lanes: np.ndarray, topology: NeighborTopology) -> np.ndarray:
    """Per-cycle worst effective coupling factor, from word lanes.

    Bit-identical to
    :func:`repro.interconnect.crosstalk.worst_coupling_factor_per_cycle` over
    the unpacked transitions of the same words.

    The per-cycle maximum is taken hierarchically, entirely on lanes: wires
    are classified into the five primary (``p``) classes bit-parallel, the
    best class present in each cycle is selected, and the secondary (``q``)
    level is refined among that class's wires only -- the maximum of the
    lexicographic score without ever materialising per-wire scores.  A
    topology whose factor table is not monotone in the score (a
    ``secondary_weight`` above 0.25, where a strong secondary term can beat a
    primary step) cannot use the lexicographic shortcut and falls back to
    explicit per-wire scores remapped through a rank table.
    """
    dtype = lanes.dtype.type
    shift1, shift2 = dtype(1), dtype(2)
    tog, direction = _transition_lanes(lanes)

    left_shield = topology.left_is_shield
    right_shield = topology.right_is_shield
    mask_left = _wire_mask(~left_shield, dtype)
    mask_right = _wire_mask(~right_shield, dtype)
    # A second neighbour is electrically irrelevant when either of the two
    # gaps it acts across is shielded (same masking as the scalar kernel; the
    # wrap-around of its np.roll only ever affects wires the << / >> zero-fill
    # already silences).
    mask_left2 = _wire_mask(~(left_shield | np.roll(left_shield, 1)), dtype)
    mask_right2 = _wire_mask(~(right_shield | np.roll(right_shield, -1)), dtype)

    o_l, s_l = _neighbor_planes(tog, direction, shift1, True, mask_left)
    o_r, s_r = _neighbor_planes(tog, direction, shift1, False, mask_right)
    o_l2, s_l2 = _neighbor_planes(tog, direction, shift2, True, mask_left2)
    o_r2, s_r2 = _neighbor_planes(tog, direction, shift2, False, mask_right2)

    tables = coupling_score_tables(topology)
    if tables.monotone:
        p_planes = _class_planes(tog, o_l, s_l, o_r, s_r)
        p_level, p_wires = _pick_highest(p_planes)
        q_planes = _class_planes(tog, o_l2, s_l2, o_r2, s_r2)
        q_level, _ = _pick_highest(tuple(p_wires & plane for plane in q_planes))
        # Cycles with no toggling wire have every plane empty: both levels
        # resolve to 0, and score 0 maps to the scalar kernel's 0.0.
        score = p_level
        score <<= np.uint8(3)
        score += q_level
        return tables.value_by_score[score]

    # Non-monotone factor table: materialise per-wire scores (uint8) and take
    # the maximum in rank space instead.
    n_bits = topology.n_wires
    score = _unpack_plane(o_l, n_bits)
    score += _unpack_plane(o_r, n_bits)
    score += np.uint8(2)
    score -= _unpack_plane(s_l, n_bits)
    score -= _unpack_plane(s_r, n_bits)
    score <<= np.uint8(3)
    far = _unpack_plane(o_l2, n_bits)
    far += _unpack_plane(o_r2, n_bits)
    far += np.uint8(2)
    far -= _unpack_plane(s_l2, n_bits)
    far -= _unpack_plane(s_r2, n_bits)
    score += far
    # Quiet wires have no delay event: force their score to 0, which the
    # tables map to the same 0.0 the scalar kernel reports for them.
    score *= _unpack_plane(tog, n_bits)
    ranks = tables.rank_by_score[score]
    return tables.value_by_rank[ranks.max(axis=1)]


def block_toggle_counts(lanes: np.ndarray) -> np.ndarray:
    """Toggling wires per cycle (matches :func:`crosstalk.toggle_counts`)."""
    tog, _ = _transition_lanes(lanes)
    return _popcount(tog).astype(np.float64)


def block_coupling_energy_weights(
    lanes: np.ndarray, topology: NeighborTopology
) -> np.ndarray:
    """Per-cycle coupling-energy weight (matches the scalar kernel exactly).

    Same integer identity as
    :func:`repro.interconnect.crosstalk.packed_coupling_energy_weights`, with
    popcounts taken on whole lanes instead of byte rows.
    """
    dtype = lanes.dtype.type
    shift1 = dtype(1)
    tog, direction = _transition_lanes(lanes)

    pair_mask = np.zeros(topology.n_wires, dtype=bool)
    pair_mask[:-1] = ~topology.right_is_shield[:-1]
    pair_bits = _wire_mask(pair_mask, dtype)
    left_bits = _wire_mask(topology.left_is_shield, dtype)
    right_bits = _wire_mask(topology.right_is_shield, dtype)

    upper_tog = tog >> shift1
    both = tog & upper_tog
    opposite = both & (direction ^ (direction >> shift1))
    same = both ^ opposite

    weights = _popcount(tog & pair_bits)
    weights += _popcount(upper_tog & pair_bits)
    weights -= 2 * _popcount(same & pair_bits)
    weights += 2 * _popcount(opposite & pair_bits)
    weights += _popcount(tog & left_bits)
    weights += _popcount(tog & right_bits)
    return weights.astype(np.float64)


def block_statistics_arrays(
    packed: np.ndarray, topology: NeighborTopology
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(worst_coupling, toggles, coupling_weights) of one packed word block.

    The vectorized engine's whole-chunk entry point: one lane conversion,
    three kernels, no per-cycle Python.  Each array is bit-identical to its
    scalar counterpart in :class:`repro.bus.bus_model.TraceStatistics`.
    """
    packed = np.asarray(packed, dtype=np.uint8)
    expected_bytes = (topology.n_wires + 7) // 8
    if packed.shape[1] != expected_bytes:
        raise ValueError(
            f"packed width {packed.shape[1]} does not match topology "
            f"({topology.n_wires} wires, {expected_bytes} bytes)"
        )
    lanes = lanes_from_packed(packed)
    return (
        block_worst_coupling(lanes, topology),
        block_toggle_counts(lanes),
        block_coupling_energy_weights(lanes, topology),
    )
