"""Elmore-style delay coefficients of a repeated, coupled bus wire.

For the Miller-factor abstraction used throughout this library, the delay of
a repeated wire is an *affine* function of the effective coupling factor
``lambda``::

    delay(Vdd, lambda) = d0(Vdd) + lambda * d1(Vdd)

where ``d0`` collects the driver, ground-capacitance and receiver terms and
``d1`` is the sensitivity to one unit of Miller-factored coupling
capacitance.  This module computes the two coefficients for a bus built from
``n_segments`` identical repeater stages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.delay_model import DISTRIBUTED_RC_FACTOR, LUMPED_RC_FACTOR
from repro.interconnect.parasitics import SegmentParasitics
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BusDelayCoefficients:
    """Affine delay model ``delay = base + coupling_factor * per_coupling``."""

    base: float
    per_coupling: float

    def delay(self, coupling_factor: float) -> float:
        """Evaluate the delay for an effective coupling factor."""
        return self.base + coupling_factor * self.per_coupling

    @property
    def worst_case(self) -> float:
        """Delay of the canonical worst-case pattern (``lambda = 4``)."""
        return self.delay(4.0)


def segment_delay_coefficients(
    driver_resistance: float,
    segment: SegmentParasitics,
    driver_self_capacitance: float,
    receiver_capacitance: float,
) -> BusDelayCoefficients:
    """Delay coefficients of a single repeater stage.

    The stage is a driver of effective resistance ``driver_resistance``
    (with self-loading ``driver_self_capacitance``) driving a distributed RC
    wire segment terminated by ``receiver_capacitance`` (the next repeater's
    gate or the receiving flip-flop input).
    """
    check_positive("driver_resistance", driver_resistance, strict=False)
    base = (
        LUMPED_RC_FACTOR
        * driver_resistance
        * (driver_self_capacitance + segment.ground_capacitance + receiver_capacitance)
        + segment.resistance
        * (
            DISTRIBUTED_RC_FACTOR * segment.ground_capacitance
            + LUMPED_RC_FACTOR * receiver_capacitance
        )
    )
    per_coupling = (
        LUMPED_RC_FACTOR * driver_resistance + DISTRIBUTED_RC_FACTOR * segment.resistance
    ) * segment.coupling_capacitance
    return BusDelayCoefficients(base=base, per_coupling=per_coupling)


def bus_delay_coefficients(
    driver_resistance: float,
    segment: SegmentParasitics,
    n_segments: int,
    driver_self_capacitance: float,
    repeater_gate_capacitance: float,
    receiver_capacitance: float,
) -> BusDelayCoefficients:
    """Delay coefficients of a full bus wire built from identical stages.

    All but the last stage drive the next repeater's gate; the last stage
    drives the receiving flip-flop input.  The per-coupling sensitivity of
    each stage is identical because the wire segments are identical.
    """
    if n_segments <= 0:
        raise ValueError(f"n_segments must be positive, got {n_segments}")
    internal = segment_delay_coefficients(
        driver_resistance, segment, driver_self_capacitance, repeater_gate_capacitance
    )
    final = segment_delay_coefficients(
        driver_resistance, segment, driver_self_capacitance, receiver_capacitance
    )
    base = internal.base * (n_segments - 1) + final.base
    per_coupling = internal.per_coupling * (n_segments - 1) + final.per_coupling
    return BusDelayCoefficients(base=base, per_coupling=per_coupling)
