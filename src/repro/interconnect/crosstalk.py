"""Crosstalk / neighbour-switching-pattern modelling.

Delay on a victim wire depends on what its lateral neighbours do in the same
cycle (paper Fig. 9).  The standard Miller-factor abstraction is used:

* a neighbour switching in the *opposite* direction contributes its coupling
  capacitance twice (factor 2),
* a *quiet* neighbour (or a grounded shield) contributes it once (factor 1),
* a neighbour switching in the *same* direction contributes nothing
  (factor 0).

The per-wire *effective coupling factor* ``lambda`` is the sum over both
neighbours, so the worst case is ``lambda = 4`` (paper Eq. 1: ``Cg + 4 Cc``)
and the next-worst canonical case is ``lambda = 3`` (one opposite, one quiet;
the difference of ``R x Cc`` in Eq. 2).

A small *secondary* correction accounts for how fast the aggressors
themselves switch (their own far-side neighbours): an aggressor that is
simultaneously fighting its other neighbour transitions more slowly and
injects its charge over a longer window, slightly reducing its impact on the
victim.  This second-order term spreads the five canonical delay classes into
a quasi-continuum, which reproduces the gradual error-rate-vs-voltage ramp in
Fig. 4 rather than a staircase.

All functions are vectorised with numpy over cycles so that multi-million
cycle traces are processed in a handful of array operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_fraction

#: Miller factor of a neighbour switching opposite to the victim.
MILLER_OPPOSITE = 2.0
#: Miller factor of a quiet neighbour or a grounded shield.
MILLER_QUIET = 1.0
#: Miller factor of a neighbour switching with the victim.
MILLER_SAME = 0.0


class SwitchingPattern(enum.Enum):
    """Canonical victim/aggressor patterns from the paper's Fig. 9."""

    #: Both aggressors switch opposite to the victim: ``Cg + 4 Cc``.
    WORST_CASE = "pattern_i"
    #: One aggressor opposite, one quiet: ``Cg + 3 Cc`` (Eq. 2 difference R*Cc).
    NEXT_WORST = "pattern_ii"
    #: Both aggressors quiet: ``Cg + 2 Cc``.
    NEUTRAL = "quiet_neighbours"
    #: Both aggressors switch with the victim: ``Cg``.
    BEST_CASE = "in_phase"


#: Effective coupling factor (lambda) of each canonical pattern.
PATTERN_COUPLING_FACTORS = {
    SwitchingPattern.WORST_CASE: 4.0,
    SwitchingPattern.NEXT_WORST: 3.0,
    SwitchingPattern.NEUTRAL: 2.0,
    SwitchingPattern.BEST_CASE: 0.0,
}


@dataclass(frozen=True)
class NeighborTopology:
    """Adjacency structure of the bus wires, including shields.

    Attributes
    ----------
    n_wires:
        Number of signal wires (32 for the paper's bus).
    left_is_shield / right_is_shield:
        Boolean arrays marking wires whose left/right physical neighbour is a
        grounded shield (or the routing-channel edge) rather than another
        signal wire.
    secondary_weight:
        Weight of the second-order (aggressor-speed) correction to the
        effective coupling factor.  Zero disables the correction and recovers
        the pure five-class Miller model.
    """

    n_wires: int
    left_is_shield: np.ndarray
    right_is_shield: np.ndarray
    secondary_weight: float = 0.15

    def __post_init__(self) -> None:
        if self.n_wires <= 0:
            raise ValueError(f"n_wires must be positive, got {self.n_wires}")
        check_fraction("secondary_weight", self.secondary_weight)
        for name in ("left_is_shield", "right_is_shield"):
            value = np.asarray(getattr(self, name), dtype=bool)
            if value.shape != (self.n_wires,):
                raise ValueError(f"{name} must have shape ({self.n_wires},)")
            object.__setattr__(self, name, value)

    @property
    def max_coupling_factor(self) -> float:
        """Largest effective coupling factor any wire can actually experience.

        The repeaters are sized (and the shadow-latch floor is set) against
        this value, so it must bound -- tightly -- everything the cycle-level
        model can produce.  Shields cap the primary term of the wires next to
        them at 3, and a second neighbour that sits across a shield can only
        ever contribute the neutral (quiet) factor, so the attainable maximum
        is computed per wire with the same masking rules the cycle-level model
        applies, then maximised over the bus.  Sizing against a looser bound
        (e.g. a blanket ``4 + 2 w``) would silently over-design the bus and
        hand every workload a few "free" voltage steps that the paper's bus
        does not have.
        """
        primary_max = (
            np.where(self.left_is_shield, MILLER_QUIET, MILLER_OPPOSITE)
            + np.where(self.right_is_shield, MILLER_QUIET, MILLER_OPPOSITE)
        )
        if self.secondary_weight <= 0.0:
            return float(np.max(primary_max))
        left2_valid = ~(self.left_is_shield | np.roll(self.left_is_shield, 1))
        right2_valid = ~(self.right_is_shield | np.roll(self.right_is_shield, -1))
        secondary_max = (
            np.where(left2_valid, MILLER_OPPOSITE, MILLER_QUIET)
            + np.where(right2_valid, MILLER_OPPOSITE, MILLER_QUIET)
            - 2.0
        )
        return float(np.max(primary_max + self.secondary_weight * secondary_max))

    def signal_pair_count(self) -> int:
        """Number of adjacent signal-signal pairs (for energy accounting)."""
        return int(np.count_nonzero(~self.right_is_shield[:-1])) + (
            0 if self.right_is_shield[-1] else 0
        )


def grouped_shield_topology(
    n_wires: int, shield_group: int, secondary_weight: float = 0.15
) -> NeighborTopology:
    """Topology of a bus with a shield inserted after every ``shield_group`` wires.

    This matches the paper's Fig. 3 layout (a shield wire after every 4 signal
    wires, plus shields at both edges of the bus).
    """
    if shield_group <= 0:
        raise ValueError(f"shield_group must be positive, got {shield_group}")
    positions = np.arange(n_wires)
    left_is_shield = positions % shield_group == 0
    right_is_shield = positions % shield_group == shield_group - 1
    # The outermost wires always see a shield (or the channel edge).
    left_is_shield = left_is_shield | (positions == 0)
    right_is_shield = right_is_shield | (positions == n_wires - 1)
    return NeighborTopology(
        n_wires=n_wires,
        left_is_shield=left_is_shield,
        right_is_shield=right_is_shield,
        secondary_weight=secondary_weight,
    )


# --------------------------------------------------------------------------- #
# Vectorised per-cycle computations
# --------------------------------------------------------------------------- #
def transitions_from_values(values: np.ndarray) -> np.ndarray:
    """Per-wire transition direction between consecutive bus values.

    Parameters
    ----------
    values:
        Array of shape ``(n_cycles, n_wires)`` with 0/1 entries: the data
        word driven on the bus in each cycle.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_cycles - 1, n_wires)`` with entries in
        ``{-1, 0, +1}``: falling, quiet or rising transition of each wire.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D (cycles x wires), got shape {values.shape}")
    return values[1:].astype(np.int8) - values[:-1].astype(np.int8)


def _miller_factors(victim: np.ndarray, aggressor: np.ndarray) -> np.ndarray:
    """Miller factor of one aggressor relative to a victim transition.

    Both arguments are arrays in {-1, 0, +1}.  Entries where the victim is
    quiet are returned as MILLER_QUIET but are ignored downstream (a quiet
    victim has no delay event).
    """
    product = victim * aggressor
    factors = np.full(victim.shape, MILLER_QUIET, dtype=np.float64)
    factors[product < 0] = MILLER_OPPOSITE
    factors[product > 0] = MILLER_SAME
    return factors


def effective_coupling_factors(
    transitions: np.ndarray, topology: NeighborTopology
) -> np.ndarray:
    """Effective coupling factor ``lambda`` of every wire in every cycle.

    Entries are only meaningful where the wire itself switches; quiet wires
    are reported with ``lambda = 0`` so they can never dominate the per-cycle
    maximum.
    """
    transitions = np.asarray(transitions)
    n_cycles, n_wires = transitions.shape
    if n_wires != topology.n_wires:
        raise ValueError(
            f"transition width {n_wires} does not match topology ({topology.n_wires})"
        )

    quiet = np.zeros((n_cycles, 1), dtype=transitions.dtype)
    left = np.concatenate([quiet, transitions[:, :-1]], axis=1)
    right = np.concatenate([transitions[:, 1:], quiet], axis=1)
    # Shield neighbours are always quiet regardless of the adjacent signal.
    left = np.where(topology.left_is_shield[None, :], 0, left)
    right = np.where(topology.right_is_shield[None, :], 0, right)

    primary = _miller_factors(transitions, left) + _miller_factors(transitions, right)

    if topology.secondary_weight > 0.0:
        left2 = np.concatenate([quiet, quiet, transitions[:, :-2]], axis=1)[:, :n_wires]
        right2 = np.concatenate([transitions[:, 2:], quiet, quiet], axis=1)[:, :n_wires]
        # A second neighbour beyond a shield is electrically irrelevant: mask
        # it out when the victim's near neighbour is a shield, or when the
        # near neighbour itself is separated from the second neighbour by one.
        left2 = np.where(
            (topology.left_is_shield | np.roll(topology.left_is_shield, 1))[None, :], 0, left2
        )
        right2 = np.where(
            (topology.right_is_shield | np.roll(topology.right_is_shield, -1))[None, :], 0, right2
        )
        secondary = (
            _miller_factors(transitions, left2) + _miller_factors(transitions, right2) - 2.0
        )
        factors = primary + topology.secondary_weight * secondary
    else:
        factors = primary

    factors = np.where(transitions != 0, factors, 0.0)
    return np.clip(factors, 0.0, topology.max_coupling_factor)


def worst_coupling_factor_per_cycle(
    transitions: np.ndarray, topology: NeighborTopology
) -> np.ndarray:
    """Largest effective coupling factor among switching wires, per cycle.

    Cycles with no switching wire report 0.0 (no delay event, hence no
    possible timing error).
    """
    factors = effective_coupling_factors(transitions, topology)
    return factors.max(axis=1)


def coupling_energy_weights(
    transitions: np.ndarray, topology: NeighborTopology
) -> np.ndarray:
    """Per-cycle coupling-energy weight ``sum of r^2`` over adjacent pairs.

    ``r`` is the relative transition of a pair in units of Vdd: 0, 1 or 2 for
    signal-signal pairs and 0 or 1 for wire-shield pairs.  Multiplying by
    ``0.5 Cc Vdd^2`` gives the coupling energy of the cycle.
    """
    transitions = np.asarray(transitions, dtype=np.int16)
    n_wires = transitions.shape[1]
    if n_wires != topology.n_wires:
        raise ValueError(
            f"transition width {n_wires} does not match topology ({topology.n_wires})"
        )
    weights = np.zeros(transitions.shape[0], dtype=np.float64)
    # Signal-signal pairs: wires i and i+1 that are not separated by a shield.
    pair_mask = ~topology.right_is_shield[:-1]
    if np.any(pair_mask):
        rel = transitions[:, :-1][:, pair_mask] - transitions[:, 1:][:, pair_mask]
        weights += np.sum(rel.astype(np.float64) ** 2, axis=1)
    # Wire-shield pairs: every shield adjacency contributes the wire's own swing.
    shield_sides = topology.left_is_shield.astype(np.float64) + topology.right_is_shield.astype(
        np.float64
    )
    weights += np.sum((transitions.astype(np.float64) ** 2) * shield_sides[None, :], axis=1)
    return weights


def toggle_counts(transitions: np.ndarray) -> np.ndarray:
    """Number of toggling wires per cycle."""
    return np.count_nonzero(np.asarray(transitions), axis=1).astype(np.float64)


# --------------------------------------------------------------------------- #
# Bit-packed computations (XOR + popcount on packbits arrays)
# --------------------------------------------------------------------------- #
# The streaming pipeline stores traces bit-packed (``bitorder="little"``:
# wire i -> byte i//8, bit i%8, see :mod:`repro.trace.trace`).  Toggle counts
# and coupling-energy weights are pure functions of which wires toggle and in
# which direction relative to their neighbours, so both reduce to bitwise
# AND/XOR/shift expressions counted with an 8-bit popcount lookup -- no 0/1
# unpacking, 8x less data touched.  The identity used for the pair weights:
# with per-wire transitions t in {-1, 0, +1},
#
#     (t_i - t_{i+1})^2 = tog_i + tog_j - 2*same_ij + 2*opp_ij
#
# where ``tog`` = |t|, ``same`` = both toggling in the same direction and
# ``opp`` = both toggling in opposite directions -- all 0/1 quantities with
# direct bitwise forms (direction = the new wire value).

#: Popcount of every byte value (uint16 so row sums cannot overflow).
_POPCOUNT8 = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
    axis=1
).astype(np.uint16)


def _pack_wire_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a per-wire boolean mask into the little-bitorder byte layout."""
    return np.packbits(np.asarray(mask, dtype=np.uint8), bitorder="little")


def _popcount_rows(bytes_array: np.ndarray) -> np.ndarray:
    """Per-row popcount of a 2-D byte array."""
    return _POPCOUNT8[bytes_array].sum(axis=1).astype(np.int64)


def _shift_to_lower_wire(packed: np.ndarray) -> np.ndarray:
    """Place each wire's bit at the position of the wire one index below.

    With the little bit order, the value of wire ``i + 1`` lands at bit
    position ``i``: a right shift within each byte with the carry bit pulled
    in from the following byte.
    """
    shifted = packed >> 1
    if packed.shape[-1] > 1:
        shifted[..., :-1] |= (packed[..., 1:] & 1) << 7
    return shifted


def packed_toggle_counts(packed_values: np.ndarray) -> np.ndarray:
    """Toggling wires per cycle, from packed bus words.

    ``packed_values`` has shape ``(n_words, n_bytes)``; the result has one
    entry per transition (``n_words - 1``).  Bit-identical to
    :func:`toggle_counts` over the unpacked transitions.
    """
    packed_values = np.asarray(packed_values, dtype=np.uint8)
    toggled = packed_values[1:] ^ packed_values[:-1]
    return _popcount_rows(toggled).astype(np.float64)


def packed_coupling_energy_weights(
    packed_values: np.ndarray, topology: NeighborTopology
) -> np.ndarray:
    """Per-cycle coupling-energy weight from packed bus words.

    Bit-identical to :func:`coupling_energy_weights` over the unpacked
    transitions (both count the same integer quantities).
    """
    packed_values = np.asarray(packed_values, dtype=np.uint8)
    expected_bytes = (topology.n_wires + 7) // 8
    if packed_values.shape[1] != expected_bytes:
        raise ValueError(
            f"packed width {packed_values.shape[1]} does not match topology "
            f"({topology.n_wires} wires, {expected_bytes} bytes)"
        )
    new = packed_values[1:]
    toggled = new ^ packed_values[:-1]

    # Signal-signal pairs (i, i+1): bit i marks the pair's lower wire.
    pair_mask = np.zeros(topology.n_wires, dtype=bool)
    pair_mask[:-1] = ~topology.right_is_shield[:-1]
    pair_bits = _pack_wire_mask(pair_mask)

    upper_toggled = _shift_to_lower_wire(toggled)
    both = toggled & upper_toggled
    direction_differs = new ^ _shift_to_lower_wire(new)
    opposite = both & direction_differs
    same = both & ~direction_differs

    weights = (
        _popcount_rows(toggled & pair_bits)
        + _popcount_rows(upper_toggled & pair_bits)
        - 2 * _popcount_rows(same & pair_bits)
        + 2 * _popcount_rows(opposite & pair_bits)
    )

    # Wire-shield pairs: every shield adjacency contributes the wire's own swing.
    left_bits = _pack_wire_mask(topology.left_is_shield)
    right_bits = _pack_wire_mask(topology.right_is_shield)
    weights = weights + _popcount_rows(toggled & left_bits) + _popcount_rows(
        toggled & right_bits
    )
    return weights.astype(np.float64)


def classify_pattern(victim: int, left: int, right: int) -> tuple[SwitchingPattern, float]:
    """Classify a single victim/aggressor combination (scalar helper).

    Returns the canonical :class:`SwitchingPattern` (best match by coupling
    factor) and the exact primary coupling factor.  Mostly used in tests and
    documentation examples.
    """
    if victim == 0:
        return SwitchingPattern.NEUTRAL, 0.0
    factor = float(
        _miller_factors(np.array([victim]), np.array([left]))[0]
        + _miller_factors(np.array([victim]), np.array([right]))[0]
    )
    if factor >= 4.0:
        return SwitchingPattern.WORST_CASE, factor
    if factor >= 3.0:
        return SwitchingPattern.NEXT_WORST, factor
    if factor <= 0.0:
        return SwitchingPattern.BEST_CASE, factor
    return SwitchingPattern.NEUTRAL, factor
