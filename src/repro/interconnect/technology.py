"""Technology node descriptions.

A :class:`TechnologyNode` bundles everything the bus characterisation needs
about a process: the nominal supply, the global-metal wire geometry defaults,
the conductor resistivity, and the device parameters of the repeaters.

The paper's vehicle is a 0.13 um node (:data:`TECH_130NM`).  Scaled nodes used
by the Section 6 technology-scaling discussion are produced by
:func:`repro.interconnect.scaling.scale_technology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.circuit.mosfet import TransistorParams
from repro.interconnect.geometry import WireGeometry
from repro.utils.units import um
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TechnologyNode:
    """Process technology description used to build and characterise a bus.

    Attributes
    ----------
    name:
        Human-readable node name, e.g. ``"130nm"``.
    feature_size:
        Drawn feature size in metres (0.13 um for the paper's node).
    nominal_vdd:
        Nominal supply voltage in volts.
    wire_width / wire_spacing / wire_thickness / dielectric_height:
        Default global-metal geometry at minimum pitch, in metres.
    resistivity:
        Effective conductor resistivity (including barriers), ohm-metres.
    dielectric_constant:
        Relative permittivity of the inter-layer dielectric.
    transistor:
        Device parameters of the repeater inverters.
    """

    name: str
    feature_size: float
    nominal_vdd: float
    wire_width: float
    wire_spacing: float
    wire_thickness: float
    dielectric_height: float
    resistivity: float
    dielectric_constant: float
    transistor: TransistorParams = field(default_factory=TransistorParams)

    def __post_init__(self) -> None:
        check_positive("feature_size", self.feature_size)
        check_positive("nominal_vdd", self.nominal_vdd)
        check_positive("wire_width", self.wire_width)
        check_positive("wire_spacing", self.wire_spacing)
        check_positive("wire_thickness", self.wire_thickness)
        check_positive("dielectric_height", self.dielectric_height)
        check_positive("resistivity", self.resistivity)
        check_positive("dielectric_constant", self.dielectric_constant)

    @property
    def minimum_pitch(self) -> float:
        """Minimum global-metal pitch (width + spacing)."""
        return self.wire_width + self.wire_spacing

    def wire_geometry(self, length: float) -> WireGeometry:
        """Default minimum-pitch wire geometry for a wire of the given length."""
        return WireGeometry(
            width=self.wire_width,
            spacing=self.wire_spacing,
            thickness=self.wire_thickness,
            dielectric_height=self.dielectric_height,
            length=length,
        )

    def with_transistor(self, transistor: TransistorParams) -> TechnologyNode:
        """Return a copy of this node with different device parameters."""
        return replace(self, transistor=transistor)


#: The paper's 0.13 um node: 1.2 V nominal supply, 0.8 um minimum global pitch.
TECH_130NM = TechnologyNode(
    name="130nm",
    feature_size=um(0.13),
    nominal_vdd=1.2,
    wire_width=um(0.4),
    wire_spacing=um(0.4),
    wire_thickness=um(0.9),
    dielectric_height=um(0.65),
    resistivity=2.2e-8,
    dielectric_constant=3.6,
)
