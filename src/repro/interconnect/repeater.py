"""Repeater (buffer) modelling and sizing.

The paper's bus is divided into 1.5 mm segments by repeaters that are "sized
so that the maximum delay ... on the bus is 600 ps" at the worst-case PVT
corner and switching pattern.  :func:`size_for_target_delay` reproduces that
design step: it finds the smallest repeater size whose worst-case delay meets
the target, mirroring the typical design philosophy of spending no more
repeater area (and energy) than the constraint requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import optimize

from repro.circuit.delay_model import DriverDelayModel
from repro.circuit.pvt import PVTCorner
from repro.interconnect.elmore import BusDelayCoefficients, bus_delay_coefficients
from repro.interconnect.parasitics import SegmentParasitics
from repro.utils.validation import check_positive

#: Largest repeater size (in multiples of a minimum inverter) the sizer explores.
MAX_REPEATER_SIZE = 600.0


@dataclass(frozen=True)
class RepeaterChain:
    """A uniform chain of repeaters along one bus wire.

    Attributes
    ----------
    n_segments:
        Number of repeated wire segments (the paper uses 4 x 1.5 mm = 6 mm).
    size:
        Repeater drive strength as a multiple of the minimum inverter.
    receiver_capacitance:
        Input capacitance of the receiving flip-flop at the end of the wire.
    """

    n_segments: int
    size: float
    receiver_capacitance: float = 4.0e-15

    def __post_init__(self) -> None:
        if self.n_segments <= 0:
            raise ValueError(f"n_segments must be positive, got {self.n_segments}")
        check_positive("size", self.size)
        check_positive("receiver_capacitance", self.receiver_capacitance, strict=False)

    def delay_coefficients(
        self,
        vdd: float,
        corner: PVTCorner,
        segment: SegmentParasitics,
        driver_model: DriverDelayModel,
    ) -> BusDelayCoefficients:
        """Affine delay coefficients of the full wire at a supply and corner."""
        resistance = driver_model.driver_resistance(vdd, corner, self.size)
        if math.isinf(resistance):
            return BusDelayCoefficients(base=math.inf, per_coupling=0.0)
        return bus_delay_coefficients(
            driver_resistance=resistance,
            segment=segment,
            n_segments=self.n_segments,
            driver_self_capacitance=driver_model.drain_capacitance(self.size),
            repeater_gate_capacitance=driver_model.gate_capacitance(self.size),
            receiver_capacitance=self.receiver_capacitance,
        )

    def worst_case_delay(
        self,
        vdd: float,
        corner: PVTCorner,
        segment: SegmentParasitics,
        driver_model: DriverDelayModel,
        max_coupling_factor: float = 4.0,
    ) -> float:
        """Delay of the worst-case coupling pattern at a supply and corner."""
        return self.delay_coefficients(vdd, corner, segment, driver_model).delay(
            max_coupling_factor
        )

    def total_repeater_size(self, n_wires: int) -> float:
        """Summed repeater size over the whole bus (for leakage accounting)."""
        return self.size * self.n_segments * n_wires


class RepeaterSizingError(RuntimeError):
    """Raised when no repeater size can meet the requested worst-case delay."""


def size_for_target_delay(
    target_delay: float,
    vdd: float,
    corner: PVTCorner,
    segment: SegmentParasitics,
    driver_model: DriverDelayModel,
    n_segments: int,
    receiver_capacitance: float = 4.0e-15,
    max_coupling_factor: float = 4.0,
) -> RepeaterChain:
    """Find the smallest repeater size meeting ``target_delay`` at the corner.

    The worst-case delay is monotonically decreasing in repeater size until
    self-loading takes over, so the smallest size meeting the target is found
    with a bracketed root search on the decreasing branch.  If even the
    delay-optimal size misses the target the bus cannot be built for this
    clock frequency and :class:`RepeaterSizingError` is raised.
    """
    check_positive("target_delay", target_delay)

    def worst_delay(size: float) -> float:
        chain = RepeaterChain(
            n_segments=n_segments, size=size, receiver_capacitance=receiver_capacitance
        )
        return chain.worst_case_delay(vdd, corner, segment, driver_model, max_coupling_factor)

    # Locate the delay-optimal size (the minimum of the convex delay curve).
    result = optimize.minimize_scalar(
        worst_delay, bounds=(1.0, MAX_REPEATER_SIZE), method="bounded"
    )
    optimal_size = float(result.x)
    optimal_delay = float(result.fun)
    if optimal_delay > target_delay:
        raise RepeaterSizingError(
            f"target delay {target_delay * 1e12:.0f} ps unreachable at corner "
            f"{corner.label}: best achievable is {optimal_delay * 1e12:.0f} ps"
        )

    if worst_delay(1.0) <= target_delay:
        smallest = 1.0
    else:
        smallest = float(
            optimize.brentq(lambda s: worst_delay(s) - target_delay, 1.0, optimal_size)
        )
        # A sliver of margin keeps the design-corner worst case strictly inside
        # the deadline despite the root finder's finite tolerance, so the bus
        # is genuinely error-free at the design point.
        smallest = min(smallest * 1.002, optimal_size)
    return RepeaterChain(
        n_segments=n_segments, size=smallest, receiver_capacitance=receiver_capacitance
    )
