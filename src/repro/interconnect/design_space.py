"""Interconnect design-space exploration: repeaters, segmentation, shielding.

Section 1 of the paper cites repeater-sizing methodologies ([3, 4]) as the
established way to trade bus delay against power at the worst case, and
Section 3 fixes one point in that space for the test vehicle (four 1.5 mm
segments, repeaters sized for 600 ps worst-case).  Section 6 then argues that
layout choices which enlarge the worst-to-typical delay spread make the
error-tolerant DVS bus *more* effective.

This module makes those design-space arguments runnable:

* :func:`explore_repeater_design_space` sweeps segment count and repeater
  size, reporting worst-case delay and worst-case switching energy per point;
* :func:`power_optimal_design` / :func:`delay_optimal_design` pick the
  power-optimal and fastest points, quantifying how much energy the classic
  "just meet the deadline" sizing leaves on the table;
* :func:`run_shield_interval_study` sweeps the shield-insertion interval of
  the paper's Fig. 3 layout, reporting routing-track overhead, worst-case
  delay and the worst-to-typical delay spread that drives DVS gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.circuit.delay_model import DriverDelayModel
from repro.circuit.mosfet import AlphaPowerModel
from repro.circuit.pvt import WORST_CASE_CORNER, PVTCorner
from repro.clocking import PAPER_CLOCKING, ClockingParameters
from repro.interconnect.crosstalk import grouped_shield_topology
from repro.interconnect.parasitics import WireParasitics, extract_parasitics
from repro.interconnect.repeater import (
    MAX_REPEATER_SIZE,
    RepeaterChain,
    RepeaterSizingError,
    size_for_target_delay,
)
from repro.interconnect.technology import TECH_130NM, TechnologyNode
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RepeaterDesignPoint:
    """One (segment count, repeater size) point of the design space.

    Attributes
    ----------
    n_segments / size:
        The configuration.
    worst_case_delay:
        Delay of the worst-case coupling pattern at nominal supply and the
        design corner (seconds).
    worst_case_energy:
        Switching energy of one worst-case cycle on one wire, including the
        repeater parasitics the configuration adds (joules).
    repeater_area:
        Total repeater drive strength per wire (minimum-inverter multiples),
        an area/leakage proxy.
    meets_target:
        Whether ``worst_case_delay`` meets the clocking deadline.
    """

    n_segments: int
    size: float
    worst_case_delay: float
    worst_case_energy: float
    repeater_area: float
    meets_target: bool


@dataclass(frozen=True)
class RepeaterDesignSpace:
    """The explored design space plus the context it was explored in."""

    technology_name: str
    corner: PVTCorner
    target_delay: float
    points: tuple[RepeaterDesignPoint, ...]

    def feasible_points(self) -> tuple[RepeaterDesignPoint, ...]:
        """Points meeting the delay target."""
        return tuple(point for point in self.points if point.meets_target)


def _wire_energy_per_worst_cycle(
    parasitics: WireParasitics,
    length: float,
    chain: RepeaterChain,
    driver_model: DriverDelayModel,
    vdd: float,
    max_coupling_factor: float,
) -> float:
    """Energy of one worst-case switching cycle on one wire of the bus."""
    wire_cap = parasitics.ground_cap_per_meter * length
    repeater_cap = chain.n_segments * (
        driver_model.gate_capacitance(chain.size) + driver_model.drain_capacitance(chain.size)
    )
    coupling_cap = parasitics.coupling_cap_per_meter * length
    effective = wire_cap + repeater_cap + chain.receiver_capacitance + (
        max_coupling_factor * coupling_cap
    )
    return 0.5 * effective * vdd * vdd


def explore_repeater_design_space(
    technology: TechnologyNode = TECH_130NM,
    *,
    length: float = 6.0e-3,
    clocking: ClockingParameters = PAPER_CLOCKING,
    corner: PVTCorner = WORST_CASE_CORNER,
    segment_options: Sequence[int] = (2, 3, 4, 6, 8),
    n_sizes: int = 24,
    shield_group: int = 4,
    n_bits: int = 32,
) -> RepeaterDesignSpace:
    """Sweep repeater count and size for the paper's bus at its design corner.

    Every point reports the worst-case delay and the worst-case switching
    energy, so the classic delay/energy trade-off of repeater insertion can be
    examined directly and the paper's chosen configuration placed on it.
    """
    check_positive("length", length)
    if n_sizes < 2:
        raise ValueError(f"n_sizes must be at least 2, got {n_sizes}")
    parasitics = extract_parasitics(
        technology.wire_geometry(length), technology.resistivity, technology.dielectric_constant
    )
    topology = grouped_shield_topology(n_bits, shield_group)
    driver_model = DriverDelayModel(AlphaPowerModel(technology.transistor))
    vdd = technology.nominal_vdd
    target = clocking.main_deadline
    sizes = np.geomspace(1.0, MAX_REPEATER_SIZE, n_sizes)

    points = []
    for n_segments in segment_options:
        if n_segments <= 0:
            raise ValueError(f"segment counts must be positive, got {n_segments}")
        segment = parasitics.for_length(length / n_segments)
        for size in sizes:
            chain = RepeaterChain(n_segments=n_segments, size=float(size))
            delay = chain.worst_case_delay(
                vdd, corner, segment, driver_model, topology.max_coupling_factor
            )
            energy = _wire_energy_per_worst_cycle(
                parasitics, length, chain, driver_model, vdd, topology.max_coupling_factor
            )
            points.append(
                RepeaterDesignPoint(
                    n_segments=n_segments,
                    size=float(size),
                    worst_case_delay=delay,
                    worst_case_energy=energy,
                    repeater_area=float(size) * n_segments,
                    meets_target=delay <= target,
                )
            )
    return RepeaterDesignSpace(
        technology_name=technology.name,
        corner=corner,
        target_delay=target,
        points=tuple(points),
    )


def delay_optimal_design(space: RepeaterDesignSpace) -> RepeaterDesignPoint:
    """The fastest explored point (what a pure performance target would pick)."""
    return min(space.points, key=lambda point: point.worst_case_delay)


def power_optimal_design(space: RepeaterDesignSpace) -> RepeaterDesignPoint:
    """The lowest-energy point that still meets the delay target.

    This is the configuration the power-optimal repeater-insertion
    methodologies of the paper's references [3, 4] aim for; comparing its
    energy with :func:`delay_optimal_design` shows how much a
    performance-only sizing over-spends.
    """
    feasible = space.feasible_points()
    if not feasible:
        raise RepeaterSizingError(
            f"no explored configuration meets {space.target_delay * 1e12:.0f} ps "
            f"at corner {space.corner.label}"
        )
    return min(feasible, key=lambda point: point.worst_case_energy)


@dataclass(frozen=True)
class ShieldIntervalPoint:
    """One shield-insertion interval of the Fig. 3 layout family.

    Attributes
    ----------
    shield_group:
        Signal wires between shields (the paper uses 4).
    n_tracks:
        Routing tracks needed for the 32-bit bus including its shields.
    max_coupling_factor:
        Attainable worst-case effective coupling factor of the topology.
    repeater_size:
        Repeater size needed to meet the delay target (``None`` when the
        target is unreachable for this layout).
    worst_case_delay:
        Worst-case delay achieved by that sizing (seconds; ``None`` when
        infeasible).
    delay_spread:
        Worst-case minus quiet-pattern delay at nominal supply -- the slack
        the error-tolerant DVS bus can recover at typical data (seconds;
        ``None`` when infeasible).
    """

    shield_group: int
    n_tracks: int
    max_coupling_factor: float
    repeater_size: float | None
    worst_case_delay: float | None
    delay_spread: float | None

    @property
    def feasible(self) -> bool:
        """Whether the delay target is reachable with this shielding."""
        return self.repeater_size is not None

    def as_dict(self) -> dict:
        """Stable JSON-able view of one shield-interval layout."""
        return {
            "shield_group": int(self.shield_group),
            "n_tracks": int(self.n_tracks),
            "max_coupling_factor": round(self.max_coupling_factor, 3),
            "feasible": bool(self.feasible),
            "repeater_size": round(self.repeater_size, 2) if self.feasible else None,
            "worst_case_delay_ps": round(self.worst_case_delay * 1e12, 2)
            if self.worst_case_delay is not None
            else None,
            "delay_spread_ps": round(self.delay_spread * 1e12, 2)
            if self.delay_spread is not None
            else None,
        }


@dataclass(frozen=True)
class ShieldIntervalStudy:
    """Shield-interval sweep results for one technology and clock target."""

    technology_name: str
    corner: PVTCorner
    target_delay: float
    points: tuple[ShieldIntervalPoint, ...]

    def by_group(self, shield_group: int) -> ShieldIntervalPoint:
        """Look up one interval's results."""
        for point in self.points:
            if point.shield_group == shield_group:
                return point
        known = ", ".join(str(point.shield_group) for point in self.points)
        raise KeyError(f"no shield interval {shield_group}; explored: {known}")

    def as_dict(self) -> dict:
        """Stable JSON-able view: one row per explored shield interval."""
        return {
            "technology": self.technology_name,
            "corner": self.corner.label,
            "target_delay_ps": round(self.target_delay * 1e12, 2),
            "points": [point.as_dict() for point in self.points],
        }


def run_shield_interval_study(
    technology: TechnologyNode = TECH_130NM,
    *,
    length: float = 6.0e-3,
    clocking: ClockingParameters = PAPER_CLOCKING,
    corner: PVTCorner = WORST_CASE_CORNER,
    shield_groups: Sequence[int] = (2, 4, 8, 16, 32),
    n_segments: int = 4,
    n_bits: int = 32,
) -> ShieldIntervalStudy:
    """Sweep the shield-insertion interval of the paper's bus layout.

    Fewer shields save routing tracks but raise the attainable worst-case
    coupling factor, which costs worst-case delay (larger repeaters, or an
    unreachable target) while *increasing* the worst-to-typical delay spread
    the DVS scheme feeds on -- the same trade-off Section 6 explores by
    rebalancing Cc/Cg directly.
    """
    parasitics = extract_parasitics(
        technology.wire_geometry(length), technology.resistivity, technology.dielectric_constant
    )
    driver_model = DriverDelayModel(AlphaPowerModel(technology.transistor))
    segment = parasitics.for_length(length / n_segments)
    vdd = technology.nominal_vdd
    target = clocking.main_deadline

    points = []
    for group in shield_groups:
        topology = grouped_shield_topology(n_bits, group)
        n_shields = int(np.ceil(n_bits / group)) + 1
        try:
            chain = size_for_target_delay(
                target_delay=target,
                vdd=vdd,
                corner=corner,
                segment=segment,
                driver_model=driver_model,
                n_segments=n_segments,
                max_coupling_factor=topology.max_coupling_factor,
            )
        except RepeaterSizingError:
            points.append(
                ShieldIntervalPoint(
                    shield_group=group,
                    n_tracks=n_bits + n_shields,
                    max_coupling_factor=topology.max_coupling_factor,
                    repeater_size=None,
                    worst_case_delay=None,
                    delay_spread=None,
                )
            )
            continue
        coefficients = chain.delay_coefficients(vdd, corner, segment, driver_model)
        worst = coefficients.delay(topology.max_coupling_factor)
        quiet = coefficients.delay(0.0)
        points.append(
            ShieldIntervalPoint(
                shield_group=group,
                n_tracks=n_bits + n_shields,
                max_coupling_factor=topology.max_coupling_factor,
                repeater_size=chain.size,
                worst_case_delay=worst,
                delay_spread=worst - quiet,
            )
        )
    return ShieldIntervalStudy(
        technology_name=technology.name,
        corner=corner,
        target_delay=target,
        points=tuple(points),
    )


def format_shield_interval_study(study: ShieldIntervalStudy) -> str:
    """Text table of a shield-interval study (one row per interval)."""
    title = (
        f"Shield-interval study -- {study.technology_name}, corner {study.corner.label}, "
        f"target {study.target_delay * 1e12:.0f} ps"
    )
    header = (
        f"{'shields every':>13} {'tracks':>7} {'max lambda':>10} "
        f"{'repeater':>9} {'worst ps':>9} {'spread ps':>10}"
    )
    lines = [title, header, "-" * len(header)]
    for point in study.points:
        if point.feasible:
            lines.append(
                f"{point.shield_group:>13d} {point.n_tracks:>7d} "
                f"{point.max_coupling_factor:>10.2f} {point.repeater_size:>9.1f} "
                f"{point.worst_case_delay * 1e12:>9.1f} {point.delay_spread * 1e12:>10.1f}"
            )
        else:
            lines.append(
                f"{point.shield_group:>13d} {point.n_tracks:>7d} "
                f"{point.max_coupling_factor:>10.2f} {'--':>9} {'unreachable':>9} {'--':>10}"
            )
    return "\n".join(lines)
