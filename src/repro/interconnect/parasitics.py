"""Parasitic extraction substitute (2-D field-solver analog).

The paper extracts bus capacitances with a 2-D field solver.  Here we use the
standard closed-form decomposition into parallel-plate and fringing terms:

* the area (parallel-plate) capacitance to the planes above and below,
* a fringe term from the wire sidewalls and top/bottom edges, and
* the lateral coupling capacitance to each neighbouring wire, dominated by
  the sidewall parallel-plate term plus a fringe correction.

The absolute accuracy of such formulas is within ~10-15 % of a field solver
for typical global-layer geometries, which is sufficient here because every
result in the paper (and in this reproduction) is normalised to the same
bus's energy at nominal voltage.

The module also provides :func:`scale_coupling_ratio`, implementing the
Section 6 "modified bus": increase the coupling-to-ground capacitance ratio
while keeping the wire resistance and the worst-case effective load
``Cg + 4 Cc`` unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.interconnect.geometry import WireGeometry
from repro.utils.validation import check_positive

#: Vacuum permittivity (F/m).
EPSILON_0 = 8.854e-12


@dataclass(frozen=True)
class WireParasitics:
    """Per-unit-length electrical parameters of one bus wire.

    Attributes
    ----------
    resistance_per_meter:
        Series resistance (ohm/m).
    ground_cap_per_meter:
        Capacitance to the ground planes, both sides combined (F/m).
    coupling_cap_per_meter:
        Capacitance to *each* lateral neighbour (F/m).
    """

    resistance_per_meter: float
    ground_cap_per_meter: float
    coupling_cap_per_meter: float

    def __post_init__(self) -> None:
        check_positive("resistance_per_meter", self.resistance_per_meter)
        check_positive("ground_cap_per_meter", self.ground_cap_per_meter)
        check_positive("coupling_cap_per_meter", self.coupling_cap_per_meter)

    @property
    def coupling_to_ground_ratio(self) -> float:
        """The Cc/Cg ratio that controls the delay spread (paper Eq. 1-2)."""
        return self.coupling_cap_per_meter / self.ground_cap_per_meter

    @property
    def worst_case_cap_per_meter(self) -> float:
        """Effective capacitance of the worst-case pattern, ``Cg + 4 Cc``."""
        return self.ground_cap_per_meter + 4.0 * self.coupling_cap_per_meter

    @property
    def physical_cap_per_meter(self) -> float:
        """Physical (non-Miller) total capacitance, ``Cg + 2 Cc``."""
        return self.ground_cap_per_meter + 2.0 * self.coupling_cap_per_meter

    def for_length(self, length: float) -> SegmentParasitics:
        """Lumped parasitics of a wire segment of the given length."""
        check_positive("length", length)
        return SegmentParasitics(
            resistance=self.resistance_per_meter * length,
            ground_capacitance=self.ground_cap_per_meter * length,
            coupling_capacitance=self.coupling_cap_per_meter * length,
        )


@dataclass(frozen=True)
class SegmentParasitics:
    """Lumped parasitics of one wire segment (between two repeaters)."""

    resistance: float
    ground_capacitance: float
    coupling_capacitance: float

    @property
    def worst_case_capacitance(self) -> float:
        """Effective segment capacitance of the worst-case pattern."""
        return self.ground_capacitance + 4.0 * self.coupling_capacitance


def extract_parasitics(
    geometry: WireGeometry,
    resistivity: float,
    dielectric_constant: float = 3.6,
) -> WireParasitics:
    """Closed-form parasitic extraction for a wire between two ground planes.

    Parameters
    ----------
    geometry:
        Wire cross-section and spacing.
    resistivity:
        Conductor resistivity in ohm-metres (copper with barrier: ~2.2e-8).
    dielectric_constant:
        Relative permittivity of the inter-layer dielectric.

    Returns
    -------
    WireParasitics
        Per-unit-length resistance, ground capacitance (both planes) and
        per-neighbour coupling capacitance.
    """
    check_positive("resistivity", resistivity)
    check_positive("dielectric_constant", dielectric_constant)

    eps = EPSILON_0 * dielectric_constant
    width = geometry.width
    spacing = geometry.spacing
    thickness = geometry.thickness
    height = geometry.dielectric_height

    resistance_per_meter = resistivity / geometry.cross_section_area

    # Area + fringe capacitance to the plane, counted for both planes.
    # The fringe term uses the classic Yuan-Trick style logarithmic form.
    area_cap = eps * width / height
    fringe_cap = eps * 1.064 * (thickness / (thickness + height)) ** 0.5 + eps * 0.77
    shielding = spacing / (spacing + height)  # neighbours shield part of the fringe field
    ground_cap_per_meter = 2.0 * (area_cap + fringe_cap * shielding)

    # Sidewall (coupling) capacitance to one neighbour: parallel plate between
    # the facing sidewalls plus a fringe correction that grows as the wires
    # get closer relative to the dielectric height.
    sidewall_cap = eps * thickness / spacing
    coupling_fringe = eps * 0.83 * (height / (height + spacing)) ** 0.5
    coupling_cap_per_meter = sidewall_cap + coupling_fringe

    return WireParasitics(
        resistance_per_meter=resistance_per_meter,
        ground_cap_per_meter=ground_cap_per_meter,
        coupling_cap_per_meter=coupling_cap_per_meter,
    )


def scale_coupling_ratio(
    parasitics: WireParasitics,
    ratio_multiplier: float,
    worst_case_factor: float = 4.0,
) -> WireParasitics:
    """Re-balance Cc/Cg by ``ratio_multiplier`` at constant worst-case load.

    This implements the Section 6 "modified bus": the wire layout is altered
    so that the coupling-to-ground capacitance ratio increases by the given
    factor while the wire resistance and the worst-case effective capacitance
    ``Cg + worst_case_factor * Cc`` are unchanged.  The worst-case delay (and
    hence the repeater sizing and the zero-error-rate behaviour) is therefore
    preserved, while the delay of more typical switching patterns improves.

    ``worst_case_factor`` is 4 for the pure Miller model (the paper's Eq. 1);
    callers that model second-order aggressor effects pass their topology's
    attainable maximum so the invariant matches what the timing model actually
    treats as the worst case.
    """
    check_positive("ratio_multiplier", ratio_multiplier)
    check_positive("worst_case_factor", worst_case_factor)
    cg = parasitics.ground_cap_per_meter
    cc = parasitics.coupling_cap_per_meter
    total = cg + worst_case_factor * cc
    new_ratio = ratio_multiplier * cc / cg
    new_cg = total / (1.0 + worst_case_factor * new_ratio)
    new_cc = new_ratio * new_cg
    result = WireParasitics(
        resistance_per_meter=parasitics.resistance_per_meter,
        ground_cap_per_meter=new_cg,
        coupling_cap_per_meter=new_cc,
    )
    preserved = result.ground_cap_per_meter + worst_case_factor * result.coupling_cap_per_meter
    if not math.isclose(preserved, total, rel_tol=1e-9):
        raise AssertionError("coupling re-balance changed the worst-case load")
    return result
