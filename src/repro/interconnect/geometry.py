"""Wire layout geometry.

The bus in the paper is routed on a global metal layer of a 0.13 um process at
minimum pitch (0.8 um).  :class:`WireGeometry` carries the cross-sectional and
length parameters needed by the parasitic extractor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class WireGeometry:
    """Cross-section and length of a single bus wire.

    All dimensions are in metres.

    Attributes
    ----------
    width:
        Drawn wire width.
    spacing:
        Edge-to-edge spacing to each neighbouring wire (or shield).
    thickness:
        Metal thickness.
    dielectric_height:
        Vertical distance to the ground planes above/below (inter-layer
        dielectric height).
    length:
        Total routed length of the wire.
    """

    width: float
    spacing: float
    thickness: float
    dielectric_height: float
    length: float

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        check_positive("spacing", self.spacing)
        check_positive("thickness", self.thickness)
        check_positive("dielectric_height", self.dielectric_height)
        check_positive("length", self.length)

    @property
    def pitch(self) -> float:
        """Wire pitch (width + spacing)."""
        return self.width + self.spacing

    @property
    def cross_section_area(self) -> float:
        """Conductor cross-sectional area (width x thickness)."""
        return self.width * self.thickness

    def with_length(self, length: float) -> WireGeometry:
        """Return a copy of this geometry with a different routed length."""
        return replace(self, length=length)

    def scaled(self, factor: float) -> WireGeometry:
        """Uniformly scale the cross-section (not the length) by ``factor``.

        Used by the technology-scaling study: lateral dimensions shrink with
        the node while global wire lengths are assumed to stay constant (the
        die does not shrink with the devices).
        """
        check_positive("factor", factor)
        return WireGeometry(
            width=self.width * factor,
            spacing=self.spacing * factor,
            thickness=self.thickness * factor,
            dielectric_height=self.dielectric_height * factor,
            length=self.length,
        )
