"""Technology-scaling models for the Section 6 discussion.

The paper argues that the proposed DVS approach becomes *more* attractive as
technology scales: global wire capacitance per unit length stays roughly
constant while wire resistance grows (smaller cross-sections), so the delay
difference between the worst-case and typical switching patterns -- the
``R x Cc`` term of Eq. 2 -- grows, leaving more slack to recover at typical
conditions.

:func:`scale_technology` produces scaled :class:`TechnologyNode` instances
from the 0.13 um baseline, and :func:`delay_spread_metric` computes the
``R x Cc`` figure of merit used to quantify the trend.
"""

from __future__ import annotations

from dataclasses import replace
from collections.abc import Sequence

from repro.interconnect.parasitics import WireParasitics, extract_parasitics
from repro.interconnect.technology import TECH_130NM, TechnologyNode
from repro.utils.validation import check_positive

#: Nominal supply voltages by node, following the ITRS trend of the era.
_SCALED_SUPPLY = {
    130e-9: 1.2,
    90e-9: 1.1,
    65e-9: 1.0,
    45e-9: 0.9,
}


def scale_technology(
    base: TechnologyNode,
    feature_size: float,
    *,
    resistivity_degradation: float = 1.0,
) -> TechnologyNode:
    """Derive a scaled technology node from a baseline node.

    Lateral wire dimensions (width, spacing, thickness, dielectric height)
    shrink proportionally to the feature size; the effective resistivity can
    optionally be degraded to model barrier/scattering effects in narrow
    copper lines.  The nominal supply follows the historical trend for known
    nodes and otherwise scales linearly with feature size.

    Device parameters are kept from the baseline: the scaling study is about
    *wires*, and keeping the drivers fixed isolates the interconnect trend the
    paper discusses.
    """
    check_positive("feature_size", feature_size)
    check_positive("resistivity_degradation", resistivity_degradation)
    shrink = feature_size / base.feature_size
    nominal_vdd = _SCALED_SUPPLY.get(round(feature_size, 12), base.nominal_vdd * shrink)
    return replace(
        base,
        name=f"{feature_size * 1e9:.0f}nm",
        feature_size=feature_size,
        nominal_vdd=nominal_vdd,
        wire_width=base.wire_width * shrink,
        wire_spacing=base.wire_spacing * shrink,
        wire_thickness=base.wire_thickness * shrink,
        dielectric_height=base.dielectric_height * shrink,
        resistivity=base.resistivity * resistivity_degradation,
    )


def scaled_node_series(
    feature_sizes: Sequence[float] = (130e-9, 90e-9, 65e-9, 45e-9),
    base: TechnologyNode = TECH_130NM,
) -> dict[str, TechnologyNode]:
    """A series of scaled nodes keyed by name, starting from the baseline.

    Narrower lines suffer increasing barrier/surface-scattering resistivity,
    modelled as a mild super-linear degradation with shrink.
    """
    nodes: dict[str, TechnologyNode] = {}
    for feature_size in feature_sizes:
        shrink = feature_size / base.feature_size
        degradation = (1.0 / shrink) ** 0.25
        node = scale_technology(base, feature_size, resistivity_degradation=degradation)
        nodes[node.name] = node
    return nodes


def wire_parasitics_for_node(node: TechnologyNode, length: float = 1.0) -> WireParasitics:
    """Per-unit-length parasitics of a minimum-pitch wire in the given node."""
    geometry = node.wire_geometry(length)
    return extract_parasitics(geometry, node.resistivity, node.dielectric_constant)


def delay_spread_metric(node: TechnologyNode, segment_length: float = 1.5e-3) -> float:
    """The ``R x Cc`` delay-spread figure of merit for one repeater segment.

    This is the Elmore-delay difference between the worst-case (pattern I)
    and next-worst (pattern II) switching patterns of Eq. 2 in the paper,
    evaluated for a segment of the given length in the given node.  A larger
    value means a larger gap between worst-case and typical delays, hence more
    recoverable slack for the error-tolerant DVS bus.
    """
    check_positive("segment_length", segment_length)
    parasitics = wire_parasitics_for_node(node)
    resistance = parasitics.resistance_per_meter * segment_length
    coupling = parasitics.coupling_cap_per_meter * segment_length
    return resistance * coupling


def delay_spread_trend(
    nodes: dict[str, TechnologyNode] | None = None, segment_length: float = 1.5e-3
) -> dict[str, float]:
    """``R x Cc`` metric per node, normalised to the first node in the series."""
    if nodes is None:
        nodes = scaled_node_series()
    raw = {name: delay_spread_metric(node, segment_length) for name, node in nodes.items()}
    first = next(iter(raw.values()))
    return {name: value / first for name, value in raw.items()}
