"""Transport-free request handling: one :class:`ServerSession` per client.

The session owns everything about a connected client except the socket:
which jobs it is attached to, its quota identity, and the translation from
protocol messages to :class:`~repro.runtime.workqueue.WorkQueue` calls.
:meth:`ServerSession.handle_line` is a generator of response dicts, so the
same code path serves the live TCP server, the in-process test harness and
the protocol golden transcripts -- the goldens are a byte-exact recording of
exactly what a socket client would receive.

Disconnect semantics live here too: :meth:`ServerSession.close` detaches
every handle the client still holds, which cancels jobs nobody else is
attached to -- a client that vanishes mid-stream frees its worker slot.
"""

from __future__ import annotations

from typing import Any
from collections.abc import Iterator

from repro.runtime.spec import JobSpec
from repro.runtime.workqueue import (
    JobHandle,
    QueueClosedError,
    QueueFullError,
    QuotaExceededError,
    WorkQueue,
)
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    error_response,
    ok_response,
)
from repro.telemetry import get_telemetry

__all__ = ["ServerSession"]

#: queue admission failures -> protocol error codes
_ADMISSION_ERRORS = {
    QuotaExceededError: "quota_exceeded",
    QueueFullError: "queue_full",
    QueueClosedError: "server_closing",
}


class ServerSession:
    """One client's view of the job server (no socket attached).

    Parameters
    ----------
    queue:
        The shared :class:`WorkQueue` all sessions submit into.
    client_id:
        Quota identity; the TCP server assigns ``client-<n>`` per
        connection, and a ``submit`` message may override it with an
        explicit ``client`` field (cooperating CLIs share a quota bucket
        that way).
    """

    #: seconds between idle heartbeats while streaming a running job's events
    stream_poll_s = 0.5

    def __init__(self, queue: WorkQueue, client_id: str = "local") -> None:
        self._queue = queue
        self.client_id = client_id
        self._handles: dict[str, JobHandle] = {}
        self.shutdown_requested = False
        self.shutdown_drain = True

    # ------------------------------------------------------------------ #
    def handle_line(self, line: bytes) -> Iterator[dict[str, Any] | None]:
        """Serve one request line, yielding every response line for it.

        Never raises for client mistakes -- malformed lines and bad requests
        come back as ``{"ok": false, "error": {...}}`` responses.  A yielded
        ``None`` is an idle heartbeat (nothing to write; the transport may
        use it to probe client liveness mid-stream).  The whole exchange
        (including a submit's event stream) is recorded as one
        ``server.request`` span.
        """
        telemetry = get_telemetry()
        started = telemetry.now()
        op = "?"
        try:
            try:
                message = decode_message(line)
            except ProtocolError as error:
                yield error_response("?", error.code, str(error))
                return
            op = message["op"]
            handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
            if handler is None:
                yield error_response(op, "unknown_op", f"unknown op {op!r}")
                return
            yield from handler(message)
        finally:
            telemetry.record_span("server.request", started, telemetry.now(), op=op)

    def close(self) -> None:
        """Detach every live handle (client gone -> its jobs may cancel)."""
        handles, self._handles = self._handles, {}
        for handle in handles.values():
            handle.cancel()

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    def _op_ping(self, message: dict[str, Any]) -> Iterator[dict[str, Any]]:
        import repro

        yield ok_response("ping", protocol=PROTOCOL_VERSION, version=repro.__version__)

    def _op_submit(self, message: dict[str, Any]) -> Iterator[dict[str, Any] | None]:
        task = message.get("task")
        params = message.get("params", {})
        if not isinstance(task, str) or not isinstance(params, dict):
            yield error_response(
                "submit", "bad_request", "submit needs a string 'task' and an object 'params'"
            )
            return
        from repro.runtime.tasks import get_task

        try:
            get_task(task)
        except KeyError:
            yield error_response("submit", "unknown_task", f"unknown task {task!r}")
            return
        client = message.get("client", self.client_id)
        try:
            handle = self._queue.submit(
                JobSpec(task=task, params=params),
                client=str(client),
                read_cache=bool(message.get("read_cache", True)),
            )
        except tuple(_ADMISSION_ERRORS) as error:
            yield error_response("submit", _ADMISSION_ERRORS[type(error)], str(error))
            return
        yield ok_response(
            "submit",
            event="accepted",
            job=handle.id,
            key=handle.key,
            deduped=handle.deduped,
            cached=handle.cached,
        )
        if not bool(message.get("stream", True)):
            if handle.state in ("done", "failed", "cancelled"):
                return  # already terminal (cache hit); nothing to poll or cancel
            self._handles[handle.id] = handle
            return
        self._handles[handle.id] = handle
        try:
            while True:
                event = handle.next_event(timeout=self.stream_poll_s)
                if event is None:
                    # Idle heartbeat: nothing to send, but it hands control
                    # back to the transport so it can probe client liveness
                    # while the job is still running.
                    yield None
                    continue
                yield event
                if event.get("event") in ("result", "error", "cancelled"):
                    return
        except GeneratorExit:
            # The transport tore the stream down before the terminal event
            # (client vanished): detach, which cancels the job and frees its
            # worker slot if nobody else is attached.
            handle.cancel()
            raise
        finally:
            self._handles.pop(handle.id, None)

    def _op_status(self, message: dict[str, Any]) -> Iterator[dict[str, Any]]:
        job_id = str(message.get("job", ""))
        status = self._queue.status(job_id)
        if status is None:
            yield error_response("status", "unknown_job", f"unknown job {job_id!r}")
            return
        yield ok_response("status", status=status)

    def _op_jobs(self, message: dict[str, Any]) -> Iterator[dict[str, Any]]:
        yield ok_response("jobs", jobs=self._queue.jobs())

    def _op_stats(self, message: dict[str, Any]) -> Iterator[dict[str, Any]]:
        yield ok_response("stats", stats=self._queue.stats())

    def _op_cancel(self, message: dict[str, Any]) -> Iterator[dict[str, Any]]:
        job_id = str(message.get("job", ""))
        handle = self._handles.pop(job_id, None)
        if handle is not None:
            cancelled = handle.cancel()
        elif self._queue.status(job_id) is None:
            yield error_response("cancel", "unknown_job", f"unknown job {job_id!r}")
            return
        else:
            cancelled = self._queue.cancel(job_id)
        yield ok_response("cancel", job=job_id, cancelled=cancelled)

    def _op_shutdown(self, message: dict[str, Any]) -> Iterator[dict[str, Any]]:
        self.shutdown_requested = True
        self.shutdown_drain = bool(message.get("drain", True))
        yield ok_response("shutdown", drain=self.shutdown_drain)
