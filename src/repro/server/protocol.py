"""Wire format of the repro job server: newline-delimited canonical JSON.

One request per line, one or more response lines per request (a streaming
``submit`` produces a response *stream*: ``accepted``, then the job's events,
ending with a terminal ``result`` / ``error`` / ``cancelled`` line).  Every
line is a JSON object serialized canonically -- sorted keys, compact
separators, UTF-8, ``\\n`` terminator -- so a transcript of the conversation
is byte-reproducible and the protocol golden tests can diff transcripts
exactly (the same trick the telemetry exporters use for their golden
traces).

Requests
--------
``{"op": <name>, ...}`` where ``op`` is one of:

========== ============================================================
``ping``     liveness + protocol/version handshake
``submit``   ``task`` + ``params`` (+ ``stream``/``read_cache``/``client``)
``status``   one job's lifecycle row (``job``)
``jobs``     every job the queue has seen
``stats``    queue statistics (depth, counters)
``cancel``   detach a job (``job``)
``shutdown`` stop the server (``drain`` to let the backlog finish)
========== ============================================================

Responses
---------
Control responses carry ``"ok": true`` (or ``"ok": false`` plus an
``error`` object with a stable ``code``); stream elements carry ``"event"``
and are exactly the work queue's event dicts.  Error codes are part of the
protocol: ``bad_json``, ``bad_request``, ``unknown_op``, ``unknown_task``,
``unknown_job``, ``quota_exceeded``, ``queue_full``, ``server_closing``.
"""

from __future__ import annotations

import json
import os
from typing import Any

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ENV_ADDR",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_message",
    "decode_response",
    "default_address",
    "encode_message",
    "error_response",
    "ok_response",
]

#: Bumped on any wire-format change; ``ping`` reports it for handshakes.
PROTOCOL_VERSION = 1

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7325

#: ``host:port`` override consulted by the CLI and the default client.
ENV_ADDR = "REPRO_SERVER_ADDR"


class ProtocolError(ValueError):
    """A malformed or unserviceable message, with a stable wire-level code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def default_address() -> tuple[str, int]:
    """The server address the CLI talks to: ``$REPRO_SERVER_ADDR`` or the default."""
    raw = os.environ.get(ENV_ADDR, "")
    if not raw:
        return DEFAULT_HOST, DEFAULT_PORT
    host, _, port_text = raw.rpartition(":")
    try:
        return (host or DEFAULT_HOST), int(port_text)
    except ValueError:
        raise ProtocolError("bad_request", f"{ENV_ADDR}={raw!r} is not host:port") from None


def encode_message(message: dict[str, Any]) -> bytes:
    """One canonical protocol line: sorted keys, compact, UTF-8, ``\\n``."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def decode_response(line: bytes) -> dict[str, Any]:
    """Parse one protocol line into an object (no request-shape validation)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError("bad_json", f"unparseable protocol line: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("bad_request", "protocol lines must be JSON objects")
    return message


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one request line; :class:`ProtocolError` on anything malformed."""
    message = decode_response(line)
    op = message.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("bad_request", "request needs a string 'op' field")
    return message


def ok_response(op: str, **fields: Any) -> dict[str, Any]:
    """A successful control response."""
    return {"ok": True, "op": op, **fields}


def error_response(op: str, code: str, message: str) -> dict[str, Any]:
    """A failed control response with a stable error code."""
    return {"ok": False, "op": op, "error": {"code": code, "message": message}}
