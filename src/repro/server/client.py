"""Client side of the job-server protocol: what ``repro submit`` speaks.

:class:`ReproClient` wraps one TCP connection with typed helpers for every
protocol op.  ``submit`` is a generator over the server's response stream
(``accepted``, ``started``, ``progress`` ..., terminal event), so callers
can surface live chunk progress; :meth:`ReproClient.submit_and_wait` is the
blocking convenience that most callers -- including the CLI -- use.
"""

from __future__ import annotations

import socket
from typing import Any
from collections.abc import Iterator

from repro.server.protocol import decode_response, default_address, encode_message

__all__ = ["ReproClient", "ServerError"]


class ServerError(RuntimeError):
    """The server answered ``{"ok": false, ...}``; carries the wire code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code

    @classmethod
    def from_response(cls, response: dict[str, Any]) -> ServerError:
        error = response.get("error", {})
        return cls(str(error.get("code", "unknown")), str(error.get("message", response)))


class ReproClient:
    """One connection to a running ``repro serve`` process.

    Parameters
    ----------
    host / port:
        Server address; defaults honour ``$REPRO_SERVER_ADDR``.
    timeout:
        Socket timeout per response line.  The default is generous because
        a non-streamed submit's *next* response can legitimately be minutes
        away on a cold cache.
    """

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        timeout: float = 600.0,
    ) -> None:
        default_host, default_port = default_address()
        self.host = host if host is not None else default_host
        self.port = port if port is not None else default_port
        self._socket = socket.create_connection((self.host, self.port), timeout=timeout)
        self._reader = self._socket.makefile("rb")

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the connection (server-side: detach this client's jobs)."""
        try:
            self._reader.close()
        finally:
            try:
                self._socket.close()
            except OSError:
                pass

    def __enter__(self) -> ReproClient:
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _send(self, message: dict[str, Any]) -> None:
        self._socket.sendall(encode_message(message))

    def _read_response(self) -> dict[str, Any]:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_response(line)

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """One request, one response; :class:`ServerError` on ``ok: false``."""
        self._send(message)
        response = self._read_response()
        if response.get("ok") is False:
            raise ServerError.from_response(response)
        return response

    # ------------------------------------------------------------------ #
    # Ops
    # ------------------------------------------------------------------ #
    def ping(self) -> dict[str, Any]:
        """Liveness + version handshake."""
        return self.request({"op": "ping"})

    def submit(
        self,
        task: str,
        params: dict[str, Any],
        read_cache: bool = True,
        client: str | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Submit one job and yield the response stream until terminal.

        The first yielded message is the ``accepted`` control response
        (``job`` / ``key`` / ``deduped`` / ``cached``); the rest are job
        events, the last being ``result``, ``error`` or ``cancelled``.
        """
        message: dict[str, Any] = {
            "op": "submit",
            "task": task,
            "params": params,
            "read_cache": read_cache,
            "stream": True,
        }
        if client is not None:
            message["client"] = client
        self._send(message)
        accepted = self._read_response()
        if accepted.get("ok") is False:
            raise ServerError.from_response(accepted)
        yield accepted
        if accepted.get("cached"):
            # A cache hit's stream is just its (already sent) result event.
            yield self._read_response()
            return
        while True:
            event = self._read_response()
            yield event
            if event.get("event") in ("result", "error", "cancelled"):
                return

    def submit_and_wait(
        self,
        task: str,
        params: dict[str, Any],
        read_cache: bool = True,
        client: str | None = None,
    ) -> tuple[dict[str, Any], dict[str, Any]]:
        """Blocking submit: returns ``(accepted, terminal_event)``."""
        stream = self.submit(task, params, read_cache=read_cache, client=client)
        accepted = next(stream)
        terminal: dict[str, Any] = {}
        for event in stream:
            terminal = event
        return accepted, terminal

    def status(self, job_id: str) -> dict[str, Any]:
        """One job's lifecycle row."""
        return self.request({"op": "status", "job": job_id})["status"]

    def jobs(self) -> Any:
        """Every job the server has seen, in submission order."""
        return self.request({"op": "jobs"})["jobs"]

    def stats(self) -> dict[str, Any]:
        """Queue statistics (depth, running, lifecycle counters)."""
        return self.request({"op": "stats"})["stats"]

    def cancel(self, job_id: str) -> bool:
        """Detach a job; ``True`` if an attachment was actually live."""
        return bool(self.request({"op": "cancel", "job": job_id})["cancelled"])

    def shutdown(self, drain: bool = True) -> dict[str, Any]:
        """Ask the server to stop (draining its backlog by default)."""
        return self.request({"op": "shutdown", "drain": drain})
