"""The live TCP face of the job server: ``repro serve``.

:class:`ReproServer` binds a :class:`~socketserver.ThreadingTCPServer` on
localhost, gives every connection its own :class:`ServerSession` (and so its
own quota identity ``client-<n>``), and pumps newline-delimited protocol
messages between the socket and the shared
:class:`~repro.runtime.workqueue.WorkQueue`.  A connection that drops
mid-stream has its session closed, detaching -- and, if it was the last
client, cancelling -- whatever it was attached to.

Shutdown is protocol-driven: a ``shutdown`` request stops the accept loop
and closes the queue (draining the backlog by default).  The same path runs
on ``KeyboardInterrupt`` in the CLI.
"""

from __future__ import annotations

import select
import socket
import socketserver
import threading

from repro.runtime.workqueue import WorkQueue
from repro.server.protocol import DEFAULT_HOST, encode_message
from repro.server.service import ServerSession

__all__ = ["ReproServer"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    server: "_ThreadingServer"

    def handle(self) -> None:
        session = self.server.repro_server._new_session()
        try:
            for raw in self.rfile:
                line = raw.strip()
                if not line:
                    continue
                responses = session.handle_line(line)
                try:
                    for response in responses:
                        if response is None:
                            # Idle heartbeat from a streaming submit: probe
                            # the socket so a vanished client cancels its job
                            # even when no events are flowing.
                            if self._client_gone():
                                raise ConnectionResetError("client disconnected mid-stream")
                            continue
                        self.wfile.write(encode_message(response))
                        self.wfile.flush()
                finally:
                    # Deterministic teardown: an aborted stream detaches its
                    # job here, not whenever the generator gets collected.
                    responses.close()
                if session.shutdown_requested:
                    self.server.repro_server.request_shutdown(drain=session.shutdown_drain)
                    return
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client vanished; session.close() reclaims its jobs
        finally:
            session.close()

    def _client_gone(self) -> bool:
        """True when the peer closed its end (EOF readable on the socket)."""
        try:
            readable, _, _ = select.select([self.connection], [], [], 0)
            if not readable:
                return False
            # Readable with bytes means a pipelined request, not a hangup.
            return self.connection.recv(1, socket.MSG_PEEK) == b""
        except OSError:
            return True


class _ThreadingServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    repro_server: ReproServer


class ReproServer:
    """A job server bound to a localhost port, serving one shared queue.

    Parameters
    ----------
    queue:
        The :class:`WorkQueue` requests are admitted into.  The server owns
        its shutdown: closing the server closes the queue.
    host / port:
        Bind address; ``port=0`` picks a free port (the :attr:`address`
        property reports the real one -- how the tests avoid collisions).
    """

    def __init__(self, queue: WorkQueue, host: str = DEFAULT_HOST, port: int = 0) -> None:
        self._queue = queue
        self._tcp = _ThreadingServer((host, port), _Handler)
        self._tcp.repro_server = self
        self._session_seq = 0
        self._session_lock = threading.Lock()
        self._shutdown_started = False
        self._drain = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound ``(host, port)``."""
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    @property
    def queue(self) -> WorkQueue:
        """The shared work queue (handy for in-process inspection)."""
        return self._queue

    def _new_session(self) -> ServerSession:
        with self._session_lock:
            self._session_seq += 1
            return ServerSession(self._queue, client_id=f"client-{self._session_seq}")

    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        """Run the accept loop until :meth:`request_shutdown`; then close."""
        try:
            self._tcp.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            # Ctrl-C means "stop now", not "finish the backlog".  _drain is
            # shared with request_shutdown() on handler threads, so take the
            # lock here too.
            with self._session_lock:
                self._drain = False
        finally:
            self._tcp.server_close()
            with self._session_lock:
                drain = self._drain
            self._queue.close(drain=drain)

    def start(self) -> ReproServer:
        """Run :meth:`serve_forever` on a background thread (for tests)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-server", daemon=True
        )
        self._thread.start()
        return self

    def request_shutdown(self, drain: bool = True) -> None:
        """Stop accepting, then close the queue (idempotent, non-blocking)."""
        with self._session_lock:
            if self._shutdown_started:
                return
            self._shutdown_started = True
            self._drain = drain
        # shutdown() blocks until serve_forever() exits, so never call it
        # from a handler thread directly.
        threading.Thread(target=self._tcp.shutdown, daemon=True).start()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for a :meth:`start`-ed server to finish; ``False`` on timeout."""
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def __enter__(self) -> ReproServer:
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.request_shutdown(drain=exc_type is None)
        self.join(timeout=30.0)
