"""repro.server: simulation-as-a-service over the runtime work queue.

A long-running ``repro serve`` process turns the runtime layer (JobSpec,
content-addressed :class:`~repro.runtime.cache.ResultCache`,
:class:`~repro.runtime.workqueue.WorkQueue`) into a local job server:
clients submit experiment/sweep jobs over a newline-delimited-JSON socket
protocol, identical in-flight requests are deduplicated by cache key,
shape-compatible requests share worker batches, chunk progress streams back
live, and per-client quotas plus queue backpressure keep one greedy client
from starving the rest.  Results are bit-identical to local execution --
the server populates and reads the *same* cache under the *same* keys.

Layers (each independently testable):

* :mod:`~repro.server.protocol` -- canonical JSONL wire format + error codes.
* :mod:`~repro.server.service` -- :class:`ServerSession`, transport-free
  request handling (what the in-process test harness drives).
* :mod:`~repro.server.server` -- :class:`ReproServer`, the threaded TCP
  accept loop (``repro serve``).
* :mod:`~repro.server.client` -- :class:`ReproClient`, the typed client
  behind ``repro submit`` / ``repro jobs``.

Quickstart
----------
Terminal 1::

    python -m repro serve --jobs 4

Terminal 2::

    python -m repro submit table1 --cycles 50000   # streams progress, prints the table
    python -m repro submit table1 --cycles 50000   # instant: served from cache
    python -m repro jobs --stats                   # queue counters
    python -m repro jobs --shutdown                # graceful drain + stop
"""

from repro.server.client import ReproClient, ServerError
from repro.server.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    decode_response,
    default_address,
    encode_message,
)
from repro.server.server import ReproServer
from repro.server.service import ServerSession

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReproClient",
    "ReproServer",
    "ServerError",
    "ServerSession",
    "decode_message",
    "decode_response",
    "default_address",
    "encode_message",
]
