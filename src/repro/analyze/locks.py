"""Lock-discipline race detector (LCK001-LCK003).

Purely syntactic lock inference over one class at a time:

1. **Lock discovery** -- attributes assigned ``threading.Lock()`` /
   ``RLock()`` anywhere in the class, plus ``threading.Condition(self._lock)``
   aliases (entering the condition acquires the same lock).
2. **Region inference** -- code is *locked* inside ``with self._lock:`` (or a
   condition alias), in methods named ``*_locked`` (the repo's caller-holds-
   the-lock convention), and -- by fixpoint -- in private methods whose every
   call site within the class is itself locked.
3. **Guard classification** -- an attribute becomes *guarded* on its first
   locked write outside ``__init__``.  Writes include rebinding
   (``self._x = ...``), item stores (``self._jobs[k] = ...``) and mutating
   container calls (``self._pending.append(...)``).
4. **Findings** -- unguarded writes (LCK001) and reads (LCK002) of guarded
   attributes outside ``__init__``, and calls made *while holding the lock*
   to caller-supplied code: method parameters invoked directly, injected
   callables (``__init__`` parameters stored on ``self``), and callback-ish
   channel methods (``.push``/``._push``/``.emit``/...) on non-lock receivers
   (LCK003).

Nested function bodies are skipped entirely: a closure defined under the
lock may run anywhere, so neither "locked" nor "unlocked" is a safe
classification for its accesses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from collections.abc import Iterator

from repro.analyze.engine import AnalysisConfig, Finding
from repro.analyze.source import ModuleSource, Project, resolve_dotted

__all__ = ["check"]

_LOCK_CONSTRUCTORS = frozenset({"threading.Lock", "threading.RLock"})
_CONDITION_CONSTRUCTOR = "threading.Condition"

#: Method names that denote pushing work/events to another component; calling
#: one while holding the lock extends the critical section into foreign code.
_CALLBACK_METHODS = frozenset(
    {"_push", "push", "send", "emit", "publish", "dispatch", "fire", "callback"}
)

#: Container mutations that write *through* an attribute reference.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "clear",
        "pop",
        "popitem",
        "popleft",
        "appendleft",
        "remove",
        "discard",
        "setdefault",
        "sort",
    }
)


def _self_attr(node: ast.expr) -> str | None:
    """``X`` for an expression that is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass(frozen=True)
class _Access:
    """One attribute access or lock-held call inside a method."""

    kind: str  # "read" | "write" | "call-param" | "call-injected" | "call-channel"
    name: str
    line: int
    col: int
    locked: bool
    method: str


class _ClassModel:
    """All lock-relevant facts about one class definition."""

    def __init__(self, source: ModuleSource, node: ast.ClassDef) -> None:
        self.source = source
        self.node = node
        self.locks = self._discover_locks()
        self.injected = self._discover_injected_callables()
        self.methods = {
            item.name: item for item in node.body if isinstance(item, ast.FunctionDef)
        }

    # -------------------------------------------------------------- #
    # Discovery
    # -------------------------------------------------------------- #
    def _assignments(self) -> Iterator[tuple[str, ast.expr]]:
        for node in ast.walk(self.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                attr = _self_attr(node.targets[0])
                if attr is not None:
                    yield attr, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                attr = _self_attr(node.target)
                if attr is not None:
                    yield attr, node.value

    def _discover_locks(self) -> frozenset[str]:
        locks: set[str] = set()
        conditions: list[tuple[str, ast.Call]] = []
        for attr, value in self._assignments():
            if not isinstance(value, ast.Call):
                continue
            dotted = resolve_dotted(value.func, self.source.aliases)
            if dotted in _LOCK_CONSTRUCTORS:
                locks.add(attr)
            elif dotted == _CONDITION_CONSTRUCTOR:
                conditions.append((attr, value))
        for attr, call in conditions:
            if not call.args:
                locks.add(attr)  # Condition() owns a private lock
            else:
                aliased = _self_attr(call.args[0])
                if aliased is not None and aliased in locks:
                    locks.add(attr)
        return frozenset(locks)

    def _discover_injected_callables(self) -> frozenset[str]:
        """Attributes assigned directly from an ``__init__`` parameter."""
        init = next(
            (
                item
                for item in self.node.body
                if isinstance(item, ast.FunctionDef) and item.name == "__init__"
            ),
            None,
        )
        if init is None:
            return frozenset()
        params = {
            arg.arg
            for arg in list(init.args.posonlyargs) + list(init.args.args) + list(init.args.kwonlyargs)
            if arg.arg != "self"
        }
        injected: set[str] = set()
        for node in ast.walk(init):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                attr = _self_attr(node.targets[0])
                if attr is None:
                    continue
                value = node.value
                # ``self._clock = clock`` or ``self._clock = clock or default``.
                if isinstance(value, ast.Name) and value.id in params:
                    injected.add(attr)
                elif isinstance(value, ast.BoolOp) and any(
                    isinstance(operand, ast.Name) and operand.id in params
                    for operand in value.values
                ):
                    injected.add(attr)
        return injected

    # -------------------------------------------------------------- #
    # Region + access extraction
    # -------------------------------------------------------------- #
    def _is_lock_context(self, item: ast.withitem) -> bool:
        attr = _self_attr(item.context_expr)
        return attr is not None and attr in self.locks

    def _method_accesses(
        self, method: ast.FunctionDef, starts_locked: bool
    ) -> tuple[list[_Access], list[tuple[str, bool]]]:
        """Accesses and ``(callee, locked)`` self-method call sites of one method."""
        accesses: list[_Access] = []
        calls: list[tuple[str, bool]] = []
        params = {
            arg.arg
            for arg in list(method.args.posonlyargs)
            + list(method.args.args)
            + list(method.args.kwonlyargs)
            if arg.arg != "self"
        }

        def record(kind: str, name: str, node: ast.AST, locked: bool) -> None:
            accesses.append(
                _Access(
                    kind=kind,
                    name=name,
                    line=getattr(node, "lineno", method.lineno),
                    col=getattr(node, "col_offset", 0) + 1,
                    locked=locked,
                    method=method.name,
                )
            )

        def visit(node: ast.AST, locked: bool) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return  # closure: execution context unknown
            if isinstance(node, ast.With):
                body_locked = locked or any(self._is_lock_context(item) for item in node.items)
                for item in node.items:
                    visit(item.context_expr, locked)
                for statement in node.body:
                    visit(statement, body_locked)
                return
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        record("write", attr, target, locked)
                    elif isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                        if attr is not None:
                            record("write", attr, target, locked)
                        else:
                            visit(target, locked)
                    else:
                        visit(target, locked)
                if isinstance(node, ast.AugAssign):
                    attr = _self_attr(node.target)
                    if attr is not None:
                        record("read", attr, node.target, locked)
                value = getattr(node, "value", None)
                if value is not None:
                    visit(value, locked)
                return
            if isinstance(node, ast.Call):
                func = node.func
                handled_receiver = False
                if isinstance(func, ast.Name) and func.id in params:
                    record("call-param", func.id, node, locked)
                elif isinstance(func, ast.Attribute):
                    receiver_attr = _self_attr(func)
                    if receiver_attr is not None:
                        if receiver_attr in self.injected:
                            record("call-injected", receiver_attr, node, locked)
                        elif receiver_attr in self.methods:
                            calls.append((receiver_attr, locked))
                        else:
                            record("read", receiver_attr, func, locked)
                        handled_receiver = True
                    else:
                        inner = _self_attr(func.value)
                        if inner is not None:
                            if func.attr in _MUTATING_METHODS:
                                record("write", inner, func, locked)
                            else:
                                record("read", inner, func, locked)
                            handled_receiver = True
                        if (
                            func.attr in _CALLBACK_METHODS
                            and (inner is None or inner not in self.locks)
                        ):
                            record("call-channel", func.attr, node, locked)
                    if not handled_receiver and isinstance(func, ast.Attribute):
                        visit(func.value, locked)
                for argument in node.args:
                    visit(argument, locked)
                for keyword in node.keywords:
                    visit(keyword.value, locked)
                return
            if isinstance(node, ast.Attribute):
                attr = _self_attr(node)
                if attr is not None:
                    kind = "read" if isinstance(node.ctx, ast.Load) else "write"
                    record(kind, attr, node, locked)
                    return
                visit(node.value, locked)
                return
            for child in ast.iter_child_nodes(node):
                visit(child, locked)

        for statement in method.body:
            visit(statement, starts_locked)
        return accesses, calls

    def analyze(self) -> tuple[list[_Access], frozenset[str]]:
        """All accesses (with final locked flags) and the guarded-attr set."""
        locked_start = {
            name: name.endswith("_locked") for name in self.methods
        }
        # Fixpoint: a private helper whose every in-class call site is locked
        # effectively runs under the lock (e.g. WorkQueue._new_job).
        while True:
            per_method = {
                name: self._method_accesses(method, locked_start[name])
                for name, method in self.methods.items()
            }
            call_sites: dict[str, list[bool]] = {}
            for _, (_, calls) in per_method.items():
                for callee, locked in calls:
                    call_sites.setdefault(callee, []).append(locked)
            changed = False
            for name in self.methods:
                if locked_start[name] or name.startswith("__"):
                    continue
                if not name.startswith("_"):
                    continue
                sites = call_sites.get(name, [])
                if sites and all(sites):
                    locked_start[name] = True
                    changed = True
            if not changed:
                break

        accesses = [
            access
            for name, (method_accesses, _) in sorted(per_method.items())
            for access in method_accesses
        ]
        guarded = frozenset(
            access.name
            for access in accesses
            if access.kind == "write"
            and access.locked
            and access.method != "__init__"
            and access.name not in self.locks
        )
        return accesses, guarded


def check(project: Project, config: AnalysisConfig) -> Iterator[Finding]:
    """Run the race detector over every lock-owning class in the project."""
    for module in sorted(project.modules):
        source = project.modules[module]
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            model = _ClassModel(source, node)
            if not model.locks:
                continue
            accesses, guarded = model.analyze()
            for access in accesses:
                if access.method == "__init__":
                    continue
                if access.kind == "write" and access.name in guarded and not access.locked:
                    yield Finding(
                        rule="LCK001",
                        path=source.rel_path,
                        line=access.line,
                        col=access.col,
                        message=f"write to '{access.name}' of {node.name} without "
                        f"holding the lock ('{access.name}' has locked writes "
                        "elsewhere, so it is shared state)",
                    )
                elif access.kind == "read" and access.name in guarded and not access.locked:
                    yield Finding(
                        rule="LCK002",
                        path=source.rel_path,
                        line=access.line,
                        col=access.col,
                        message=f"read of lock-guarded '{access.name}' of {node.name} "
                        "without holding the lock",
                    )
                elif access.kind == "call-param" and access.locked:
                    yield Finding(
                        rule="LCK003",
                        path=source.rel_path,
                        line=access.line,
                        col=access.col,
                        message=f"caller-supplied callable '{access.name}' invoked while "
                        f"{node.name} holds its lock; move the call outside the "
                        "critical section",
                    )
                elif access.kind == "call-injected" and access.locked:
                    yield Finding(
                        rule="LCK003",
                        path=source.rel_path,
                        line=access.line,
                        col=access.col,
                        message=f"injected callable 'self.{access.name}' invoked while "
                        f"{node.name} holds its lock; hoist the call out of the "
                        "critical section",
                    )
                elif access.kind == "call-channel" and access.locked:
                    yield Finding(
                        rule="LCK003",
                        path=source.rel_path,
                        line=access.line,
                        col=access.col,
                        message=f"channel method '.{access.name}(...)' called while "
                        f"{node.name} holds its lock; subscriber code now runs "
                        "inside the critical section",
                    )
