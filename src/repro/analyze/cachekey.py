"""Cache-key soundness (CKS001-CKS003).

The content-addressed cache is only sound if ``JobSpec.key`` accounts for
every input a task's result depends on.  This pass rebuilds that proof
statically, in three steps:

1. **Model the key** (:class:`KeyModel`): parse the ``key`` property of the
   spec module's ``JobSpec`` class and extract *how* parameters enter the
   identity -- a blanket fold of the whole params mapping
   (``dict(self.params)``), a selective subset (``self.params["name"]``),
   and which parameters are individually examined for content-hash folding
   (``self.params.get("name")`` feeding a fingerprint function).
2. **Find the tasks**: every function decorated ``@task("name")`` anywhere
   in the project.
3. **Prove each parameter**: a parameter is accounted for when the key
   blankets all params or names it selectively (CKS001 otherwise), and a
   parameter that reaches a *file-reading sink* -- ``open``, ``numpy.load``,
   the workload/chardb resolvers, or a same-module helper that does --
   must additionally be content-fingerprinted in the key, because hashing
   the path string alone replays stale results after the file changes
   (CKS002).  ``# repro: key-irrelevant`` on the parameter's own line in the
   signature opts it out explicitly.

CKS003 fires on the key property itself when its structure drops the params
mapping or the code version from the identity.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Iterator

from repro.analyze.engine import AnalysisConfig, Finding
from repro.analyze.source import ModuleSource, Project, resolve_dotted

__all__ = ["KeyModel", "check", "parse_key_model"]

#: Calls that read file content from a path-like argument.
_FILE_SINKS = frozenset(
    {
        "open",
        "io.open",
        "gzip.open",
        "tokenize.open",
        "numpy.load",
        "numpy.fromfile",
        "numpy.loadtxt",
        "json.load",
        "pathlib.Path",
        # Repo-specific content resolvers: these read external artifacts whose
        # content must be fingerprinted into the key (workload_fingerprint /
        # chardb_fingerprint exist precisely for them).
        "repro.trace.workloads.resolve_workload",
        "repro.trace.workloads.workload_fingerprint",
        "repro.chardb.use_chardb",
        "repro.chardb.active.use_chardb",
        "repro.chardb.chardb_fingerprint",
        "repro.chardb.database.chardb_fingerprint",
        "repro.chardb.CharacterizationDatabase",
        "repro.chardb.database.CharacterizationDatabase",
    }
)


@dataclass
class KeyModel:
    """What the spec's ``JobSpec.key`` property does with parameters."""

    #: Key found at all (a ``JobSpec`` class with a ``key`` function).
    found: bool = False
    #: Module the model was parsed from (findings anchor here).
    source: ModuleSource | None = None
    #: Line of the ``key`` function definition.
    line: int = 1
    #: The whole params mapping is folded into the identity.
    hashes_all_params: bool = False
    #: Parameters named selectively (``self.params["x"]`` subscripts).
    selective_params: set[str] = field(default_factory=set)
    #: Parameters individually examined (``self.params.get("x")``) -- the
    #: content-fingerprint folding pattern.
    fingerprinted_params: set[str] = field(default_factory=set)
    #: The code version joins the identity.
    has_code_version: bool = False
    #: ``self.task`` joins the identity.
    has_task: bool = False

    def covers(self, param: str) -> bool:
        """Whether ``param``'s *value* enters the key at all."""
        return (
            self.hashes_all_params
            or param in self.selective_params
            or param in self.fingerprinted_params
        )


def parse_key_model(project: Project, config: AnalysisConfig) -> KeyModel:
    """Locate and parse the ``JobSpec.key`` property.

    Prefers ``config.spec_module``; falls back to any project module defining
    a ``JobSpec`` class (so fixture projects work without configuration).
    """
    candidates = []
    if config.spec_module in project.modules:
        candidates.append(project.modules[config.spec_module])
    candidates.extend(
        source for source in project.modules.values() if source.module != config.spec_module
    )
    for source in candidates:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node.name == "JobSpec":
                for item in node.body:
                    if isinstance(item, ast.FunctionDef) and item.name == "key":
                        return _parse_key_function(source, item)
    return KeyModel()


def _parse_key_function(source: ModuleSource, function: ast.FunctionDef) -> KeyModel:
    model = KeyModel(found=True, source=source, line=function.lineno)

    def is_self_params(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "params"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(function):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent

    for node in ast.walk(function):
        if isinstance(node, ast.Attribute) and node.attr == "task":
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                model.has_task = True
        if isinstance(node, ast.Name) and node.id.endswith("__version__"):
            model.has_code_version = True
        if isinstance(node, ast.Attribute) and node.attr == "__version__":
            model.has_code_version = True
        if not is_self_params(node):
            continue
        parent = parents.get(node)
        if isinstance(parent, ast.Attribute):
            # ``self.params.<method>`` -- .get("x") examines one param;
            # .items()/.keys()/.values() iterate them all.
            grand = parents.get(parent)
            if parent.attr == "get" and isinstance(grand, ast.Call):
                if grand.args and isinstance(grand.args[0], ast.Constant):
                    value = grand.args[0].value
                    if isinstance(value, str):
                        model.fingerprinted_params.add(value)
            elif parent.attr in ("items", "keys", "values"):
                model.hashes_all_params = True
        elif isinstance(parent, ast.Subscript):
            # ``self.params["x"]`` names one param selectively.
            index = parent.slice
            if isinstance(index, ast.Constant) and isinstance(index.value, str):
                model.selective_params.add(index.value)
        else:
            # Bare ``self.params`` -- dict(self.params), {**self.params},
            # canonical_json(self.params): the whole mapping enters the key.
            model.hashes_all_params = True
    return model


# --------------------------------------------------------------------------- #
# Task discovery and parameter dataflow
# --------------------------------------------------------------------------- #
def _task_decorator_name(decorator: ast.expr, aliases: dict[str, str]) -> str | None:
    """The registered task name if ``decorator`` is ``@task("name")``."""
    if not (isinstance(decorator, ast.Call) and decorator.args):
        return None
    dotted = resolve_dotted(decorator.func, aliases)
    if dotted is None or not (dotted == "task" or dotted.endswith(".task")):
        return None
    first = decorator.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


def _function_params(function: ast.FunctionDef) -> list[ast.arg]:
    args = function.args
    params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    return [param for param in params if param.arg != "self"]


#: Keyword names through which a path reaches a sink (positional arg 0 is
#: always the path; other keywords -- seeds, cycle counts -- are not).
_PATH_KEYWORDS = frozenset({"path", "file", "filename", "spec", "workload", "chardb"})


def _direct_sink_params(function: ast.FunctionDef, aliases: dict[str, str]) -> set[str]:
    """Parameters of ``function`` whose value names what a file-reading call reads."""
    names = {param.arg for param in _function_params(function)}
    hits: set[str] = set()
    for node in ast.walk(function):
        if not isinstance(node, ast.Call):
            continue
        dotted = resolve_dotted(node.func, aliases)
        if dotted not in _FILE_SINKS:
            continue
        candidates: list[ast.expr] = []
        if node.args:
            candidates.append(node.args[0])
        candidates.extend(
            keyword.value for keyword in node.keywords if keyword.arg in _PATH_KEYWORDS
        )
        for value in candidates:
            if isinstance(value, ast.Name) and value.id in names:
                hits.add(value.id)
    return hits


def _module_functions(source: ModuleSource) -> dict[str, ast.FunctionDef]:
    """Top-level function definitions of a module, by name."""
    return {
        node.name: node for node in source.tree.body if isinstance(node, ast.FunctionDef)
    }


def _sink_params_with_helpers(source: ModuleSource) -> dict[str, set[str]]:
    """Per-function file-reaching parameters, propagated through same-module helpers.

    ``_chardb_context(chardb)`` calling ``use_chardb(chardb)`` makes the
    *caller's* ``chardb`` parameter file-reaching too; one fixpoint over the
    module's call graph carries that through arbitrarily deep helper chains.
    """
    functions = _module_functions(source)
    sink_params = {
        name: _direct_sink_params(function, source.aliases)
        for name, function in functions.items()
    }
    changed = True
    while changed:
        changed = False
        for name, function in functions.items():
            param_names = {param.arg for param in _function_params(function)}
            helper_params = {
                helper: [param.arg for param in _function_params(functions[helper])]
                for helper in functions
            }
            for node in ast.walk(function):
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
                    continue
                helper = node.func.id
                if helper not in functions or not sink_params[helper]:
                    continue
                formals = helper_params[helper]
                for position, value in enumerate(node.args):
                    if (
                        isinstance(value, ast.Name)
                        and value.id in param_names
                        and position < len(formals)
                        and formals[position] in sink_params[helper]
                        and value.id not in sink_params[name]
                    ):
                        sink_params[name].add(value.id)
                        changed = True
                for keyword in node.keywords:
                    if (
                        keyword.arg in sink_params[helper]
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id in param_names
                        and keyword.value.id not in sink_params[name]
                    ):
                        sink_params[name].add(keyword.value.id)
                        changed = True
    return sink_params


def check(project: Project, config: AnalysisConfig) -> Iterator[Finding]:
    """Run the cache-key soundness pass over the whole project."""
    model = parse_key_model(project, config)
    if not model.found:
        # No JobSpec in the project (a fixture tree with only tasks, or a
        # partial path list): nothing to prove against.
        return

    assert model.source is not None
    if not model.hashes_all_params and not model.selective_params:
        yield Finding(
            rule="CKS003",
            path=model.source.rel_path,
            line=model.line,
            col=1,
            message="JobSpec.key never folds self.params into the identity; "
            "every job of a task would share one cache entry",
        )
    if not model.has_code_version:
        yield Finding(
            rule="CKS003",
            path=model.source.rel_path,
            line=model.line,
            col=1,
            message="JobSpec.key omits the code version from the identity; "
            "a release changing the physics would replay stale results",
        )
    if not model.has_task:
        yield Finding(
            rule="CKS003",
            path=model.source.rel_path,
            line=model.line,
            col=1,
            message="JobSpec.key omits self.task from the identity; two tasks "
            "with equal params would collide on one cache entry",
        )

    for module in sorted(project.modules):
        source = project.modules[module]
        tasks: list[tuple[str, ast.FunctionDef]] = []
        for node in source.tree.body:
            if isinstance(node, ast.FunctionDef):
                for decorator in node.decorator_list:
                    name = _task_decorator_name(decorator, source.aliases)
                    if name is not None:
                        tasks.append((name, node))
        if not tasks:
            continue
        sink_params = _sink_params_with_helpers(source)
        for task_name, function in tasks:
            reaches_files = sink_params.get(function.name, set())
            for param in _function_params(function):
                annotated = param.lineno in source.key_irrelevant_lines
                if not model.covers(param.arg) and not annotated:
                    yield Finding(
                        rule="CKS001",
                        path=source.rel_path,
                        line=param.lineno,
                        col=param.col_offset + 1,
                        message=f"parameter '{param.arg}' of task '{task_name}' does "
                        "not flow into JobSpec.key and is not annotated "
                        "'# repro: key-irrelevant'",
                    )
                elif (
                    param.arg in reaches_files
                    and param.arg not in model.fingerprinted_params
                    and not annotated
                ):
                    yield Finding(
                        rule="CKS002",
                        path=source.rel_path,
                        line=param.lineno,
                        col=param.col_offset + 1,
                        message=f"parameter '{param.arg}' of task '{task_name}' names "
                        "file content but JobSpec.key folds only the path "
                        "string; add content-fingerprint folding (like "
                        "workload/chardb) or annotate '# repro: key-irrelevant'",
                    )
