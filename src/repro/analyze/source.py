"""Source loading for the static analyzer: parsed modules and the project graph.

The analyzer never imports the code it checks.  A :class:`ModuleSource` is a
purely syntactic view of one file -- its text, its ``ast`` tree, the alias
map of everything it imports, and its suppression comments -- and a
:class:`Project` is the set of modules under one root directory plus the
import graph between them.

Two pieces of shared machinery live here because every rule family needs
them:

* **Alias resolution** (:attr:`ModuleSource.aliases`): maps local names to
  the dotted path they were imported as (``np`` -> ``numpy``,
  ``default_rng`` -> ``numpy.random.default_rng``), including lazy imports
  inside function bodies.  :func:`resolve_dotted` turns an attribute chain
  like ``np.random.default_rng`` into its canonical dotted name so rules
  match on *what is called*, not on how the module spelled it.
* **Suppressions**: a ``# repro: noqa[RULE1,RULE2]`` comment on a finding's
  line suppresses exactly those rules there (comments are found with
  :mod:`tokenize`, so the marker never matches inside a string literal).
  ``# repro: key-irrelevant`` marks a task parameter as deliberately outside
  the cache key (see :mod:`repro.analyze.cachekey`).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ModuleSource",
    "Project",
    "load_module",
    "resolve_dotted",
]

#: ``# repro: noqa[DET001]`` / ``# repro: noqa[DET001, LCK003]`` (reason text
#: after the bracket is free-form and encouraged).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Z0-9_,\s]+)\]")

#: ``# repro: key-irrelevant`` (optionally followed by free-form rationale).
_KEY_IRRELEVANT_RE = re.compile(r"#\s*repro:\s*key-irrelevant\b")


@dataclass
class ModuleSource:
    """One parsed source file, with everything rules need precomputed."""

    path: Path
    #: Path relative to the project root, POSIX separators (stable across
    #: checkouts; what findings and baselines record).
    rel_path: str
    #: Dotted module name relative to the project root.
    module: str
    text: str
    tree: ast.Module
    #: line -> rule ids suppressed on that line.
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    #: lines carrying a ``key-irrelevant`` annotation.
    key_irrelevant_lines: frozenset[int] = frozenset()
    #: local name -> dotted import path (module- and function-level imports).
    aliases: dict[str, str] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed on ``line`` of this module."""
        return rule in self.suppressions.get(line, frozenset())


def _collect_comments(text: str) -> list[tuple[int, str]]:
    """``(line, comment_text)`` for every comment token in ``text``."""
    comments: list[tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # A file ast.parse accepted but tokenize chokes on (rare); fall back
        # to no suppressions rather than failing the whole analysis.
        return []
    return comments


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted path for every import in the module (any depth)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".", 1)[0]
                # ``import a.b`` binds ``a``; ``import a.b as c`` binds the full path.
                aliases[local] = name.name if name.asname else name.name.split(".", 1)[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def load_module(path: Path, root: Path) -> ModuleSource | None:
    """Parse one file into a :class:`ModuleSource` (``None`` on syntax error).

    Unparseable files are the compiler's problem, not the analyzer's; the
    engine reports them separately so a typo never masks real findings.
    """
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError:
        return None
    rel = path.relative_to(root).as_posix()
    module = rel[: -len(".py")].replace("/", ".")
    if module.endswith(".__init__"):
        module = module[: -len(".__init__")]
    suppressions: dict[int, frozenset[str]] = {}
    key_irrelevant: set[int] = set()
    for line, comment in _collect_comments(text):
        match = _NOQA_RE.search(comment)
        if match:
            rules = frozenset(rule.strip() for rule in match.group(1).split(",") if rule.strip())
            suppressions[line] = suppressions.get(line, frozenset()) | rules
        if _KEY_IRRELEVANT_RE.search(comment):
            key_irrelevant.add(line)
    return ModuleSource(
        path=path,
        rel_path=rel,
        module=module,
        text=text,
        tree=tree,
        suppressions=suppressions,
        key_irrelevant_lines=frozenset(key_irrelevant),
        aliases=_collect_aliases(tree),
    )


def resolve_dotted(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """The canonical dotted name of a ``Name``/``Attribute`` chain, or ``None``.

    ``np.random.default_rng`` with ``np -> numpy`` resolves to
    ``numpy.random.default_rng``; a chain rooted in anything other than a
    plain name (a call result, a subscript) resolves to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


class Project:
    """Every module under one root directory, plus the import graph.

    The root is a *source* directory: module names are dotted paths relative
    to it (for the real tree, ``src/`` -- so modules are ``repro.runtime.spec``
    etc.; fixture projects use their own root and get short names).
    """

    def __init__(self, root: Path, modules: dict[str, ModuleSource], skipped: list[str]) -> None:
        self.root = root
        self.modules = modules
        #: rel_paths of files that failed to parse.
        self.skipped = skipped
        self._imports: dict[str, frozenset[str]] | None = None

    @classmethod
    def load(cls, root: Path, paths: list[Path] | None = None) -> Project:
        """Load ``paths`` (default: every ``*.py`` under ``root``) as a project.

        A directory in ``paths`` stands for every ``*.py`` beneath it.
        """
        root = root.resolve()
        if paths is None:
            files = sorted(root.rglob("*.py"))
        else:
            files = sorted(
                found
                for path in paths
                for found in (path.rglob("*.py") if path.is_dir() else (path,))
            )
        modules: dict[str, ModuleSource] = {}
        skipped: list[str] = []
        for path in files:
            path = path.resolve()
            if "__pycache__" in path.parts:
                continue
            source = load_module(path, root)
            if source is None:
                skipped.append(path.relative_to(root).as_posix())
            else:
                modules[source.module] = source
        return cls(root, modules, skipped)

    # ------------------------------------------------------------------ #
    # Import graph
    # ------------------------------------------------------------------ #
    def _module_imports(self, source: ModuleSource) -> frozenset[str]:
        """Project-internal modules ``source`` imports (any nesting depth)."""
        found: set[str] = set()

        def note(dotted: str) -> None:
            # Longest known-module prefix: ``from repro.core import dvs_system``
            # may name either a module or an attribute of one.
            parts = dotted.split(".")
            for end in range(len(parts), 0, -1):
                candidate = ".".join(parts[:end])
                if candidate in self.modules:
                    found.add(candidate)
                    return

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    note(name.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = source.module.split(".")
                    # ``from . import x`` inside a package's module drops
                    # ``level`` trailing components (the module itself counts
                    # as one for non-package modules).
                    prefix = base[: len(base) - node.level] if len(base) >= node.level else []
                    stem = ".".join(prefix + ([node.module] if node.module else []))
                else:
                    stem = node.module or ""
                if not stem:
                    continue
                note(stem)
                for name in node.names:
                    if name.name != "*":
                        note(f"{stem}.{name.name}")
        return frozenset(found)

    @property
    def imports(self) -> dict[str, frozenset[str]]:
        """Module -> project-internal modules it imports."""
        if self._imports is None:
            self._imports = {
                name: self._module_imports(source) for name, source in self.modules.items()
            }
        return self._imports

    def reachable_from(self, seeds: tuple[str, ...]) -> frozenset[str]:
        """Transitive import closure of ``seeds`` (seeds included).

        Seeds that do not exist in the project are ignored; if *none* exist,
        every module is considered reachable -- the right degenerate answer
        for fixture projects that have no task registry at all.
        """
        frontier = [seed for seed in seeds if seed in self.modules]
        if not frontier:
            return frozenset(self.modules)
        seen: set[str] = set(frontier)
        while frontier:
            current = frontier.pop()
            for imported in self.imports.get(current, frozenset()):
                if imported not in seen:
                    seen.add(imported)
                    frontier.append(imported)
        return frozenset(seen)
