"""The rule engine: findings, the rule catalog, and the analysis driver.

A *rule family* is a module exposing ``check(project, config) -> findings``;
the engine loads the project once, runs every family, then splits the raw
findings three ways:

* **suppressed** -- a ``# repro: noqa[RULE]`` comment sits on the finding's
  line (kept in the report so suppressions stay visible, never silent),
* **baselined** -- the finding's fingerprint appears in the committed
  baseline file (pre-existing debt, tolerated but fenced: the baseline can
  only shrink),
* **active** -- everything else.  ``--strict`` fails on any active finding.

Fingerprints deliberately exclude line numbers: reformatting a file must not
churn the baseline, while changing the *substance* of a finding (its rule,
file, or message) must.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TYPE_CHECKING
from collections.abc import Callable, Iterable

from repro.analyze.source import Project

if TYPE_CHECKING:
    from repro.analyze.baseline import Baseline

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "Finding",
    "RULE_CATALOG",
    "RuleInfo",
    "analyze_project",
    "default_source_root",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining (line-number independent)."""
        payload = "\x00".join((self.rule, self.path, self.message))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        """``path:line:col: RULE message`` -- the one-line text rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, Any]:
        """JSON-able rendering (what ``--format json`` emits)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class RuleInfo:
    """Catalog entry: what a rule checks and why (see docs/static_analysis.md)."""

    id: str
    summary: str
    rationale: str


#: Every rule the analyzer knows, in catalog order.
RULE_CATALOG: tuple[RuleInfo, ...] = (
    RuleInfo(
        "DET001",
        "unseeded RNG in deterministic code",
        "an RNG drawing fresh OS entropy (np.random.default_rng() with no "
        "seed, the legacy numpy global RNG, stdlib random) makes results "
        "irreproducible and poisons content-addressed caching",
    ),
    RuleInfo(
        "DET002",
        "wall-clock read in deterministic code",
        "time.time()/datetime.now() reachable from task code folds the "
        "current time into results that are cached by parameters alone",
    ),
    RuleInfo(
        "DET003",
        "unordered iteration feeding deterministic output",
        "set iteration order varies across processes (str hash "
        "randomization); iterate sorted(...) instead.  json.dumps without "
        "sort_keys=True serializes dict insertion order, not content",
    ),
    RuleInfo(
        "DET004",
        "ad-hoc float accumulation across chunk boundaries",
        "float addition is not associative: accumulating per-chunk/segment "
        "float statistics outside the blessed accumulator types breaks the "
        "chunk-size-invariance and parallel-merge bit-identity contracts",
    ),
    RuleInfo(
        "CKS001",
        "task parameter unaccounted for in JobSpec.key",
        "a parameter that does not flow into the cache key lets two "
        "different jobs collide on one cached result",
    ),
    RuleInfo(
        "CKS002",
        "file-content parameter without content-hash folding",
        "a parameter naming external file content must fold the *content* "
        "digest into JobSpec.key (like workload/chardb do) or be annotated "
        "'# repro: key-irrelevant'; keying on the path string alone replays "
        "stale results after the file is regenerated",
    ),
    RuleInfo(
        "CKS003",
        "JobSpec.key identity is structurally incomplete",
        "the key property must hash the full params mapping and the code "
        "version; dropping either silently aliases distinct jobs",
    ),
    RuleInfo(
        "LCK001",
        "unguarded write to a lock-guarded attribute",
        "an attribute written under the instance lock anywhere is shared "
        "state; writing it without the lock races the guarded writers",
    ),
    RuleInfo(
        "LCK002",
        "unguarded read of a lock-guarded attribute",
        "reads of guarded mutable state outside the lock observe torn or "
        "stale values (the PR 8 cache clear() race was this shape)",
    ),
    RuleInfo(
        "LCK003",
        "callback invoked while holding the lock",
        "calling caller-supplied code (subscriber pushes, injected clocks, "
        "progress callbacks) with the lock held invites deadlock and "
        "unbounded critical sections; call it outside, or justify with a "
        "suppression",
    ),
)

_RULE_IDS = frozenset(info.id for info in RULE_CATALOG)


@dataclass
class AnalysisConfig:
    """Everything the rule families need to know about the tree under check."""

    root: Path
    #: Module whose ``JobSpec.key`` the cache-key pass models.
    spec_module: str = "repro.runtime.spec"
    #: Import-graph seeds of the deterministic zone (task/simulation code).
    #: When none of them exist in the project, every module is in the zone.
    deterministic_seeds: tuple[str, ...] = (
        "repro.runtime.tasks",
        "repro.analysis.experiments",
    )
    #: Modules exempt from the determinism zone even when reachable:
    #: observability and the executor fabric time *themselves* (monotonic
    #: clocks, cache bookkeeping), never the simulated results.
    deterministic_exempt: tuple[str, ...] = (
        "repro.telemetry",
        "repro.runtime.cache",
        "repro.runtime.progress",
        "repro.analyze",
    )
    #: Class names allowed to accumulate floats across chunk/segment
    #: boundaries (their merge rules are proven exact or explicitly ordered).
    blessed_accumulators: tuple[str, ...] = (
        "TraceStatisticsAccumulator",
        "TraceSummary",
        "HistogramSummary",
        "MetricsRegistry",
        "EnergyAccount",
    )

    def is_deterministic_exempt(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.deterministic_exempt
        )


@dataclass
class AnalysisReport:
    """The engine's full output for one run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    #: Baseline fingerprints that no longer match any finding (stale debt --
    #: the baseline should shrink to match).
    stale_baseline: list[str] = field(default_factory=list)
    n_modules: int = 0
    skipped: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No active findings and no stale baseline entries."""
        return not self.findings and not self.stale_baseline

    def summary(self) -> str:
        parts = [
            f"{self.n_modules} module(s) analyzed",
            f"{len(self.findings)} finding(s)",
            f"{len(self.suppressed)} suppressed",
            f"{len(self.baselined)} baselined",
        ]
        if self.stale_baseline:
            parts.append(f"{len(self.stale_baseline)} stale baseline entr(y/ies)")
        if self.skipped:
            parts.append(f"{len(self.skipped)} file(s) skipped (syntax error)")
        return ", ".join(parts)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able report (the CI artifact format)."""
        return {
            "schema": 1,
            "summary": {
                "modules": self.n_modules,
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressed": [finding.as_dict() for finding in self.suppressed],
            "baselined": [finding.as_dict() for finding in self.baselined],
            "stale_baseline": list(self.stale_baseline),
            "skipped": list(self.skipped),
        }

    def render_text(self, verbose: bool = False) -> str:
        lines = [finding.format() for finding in self.findings]
        if verbose:
            lines.extend(f"{finding.format()} [suppressed]" for finding in self.suppressed)
            lines.extend(f"{finding.format()} [baselined]" for finding in self.baselined)
        for fingerprint in self.stale_baseline:
            lines.append(
                f"baseline entry {fingerprint} matches no current finding; "
                "remove it (repro analyze --update-baseline)"
            )
        lines.append(self.summary())
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def default_source_root() -> Path:
    """The source tree of the installed ``repro`` package (the ``src/`` dir)."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


def _rule_families() -> tuple[Callable[[Project, AnalysisConfig], Iterable[Finding]], ...]:
    from repro.analyze import cachekey, determinism, locks

    return (determinism.check, cachekey.check, locks.check)


def analyze_project(
    root: Path | None = None,
    paths: list[Path] | None = None,
    baseline: Baseline | None = None,
    rules: frozenset[str] | None = None,
) -> AnalysisReport:
    """Run every rule family over the tree at ``root`` and split the results.

    Parameters
    ----------
    root:
        Source root (defaults to the installed package's ``src/``).
    paths:
        Optional explicit file list under ``root`` (the whole tree when
        omitted).  Note the cache-key and determinism passes always need the
        spec/tasks modules loaded to model the zone; partial path lists are
        for focused lock/determinism checks.
    baseline:
        Parsed baseline to match findings against.
    rules:
        Restrict to this subset of rule ids (all when ``None``).
    """
    config = AnalysisConfig(root=root if root is not None else default_source_root())
    project = Project.load(config.root, paths)
    raw: list[Finding] = []
    for family in _rule_families():
        raw.extend(family(project, config))
    if rules is not None:
        unknown = rules - _RULE_IDS
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        raw = [finding for finding in raw if finding.rule in rules]

    report = AnalysisReport(n_modules=len(project.modules), skipped=list(project.skipped))
    sources_by_path = {source.rel_path: source for source in project.modules.values()}
    matched_fingerprints: set[str] = set()
    for finding in sorted(raw, key=lambda finding: finding.sort_key):
        source = sources_by_path.get(finding.path)
        if source is not None and source.is_suppressed(finding.rule, finding.line):
            report.suppressed.append(finding)
        elif baseline is not None and finding.fingerprint in baseline.fingerprints:
            matched_fingerprints.add(finding.fingerprint)
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    if baseline is not None:
        report.stale_baseline = sorted(baseline.fingerprints - matched_fingerprints)
    return report
