"""The ``repro analyze`` subcommand.

Thin argparse layer over :func:`repro.analyze.engine.analyze_project`:
resolve the root and baseline, run the rules, render text or JSON, and turn
the report into an exit code.  ``--update-baseline`` rewrites the committed
baseline to exactly the current findings (the only sanctioned way to grow
it -- code review sees the diff).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO

from repro.analyze.baseline import Baseline, default_baseline_path
from repro.analyze.engine import RULE_CATALOG, analyze_project, default_source_root

__all__ = ["add_arguments", "run"]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install ``repro analyze``'s options on ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the whole tree under --root)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="source root whose modules are analyzed (default: the installed repro src/)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: .repro-analyze-baseline.json beside the root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="restrict to these rule ids (e.g. DET001,LCK002)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is the CI artifact format)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (debt must shrink with the code)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept all current findings, then exit 0",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings in text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def _list_rules(stream: IO[str]) -> None:
    for info in RULE_CATALOG:
        stream.write(f"{info.id}  {info.summary}\n")
        stream.write(f"        {info.rationale}\n")


def run(options: argparse.Namespace, stream: IO[str] | None = None) -> int:
    """Execute ``repro analyze`` with parsed ``options``; returns the exit code."""
    out: IO[str] = stream if stream is not None else sys.stdout
    if options.list_rules:
        _list_rules(out)
        return 0

    root = options.root.resolve() if options.root is not None else default_source_root()
    baseline_path = (
        options.baseline if options.baseline is not None else default_baseline_path(root)
    )
    baseline = None if options.no_baseline else Baseline.load(baseline_path)
    rules = (
        frozenset(rule.strip() for rule in options.rules.split(",") if rule.strip())
        if options.rules
        else None
    )
    paths: list[Path] | None = None
    if options.paths:
        paths = [path.resolve() for path in options.paths]
        for path in paths:
            # Fail with a message, not a traceback: module names are derived
            # relative to the root, so a path outside it cannot be analyzed.
            if not path.exists():
                out.write(f"repro analyze: no such file or directory: {path}\n")
                return 2
            if not path.is_relative_to(root):
                out.write(
                    f"repro analyze: {path} is outside the source root {root}; "
                    "pass --root to analyze a different tree\n"
                )
                return 2
    report = analyze_project(root=root, paths=paths, baseline=baseline, rules=rules)

    if options.update_baseline:
        accepted = report.findings + report.baselined
        Baseline.from_findings(accepted).save(baseline_path)
        out.write(
            f"baseline updated: {len(accepted)} finding(s) recorded in {baseline_path}\n"
        )
        return 0

    if options.format == "json":
        out.write(report.render_json() + "\n")
    else:
        out.write(report.render_text(verbose=options.verbose) + "\n")

    if report.findings:
        return 1
    if options.strict and report.stale_baseline:
        return 1
    return 0
