"""The committed findings baseline: tolerated debt with a one-way ratchet.

A baseline entry records a finding's fingerprint plus enough human-readable
context (rule, path, message) to review it without re-running the analyzer.
The engine treats baselined findings as non-fatal; CI fails the build if the
baseline *grows* (new findings must be fixed or suppressed with rationale,
never silently added to the debt pile) and `--strict` also fails on stale
entries so the file shrinks as debt is paid down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analyze.engine import Finding

__all__ = ["Baseline", "default_baseline_path"]

_SCHEMA = 1


def default_baseline_path(root: Path) -> Path:
    """``<repo>/.repro-analyze-baseline.json`` for a ``src/`` analysis root."""
    repo = root.parent if root.name == "src" else root
    return repo / ".repro-analyze-baseline.json"


@dataclass
class Baseline:
    """Parsed baseline file: fingerprints plus their recorded context."""

    entries: list[dict[str, str]] = field(default_factory=list)

    @property
    def fingerprints(self) -> frozenset[str]:
        return frozenset(entry["fingerprint"] for entry in self.entries)

    @classmethod
    def load(cls, path: Path) -> Baseline:
        """Parse ``path``; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("schema") != _SCHEMA:
            raise ValueError(
                f"{path} is not a schema-{_SCHEMA} repro-analyze baseline "
                f"(schema={data.get('schema') if isinstance(data, dict) else None!r})"
            )
        entries = data.get("findings", [])
        for entry in entries:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise ValueError(f"{path}: malformed baseline entry {entry!r}")
        return cls(entries=list(entries))

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> Baseline:
        """Build a baseline accepting exactly ``findings`` as debt."""
        entries = [
            {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "fingerprint": finding.fingerprint,
            }
            for finding in sorted(findings, key=lambda finding: finding.sort_key)
        ]
        # One fingerprint per entry even if a finding repeats on several lines.
        seen: set[str] = set()
        unique = []
        for entry in entries:
            if entry["fingerprint"] not in seen:
                seen.add(entry["fingerprint"])
                unique.append(entry)
        return cls(entries=unique)

    def save(self, path: Path) -> None:
        payload = {"schema": _SCHEMA, "findings": self.entries}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
