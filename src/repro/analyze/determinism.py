"""Determinism lint (DET001-DET004).

The *deterministic zone* is the transitive import closure of the task and
experiment entry points (:attr:`AnalysisConfig.deterministic_seeds`): any code
a registered task can reach contributes to results that are cached purely by
``JobSpec.key``, so nothing in the zone may consult ambient state -- OS
entropy, the wall clock, hash-randomized iteration order -- or accumulate
floats in ways the chunk-invariance contract does not bless.

Rules:

* **DET001** -- RNG construction that draws fresh OS entropy
  (``np.random.default_rng()`` / ``SeedSequence()`` with no seed, the legacy
  ``np.random.*`` global-state functions, stdlib ``random``).
* **DET002** -- wall-clock reads (``time.time``, ``datetime.now``, ...).
  Monotonic clocks are fine: they time *the run*, not the result.
* **DET003** -- iteration over set expressions (hash order) and
  ``json.dumps`` without ``sort_keys=True`` (insertion order) feeding
  serialized output.
* **DET004** -- float ``+=`` accumulation inside chunk/segment loops outside
  the blessed accumulator types whose merge rules are proven order-safe.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analyze.engine import AnalysisConfig, Finding
from repro.analyze.source import ModuleSource, Project, resolve_dotted

__all__ = ["check"]

#: Entropy-drawing callables when invoked with no seed argument.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.Generator",  # Generator(PCG64()) -- the bit generator is the seed site
    }
)

#: Legacy numpy global-RNG functions: always nondeterministic process state.
_NUMPY_GLOBAL_RNG = frozenset(
    {
        "numpy.random.seed",
        "numpy.random.random",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random_sample",
        "numpy.random.normal",
        "numpy.random.uniform",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.bytes",
        "numpy.random.get_state",
        "numpy.random.set_state",
    }
)

#: Wall-clock reads.  ``time.monotonic``/``perf_counter`` are deliberately
#: absent -- they measure the run, not the result.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Accumulation targets whose names mark them as integer counters (int
#: addition is associative, so chunk order cannot change the result).
_COUNTER_PREFIXES = ("n_", "num_", "idx", "index", "seq", "count")
_COUNTER_SUFFIXES = (
    "count",
    "counts",
    "cycles",
    "transitions",
    "_n",
    "_len",
    "length",
    "fill",
    "position",
    "done",
    "take",
)


def _is_counter_name(name: str) -> bool:
    lowered = name.lower()
    return lowered.startswith(_COUNTER_PREFIXES) or lowered.endswith(_COUNTER_SUFFIXES)


def _no_seed_argument(call: ast.Call) -> bool:
    """True when the call passes no seed (no args, or an explicit ``None``)."""
    if not call.args and not call.keywords:
        return True
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for keyword in call.keywords:
        if keyword.arg in ("seed", "entropy"):
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is None
    return False


def _chunk_loop_hint(node: ast.For) -> bool:
    """Whether a loop's target or iterable names a chunk/segment traversal."""
    for sub in list(ast.walk(node.target)) + list(ast.walk(node.iter)):
        name: str | None = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None:
            lowered = name.lower()
            if "chunk" in lowered or "segment" in lowered:
                return True
    return False


def _augtarget_name(target: ast.expr) -> str | None:
    """The simple name being accumulated into, or ``None`` for complex targets."""
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
        return target.attr
    return None


class _ModuleVisitor(ast.NodeVisitor):
    """One pass over a zone module collecting all four DET findings."""

    def __init__(self, source: ModuleSource, config: AnalysisConfig) -> None:
        self.source = source
        self.config = config
        self.findings: list[Finding] = []
        self._class_stack: list[str] = []
        self._chunk_loop_depth = 0

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.source.rel_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    # ---------------------------------------------------------------- #
    # DET001 / DET002 / DET003(json)
    # ---------------------------------------------------------------- #
    def visit_Call(self, node: ast.Call) -> None:
        dotted = resolve_dotted(node.func, self.source.aliases)
        if dotted is not None:
            if dotted in _SEEDABLE_CONSTRUCTORS and _no_seed_argument(node):
                self._emit(
                    "DET001",
                    node,
                    f"{dotted}() without a seed draws fresh OS entropy; "
                    "thread a seed (see repro.utils.rng.make_rng)",
                )
            elif dotted in _NUMPY_GLOBAL_RNG:
                self._emit(
                    "DET001",
                    node,
                    f"{dotted}() uses the legacy numpy global RNG (shared, "
                    "unseedable per-job); use an explicit Generator",
                )
            elif dotted.startswith("random.") and dotted.count(".") == 1:
                self._emit(
                    "DET001",
                    node,
                    f"stdlib {dotted}() uses interpreter-global RNG state; "
                    "use a seeded numpy Generator",
                )
            elif dotted in _WALL_CLOCK:
                self._emit(
                    "DET002",
                    node,
                    f"{dotted}() reads the wall clock inside the deterministic "
                    "zone; results must depend only on parameters "
                    "(time.monotonic is fine for telemetry)",
                )
            elif dotted == "json.dumps":
                has_sort = any(
                    keyword.arg == "sort_keys"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in node.keywords
                )
                if not has_sort and not any(keyword.arg is None for keyword in node.keywords):
                    self._emit(
                        "DET003",
                        node,
                        "json.dumps without sort_keys=True serializes insertion "
                        "order, not content; byte output becomes layout-dependent",
                    )
        self.generic_visit(node)

    # ---------------------------------------------------------------- #
    # DET003 (set iteration)
    # ---------------------------------------------------------------- #
    def _iter_is_set_expr(self, iterable: ast.expr) -> bool:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            return True
        if isinstance(iterable, ast.Call):
            dotted = resolve_dotted(iterable.func, self.source.aliases)
            return dotted in ("set", "frozenset")
        return False

    def _check_set_iteration(self, iterable: ast.expr, node: ast.AST) -> None:
        if self._iter_is_set_expr(iterable):
            self._emit(
                "DET003",
                node,
                "iterating a set directly exposes hash order; wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter, node)
        entered_chunk = _chunk_loop_hint(node)
        if entered_chunk:
            self._chunk_loop_depth += 1
        self.generic_visit(node)
        if entered_chunk:
            self._chunk_loop_depth -= 1

    def _visit_comprehension(self, node: ast.AST, generators: list[ast.comprehension]) -> None:
        for generator in generators:
            self._check_set_iteration(generator.iter, node)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, node.generators)

    # ---------------------------------------------------------------- #
    # DET004 (float accumulation in chunk loops)
    # ---------------------------------------------------------------- #
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if (
            self._chunk_loop_depth > 0
            and isinstance(node.op, ast.Add)
            and not (self._class_stack and self._class_stack[-1] in self.config.blessed_accumulators)
        ):
            name = _augtarget_name(node.target)
            if name is not None and not _is_counter_name(name):
                self._emit(
                    "DET004",
                    node,
                    f"'{name} +=' inside a chunk/segment loop accumulates "
                    "floats in traversal order; use a blessed accumulator "
                    "(TraceStatisticsAccumulator et al.) or mark an integer "
                    "counter with a *_count name",
                )
        self.generic_visit(node)


def check(project: Project, config: AnalysisConfig) -> Iterator[Finding]:
    """Run the determinism lint over the project's deterministic zone."""
    zone = project.reachable_from(config.deterministic_seeds)
    for module in sorted(zone):
        if config.is_deterministic_exempt(module):
            continue
        source = project.modules[module]
        visitor = _ModuleVisitor(source, config)
        visitor.visit(source.tree)
        yield from visitor.findings
