"""Invariant-aware static analysis for the repro codebase.

``repro.analyze`` checks, before anything runs, the three invariants the
runtime stakes its correctness on:

* **determinism** (DET*) -- task-reachable code must not consult OS entropy,
  the wall clock, or hash-randomized iteration order, and must accumulate
  floats only through the blessed order-safe accumulators;
* **cache-key soundness** (CKS*) -- every registered task parameter provably
  flows into ``JobSpec.key`` (with content-hash folding for file-backed
  parameters) or is annotated ``# repro: key-irrelevant``;
* **lock discipline** (LCK*) -- attributes guarded by an instance lock are
  never touched without it, and foreign code is never invoked while the
  lock is held.

Run it with ``python -m repro analyze`` (see ``--list-rules``); suppress a
deliberate violation in place with ``# repro: noqa[RULE] reason`` and park
pre-existing debt in the committed baseline file.
"""

from repro.analyze.baseline import Baseline, default_baseline_path
from repro.analyze.engine import (
    RULE_CATALOG,
    AnalysisConfig,
    AnalysisReport,
    Finding,
    RuleInfo,
    analyze_project,
    default_source_root,
)
from repro.analyze.source import ModuleSource, Project

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "Baseline",
    "Finding",
    "ModuleSource",
    "Project",
    "RULE_CATALOG",
    "RuleInfo",
    "analyze_project",
    "default_baseline_path",
    "default_source_root",
]
