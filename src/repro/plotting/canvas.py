"""Character canvas with data-coordinate mapping.

The canvas is the low-level drawing surface used by
:mod:`repro.plotting.charts`: a rectangular grid of characters plus a
:class:`DataWindow` that maps data coordinates onto grid cells.  Charts only
ever talk to the canvas through :meth:`Canvas.plot_point` and
:meth:`Canvas.plot_line`, so the mapping (including degenerate windows where
all data collapse onto one value) lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DataWindow:
    """The rectangle of data coordinates mapped onto the plot area.

    Degenerate windows (``x_min == x_max`` or ``y_min == y_max``) are allowed:
    they arise naturally when a series is constant, and map every data point
    to the centre of the corresponding axis.
    """

    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min:
            raise ValueError(f"x_max ({self.x_max}) must be >= x_min ({self.x_min})")
        if self.y_max < self.y_min:
            raise ValueError(f"y_max ({self.y_max}) must be >= y_min ({self.y_min})")

    @classmethod
    def around(
        cls,
        xs: list[float],
        ys: list[float],
        pad_fraction: float = 0.0,
    ) -> DataWindow:
        """The smallest window containing every point, optionally padded."""
        if not xs or not ys:
            raise ValueError("cannot build a data window around an empty point set")
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        x_pad = (x_max - x_min) * pad_fraction
        y_pad = (y_max - y_min) * pad_fraction
        return cls(x_min - x_pad, x_max + x_pad, y_min - y_pad, y_max + y_pad)

    def x_fraction(self, x: float) -> float:
        """Position of ``x`` inside the window as a 0..1 fraction (0.5 if degenerate)."""
        if self.x_max == self.x_min:
            return 0.5
        return (x - self.x_min) / (self.x_max - self.x_min)

    def y_fraction(self, y: float) -> float:
        """Position of ``y`` inside the window as a 0..1 fraction (0.5 if degenerate)."""
        if self.y_max == self.y_min:
            return 0.5
        return (y - self.y_min) / (self.y_max - self.y_min)


class Canvas:
    """A fixed-size grid of characters with a data-coordinate plot area.

    Parameters
    ----------
    width, height:
        Size of the *plot area* in characters (axes and labels are added by
        :meth:`render`, outside this area).
    window:
        Mapping from data coordinates to the plot area.
    """

    def __init__(self, width: int, height: int, window: DataWindow) -> None:
        check_positive("width", width)
        check_positive("height", height)
        self.width = int(width)
        self.height = int(height)
        self.window = window
        self._cells: list[list[str]] = [[" "] * self.width for _ in range(self.height)]

    # ------------------------------------------------------------------ #
    # Coordinate mapping
    # ------------------------------------------------------------------ #
    def cell_for(self, x: float, y: float) -> tuple[int, int] | None:
        """Grid cell (row, column) for a data point, or ``None`` if outside."""
        fx = self.window.x_fraction(x)
        fy = self.window.y_fraction(y)
        if not (0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0):
            return None
        column = min(self.width - 1, int(round(fx * (self.width - 1))))
        row = min(self.height - 1, int(round((1.0 - fy) * (self.height - 1))))
        return row, column

    # ------------------------------------------------------------------ #
    # Drawing
    # ------------------------------------------------------------------ #
    def plot_point(self, x: float, y: float, marker: str = "*") -> bool:
        """Plot one data point; returns whether it landed inside the window."""
        cell = self.cell_for(x, y)
        if cell is None:
            return False
        row, column = cell
        self._cells[row][column] = marker[0]
        return True

    def plot_line(self, x0: float, y0: float, x1: float, y1: float, marker: str = "*") -> None:
        """Plot a straight segment between two data points.

        The segment is rasterised by stepping one character at a time along
        its longer screen axis, which is plenty for report-quality charts.
        """
        start = self.cell_for(x0, y0)
        end = self.cell_for(x1, y1)
        if start is None or end is None:
            # Fall back to plotting whichever endpoint is visible.
            self.plot_point(x0, y0, marker)
            self.plot_point(x1, y1, marker)
            return
        row0, col0 = start
        row1, col1 = end
        steps = max(abs(row1 - row0), abs(col1 - col0), 1)
        for step in range(steps + 1):
            t = step / steps
            row = int(round(row0 + (row1 - row0) * t))
            column = int(round(col0 + (col1 - col0) * t))
            self._cells[row][column] = marker[0]

    def write_text(self, row: int, column: int, text: str) -> None:
        """Write a text label into the plot area (clipped to the canvas)."""
        if not 0 <= row < self.height:
            return
        for offset, character in enumerate(text):
            target = column + offset
            if 0 <= target < self.width:
                self._cells[row][target] = character

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render(
        self,
        title: str = "",
        x_label: str = "",
        y_label: str = "",
        y_format: str = "{:.3g}",
        x_format: str = "{:.3g}",
    ) -> str:
        """Render the canvas with a frame, axis extents and optional labels."""
        lines: list[str] = []
        label_width = max(
            len(y_format.format(self.window.y_min)),
            len(y_format.format(self.window.y_max)),
            len(y_label),
        )
        if title:
            lines.append(" " * (label_width + 2) + title)
        if y_label:
            lines.append(y_label.rjust(label_width))

        top_label = y_format.format(self.window.y_max).rjust(label_width)
        bottom_label = y_format.format(self.window.y_min).rjust(label_width)
        for index, row in enumerate(self._cells):
            if index == 0:
                prefix = top_label
            elif index == self.height - 1:
                prefix = bottom_label
            else:
                prefix = " " * label_width
            lines.append(f"{prefix} |{''.join(row)}|")

        x_left = x_format.format(self.window.x_min)
        x_right = x_format.format(self.window.x_max)
        axis = " " * label_width + " +" + "-" * self.width + "+"
        lines.append(axis)
        gap = max(1, self.width - len(x_left) - len(x_right))
        lines.append(" " * (label_width + 2) + x_left + " " * gap + x_right)
        if x_label:
            lines.append(" " * (label_width + 2) + x_label.center(self.width))
        return "\n".join(lines)
