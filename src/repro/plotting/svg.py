"""SVG chart rendering for report artifacts.

The terminal charts in :mod:`repro.plotting.charts` stay the default for
interactive use; this module renders the same :class:`~repro.plotting.charts.Series`
data as self-contained SVG documents for the ``repro report`` artifact
directory.  Coordinate mapping reuses the :class:`~repro.plotting.canvas.DataWindow`
abstraction of the character canvas, so both backends agree on what a data
window is (including the degenerate all-points-equal case).

Output is deterministic: no timestamps, no random ids, and every coordinate
is formatted with a fixed precision -- rendering the same data twice yields
byte-identical SVG, which is what lets the golden-file tests and the CI
drift check hold.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from xml.sax.saxutils import escape

from repro.plotting.canvas import DataWindow
from repro.plotting.charts import Series

__all__ = ["svg_line_chart", "svg_bar_chart", "PALETTE"]

#: Line/bar fill colours cycled through per series (colour-blind-safe-ish).
PALETTE: tuple[str, ...] = (
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#8c564b",
    "#17becf",
    "#7f7f7f",
)

_MARGIN_LEFT = 64.0
_MARGIN_RIGHT = 18.0
_MARGIN_TOP = 34.0
_MARGIN_BOTTOM = 48.0
_FONT = "font-family=\"Helvetica, Arial, sans-serif\""


def _fmt(value: float) -> str:
    """Fixed-precision coordinate formatting (deterministic output)."""
    return f"{value:.2f}"


def _tick_values(low: float, high: float, n: int = 5) -> list[float]:
    if high == low:
        return [low]
    step = (high - low) / (n - 1)
    return [low + index * step for index in range(n)]


def _tick_label(value: float) -> str:
    return f"{value:.4g}"


class _Frame:
    """Pixel-space plot frame with axes, ticks and a title."""

    def __init__(self, width: int, height: int, window: DataWindow) -> None:
        self.width = float(width)
        self.height = float(height)
        self.window = window
        self.x0 = _MARGIN_LEFT
        self.y0 = _MARGIN_TOP
        self.x1 = self.width - _MARGIN_RIGHT
        self.y1 = self.height - _MARGIN_BOTTOM

    def px(self, x: float) -> float:
        """Pixel X of a data X coordinate."""
        return self.x0 + self.window.x_fraction(x) * (self.x1 - self.x0)

    def py(self, y: float) -> float:
        """Pixel Y of a data Y coordinate (SVG Y grows downwards)."""
        return self.y1 - self.window.y_fraction(y) * (self.y1 - self.y0)

    def header(self, title: str) -> list[str]:
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width:.0f}" '
            f'height="{self.height:.0f}" viewBox="0 0 {self.width:.0f} {self.height:.0f}">',
            f'<rect width="{self.width:.0f}" height="{self.height:.0f}" fill="white"/>',
        ]
        if title:
            parts.append(
                f'<text x="{self.width / 2:.0f}" y="20" text-anchor="middle" '
                f'{_FONT} font-size="14" font-weight="bold">{escape(title)}</text>'
            )
        return parts

    def frame_rect(self) -> str:
        """The plot-area border."""
        return (
            f'<rect x="{_fmt(self.x0)}" y="{_fmt(self.y0)}" '
            f'width="{_fmt(self.x1 - self.x0)}" height="{_fmt(self.y1 - self.y0)}" '
            'fill="none" stroke="#333333" stroke-width="1"/>'
        )

    def x_ticks(self) -> list[str]:
        """Tick marks and labels along the bottom edge."""
        parts: list[str] = []
        for tick in _tick_values(self.window.x_min, self.window.x_max):
            px = self.px(tick)
            parts.append(
                f'<line x1="{_fmt(px)}" y1="{_fmt(self.y1)}" x2="{_fmt(px)}" '
                f'y2="{_fmt(self.y1 + 4)}" stroke="#333333" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{_fmt(px)}" y="{_fmt(self.y1 + 17)}" text-anchor="middle" '
                f'{_FONT} font-size="10">{escape(_tick_label(tick))}</text>'
            )
        return parts

    def y_ticks(self) -> list[str]:
        """Tick marks, labels and gridlines along the left edge."""
        parts: list[str] = []
        for tick in _tick_values(self.window.y_min, self.window.y_max):
            py = self.py(tick)
            parts.append(
                f'<line x1="{_fmt(self.x0 - 4)}" y1="{_fmt(py)}" x2="{_fmt(self.x0)}" '
                f'y2="{_fmt(py)}" stroke="#333333" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{_fmt(self.x0 - 7)}" y="{_fmt(py + 3)}" text-anchor="end" '
                f'{_FONT} font-size="10">{escape(_tick_label(tick))}</text>'
            )
            parts.append(
                f'<line x1="{_fmt(self.x0)}" y1="{_fmt(py)}" x2="{_fmt(self.x1)}" '
                f'y2="{_fmt(py)}" stroke="#e0e0e0" stroke-width="0.5"/>'
            )
        return parts

    def x_title(self, label: str) -> list[str]:
        if not label:
            return []
        return [
            f'<text x="{_fmt((self.x0 + self.x1) / 2)}" y="{_fmt(self.height - 10)}" '
            f'text-anchor="middle" {_FONT} font-size="11">{escape(label)}</text>'
        ]

    def y_title(self, label: str) -> list[str]:
        if not label:
            return []
        cx, cy = 15.0, (self.y0 + self.y1) / 2
        return [
            f'<text x="{_fmt(cx)}" y="{_fmt(cy)}" text-anchor="middle" {_FONT} '
            f'font-size="11" transform="rotate(-90 {_fmt(cx)} {_fmt(cy)})">'
            f"{escape(label)}</text>"
        ]

    def axes(self, x_label: str, y_label: str) -> list[str]:
        return (
            [self.frame_rect()]
            + self.x_ticks()
            + self.y_ticks()
            + self.x_title(x_label)
            + self.y_title(y_label)
        )

    def legend(self, names: Sequence[str]) -> list[str]:
        parts: list[str] = []
        y = self.y0 + 14
        for index, name in enumerate(names):
            colour = PALETTE[index % len(PALETTE)]
            parts.append(
                f'<rect x="{_fmt(self.x0 + 8)}" y="{_fmt(y - 8)}" width="14" height="4" '
                f'fill="{colour}"/>'
            )
            parts.append(
                f'<text x="{_fmt(self.x0 + 27)}" y="{_fmt(y - 2)}" {_FONT} '
                f'font-size="10">{escape(name)}</text>'
            )
            y += 14
        return parts


def _window_for(series: Sequence[Series]) -> DataWindow:
    xs = [float(x) for entry in series for x in entry.xs]
    ys = [float(y) for entry in series for y in entry.ys]
    return DataWindow.around(xs, ys, pad_fraction=0.04)


def svg_line_chart(
    series: Iterable[Series],
    *,
    width: int = 640,
    height: int = 400,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    window: DataWindow | None = None,
    markers: bool = False,
) -> str:
    """Render one or more series as an SVG line chart.

    Parameters mirror :func:`repro.plotting.charts.line_chart`; ``markers``
    additionally draws a small circle at every data point (useful for sparse
    series such as the Fig. 5 corner points).
    """
    series = list(series)
    if not series:
        raise ValueError("svg_line_chart needs at least one series")
    frame = _Frame(width, height, window or _window_for(series))
    parts = frame.header(title) + frame.axes(x_label, y_label)
    for index, entry in enumerate(series):
        colour = PALETTE[index % len(PALETTE)]
        points = " ".join(
            f"{_fmt(frame.px(float(x)))},{_fmt(frame.py(float(y)))}"
            for x, y in zip(entry.xs, entry.ys)
        )
        if len(entry.xs) > 1:
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{colour}" '
                'stroke-width="1.5"/>'
            )
        if markers or len(entry.xs) == 1:
            for x, y in zip(entry.xs, entry.ys):
                parts.append(
                    f'<circle cx="{_fmt(frame.px(float(x)))}" '
                    f'cy="{_fmt(frame.py(float(y)))}" r="2.5" fill="{colour}"/>'
                )
    if len(series) > 1:
        parts += frame.legend([entry.name for entry in series])
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def svg_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 640,
    height: int = 400,
    title: str = "",
    y_label: str = "",
    value_format: str = "{:.1f}",
) -> str:
    """Render a vertical bar chart (one bar per label) as SVG.

    Negative values draw no bar but still print the value, matching the
    behaviour of the terminal :func:`~repro.plotting.charts.bar_chart`.
    """
    labels = [str(label) for label in labels]
    values = [float(value) for value in values]
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if not labels:
        raise ValueError("svg_bar_chart needs at least one bar")
    top = max(max(values), 0.0) or 1.0
    window = DataWindow(0.0, float(len(labels)), 0.0, top * 1.1)
    frame = _Frame(width, height, window)
    parts = frame.header(title) + [frame.frame_rect()] + frame.y_ticks()
    slot = (frame.x1 - frame.x0) / len(labels)
    bar_width = slot * 0.62
    for index, (label, value) in enumerate(zip(labels, values)):
        colour = PALETTE[index % len(PALETTE)]
        centre = frame.x0 + (index + 0.5) * slot
        if value > 0:
            bar_top = frame.py(min(value, top * 1.1))
            parts.append(
                f'<rect x="{_fmt(centre - bar_width / 2)}" y="{_fmt(bar_top)}" '
                f'width="{_fmt(bar_width)}" height="{_fmt(frame.y1 - bar_top)}" '
                f'fill="{colour}" fill-opacity="0.85"/>'
            )
            value_y = bar_top - 4
        else:
            value_y = frame.y1 - 4
        parts.append(
            f'<text x="{_fmt(centre)}" y="{_fmt(value_y)}" text-anchor="middle" '
            f'{_FONT} font-size="9">{escape(value_format.format(value))}</text>'
        )
        parts.append(
            f'<text x="{_fmt(centre)}" y="{_fmt(frame.y1 + 14)}" text-anchor="middle" '
            f'{_FONT} font-size="9">{escape(label)}</text>'
        )
    parts += frame.y_title(y_label)
    parts.append("</svg>")
    return "\n".join(parts) + "\n"
