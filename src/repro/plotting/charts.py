"""Report-quality character charts.

Four chart types cover everything the paper's figures need:

* :func:`line_chart` -- Fig. 4-style curves (energy / error rate vs voltage)
  and Fig. 8-style time series,
* :func:`scatter_chart` -- Fig. 5 / Fig. 10 gain-vs-delay points,
* :func:`bar_chart` -- Table 1 and Fig. 6 style per-benchmark comparisons,
* :func:`histogram` -- distributions (voltage residency, window error rates).

All functions return plain strings so they compose with the existing
``repro.analysis.reporting`` text tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.plotting.canvas import Canvas, DataWindow

#: Markers cycled through when a chart holds several series.
DEFAULT_MARKERS = "*o+x#@%&"


@dataclass(frozen=True)
class Series:
    """One named data series of a line or scatter chart."""

    name: str
    xs: Sequence[float]
    ys: Sequence[float]
    marker: str | None = None

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.name!r} has {len(self.xs)} x values but {len(self.ys)} y values"
            )
        if len(self.xs) == 0:
            raise ValueError(f"series {self.name!r} is empty")


def _window_for(series: Sequence[Series]) -> DataWindow:
    xs = [float(x) for s in series for x in s.xs]
    ys = [float(y) for s in series for y in s.ys]
    return DataWindow.around(xs, ys, pad_fraction=0.02)


def _legend(series: Sequence[Series], markers: Sequence[str]) -> str:
    entries = [f"{marker} {s.name}" for s, marker in zip(series, markers)]
    return "legend: " + "   ".join(entries)


def _assign_markers(series: Sequence[Series]) -> list[str]:
    markers: list[str] = []
    for index, entry in enumerate(series):
        markers.append(entry.marker or DEFAULT_MARKERS[index % len(DEFAULT_MARKERS)])
    return markers


def line_chart(
    series: Iterable[Series],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    window: DataWindow | None = None,
) -> str:
    """Render one or more series as connected line plots."""
    series = list(series)
    if not series:
        raise ValueError("line_chart needs at least one series")
    markers = _assign_markers(series)
    canvas = Canvas(width, height, window or _window_for(series))
    for entry, marker in zip(series, markers):
        xs = list(entry.xs)
        ys = list(entry.ys)
        if len(xs) == 1:
            canvas.plot_point(xs[0], ys[0], marker)
            continue
        for index in range(len(xs) - 1):
            canvas.plot_line(xs[index], ys[index], xs[index + 1], ys[index + 1], marker)
    chart = canvas.render(title=title, x_label=x_label, y_label=y_label)
    if len(series) > 1:
        chart += "\n" + _legend(series, markers)
    return chart


def scatter_chart(
    series: Iterable[Series],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    window: DataWindow | None = None,
) -> str:
    """Render one or more series as unconnected points."""
    series = list(series)
    if not series:
        raise ValueError("scatter_chart needs at least one series")
    markers = _assign_markers(series)
    canvas = Canvas(width, height, window or _window_for(series))
    for entry, marker in zip(series, markers):
        for x, y in zip(entry.xs, entry.ys):
            canvas.plot_point(float(x), float(y), marker)
    chart = canvas.render(title=title, x_label=x_label, y_label=y_label)
    if len(series) > 1:
        chart += "\n" + _legend(series, markers)
    return chart


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str = "",
    value_format: str = "{:.1f}",
    max_value: float | None = None,
) -> str:
    """Render a horizontal bar chart (one row per label).

    Negative values render as an empty bar with the value printed, which keeps
    pathological results (e.g. a controller that *loses* energy) visible
    without complicating the layout.
    """
    labels = list(labels)
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if not labels:
        raise ValueError("bar_chart needs at least one bar")
    top = max_value if max_value is not None else max(max(values), 0.0)
    label_width = max(len(label) for label in labels)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        if top > 0 and value > 0:
            bar_length = int(round(min(value, top) / top * width))
        else:
            bar_length = 0
        bar = "#" * bar_length
        lines.append(f"{label.rjust(label_width)} | {bar} {value_format.format(value)}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    *,
    bins: int = 10,
    width: int = 50,
    title: str = "",
    bin_format: str = "{:.3g}",
    bin_edges: Sequence[float] | None = None,
) -> str:
    """Render a histogram of ``values`` as a horizontal bar chart.

    ``bin_edges`` overrides the automatic equal-width binning, which is useful
    when the natural bins are known (e.g. the 20 mV voltage grid of Fig. 6).
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("histogram needs at least one value")
    if bin_edges is not None:
        edges = np.asarray(list(bin_edges), dtype=float)
        if edges.ndim != 1 or len(edges) < 2:
            raise ValueError("bin_edges must be a 1-D sequence of at least two edges")
    else:
        edges = np.histogram_bin_edges(data, bins=bins)
    counts, edges = np.histogram(data, bins=edges)
    labels = [
        f"[{bin_format.format(lo)}, {bin_format.format(hi)})"
        for lo, hi in zip(edges[:-1], edges[1:])
    ]
    share = counts / counts.sum() * 100.0
    return bar_chart(
        labels,
        share.tolist(),
        width=width,
        title=title,
        value_format="{:.1f}%",
        max_value=100.0,
    )


def residency_chart(
    residency: dict[float, float],
    *,
    width: int = 50,
    title: str = "",
) -> str:
    """Fig. 6 helper: time share (%) per supply voltage, lowest voltage first."""
    if not residency:
        raise ValueError("residency_chart needs at least one voltage")
    items: list[tuple[float, float]] = sorted(residency.items())
    labels = [f"{voltage * 1000:.0f} mV" for voltage, _ in items]
    values = [share * 100.0 for _, share in items]
    return bar_chart(labels, values, width=width, title=title, value_format="{:.1f}%", max_value=100.0)
