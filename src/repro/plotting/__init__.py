"""Plotting for experiment reports: terminal (ASCII) charts and SVG figures.

The paper's evaluation is presented as figures; this reproduction is a
library-and-harness, so every figure is rendered without any plotting
dependency, in two backends sharing one coordinate-mapping abstraction
(:class:`~repro.plotting.canvas.DataWindow`):

* :mod:`repro.plotting.canvas` -- a character canvas with data-to-character
  coordinate mapping,
* :mod:`repro.plotting.charts` -- line / scatter charts, horizontal bar
  charts and histograms built on the canvas (printed by the CLI, the
  benchmark harness and the examples),
* :mod:`repro.plotting.svg` -- deterministic SVG line / bar charts used by
  ``python -m repro report`` for the figure artifacts.
"""

from repro.plotting.canvas import Canvas, DataWindow
from repro.plotting.charts import (
    Series,
    bar_chart,
    histogram,
    line_chart,
    residency_chart,
    scatter_chart,
)
from repro.plotting.svg import svg_bar_chart, svg_line_chart

__all__ = [
    "Canvas",
    "DataWindow",
    "Series",
    "bar_chart",
    "histogram",
    "line_chart",
    "residency_chart",
    "scatter_chart",
    "svg_bar_chart",
    "svg_line_chart",
]
