"""Terminal (ASCII) plotting for experiment reports.

The paper's evaluation is presented as figures; this reproduction is a
library-and-harness, so every figure is also rendered as a character chart
that can be printed from the benchmark harness, the examples and the CLI
without any plotting dependency.

* :mod:`repro.plotting.canvas` -- a character canvas with data-to-character
  coordinate mapping,
* :mod:`repro.plotting.charts` -- line / scatter charts, horizontal bar
  charts and histograms built on the canvas.
"""

from repro.plotting.canvas import Canvas, DataWindow
from repro.plotting.charts import (
    Series,
    bar_chart,
    histogram,
    line_chart,
    residency_chart,
    scatter_chart,
)

__all__ = [
    "Canvas",
    "DataWindow",
    "Series",
    "bar_chart",
    "histogram",
    "line_chart",
    "residency_chart",
    "scatter_chart",
]
