"""Stable JSON serialisation of experiment results.

Every experiment in :mod:`repro.analysis.experiments` returns a rich result
object (``Table1Result``, ``Fig8Result``, a list of studies, ...).  The
runtime cache and the report subsystem need those results as plain JSON, so
each result dataclass exposes a stable ``as_dict()`` contract and this module
provides the one dispatcher that turns *any* registry result into a JSON-able
payload:

>>> from repro.analysis.serialize import experiment_payload
>>> from repro.analysis.modified_bus import run_technology_scaling_study
>>> payload = experiment_payload("scaling", run_technology_scaling_study())
>>> payload["kind"], payload["data"]["nodes"][0]["node"]
('TechnologyScalingStudy', '130nm')

The payload shape is ``{"kind": <result class name>, "data": <as_dict()>}``;
lists of studies become ``{"kind": "StudyList", "data": {"studies": [...]}}``
and plain mappings pass through with every value serialised recursively.
Rendering (`repro.report.render`) consumes exactly this shape, so a result
loaded from the content-addressed cache renders byte-identically to a fresh
in-memory one.
"""

from __future__ import annotations

from typing import Any
from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["experiment_payload", "json_clean"]


def json_clean(value: Any) -> Any:
    """Recursively convert a value into plain JSON-able Python types.

    NumPy scalars and arrays become Python numbers and lists, mappings become
    plain dicts with string keys, and tuples become lists.  Anything exposing
    ``as_dict()`` is serialised through it.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [json_clean(item) for item in value.tolist()]
    if hasattr(value, "as_dict"):
        return json_clean(value.as_dict())
    if isinstance(value, Mapping):
        return {str(key): json_clean(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_clean(item) for item in value]
    raise TypeError(f"cannot serialise {type(value).__name__!r} value {value!r} to JSON")


def experiment_payload(identifier: str, result: Any) -> dict[str, Any]:
    """The stable JSON payload of one experiment's result object.

    Parameters
    ----------
    identifier:
        Registry id (``table1``, ``fig8``, ...); recorded in the payload so a
        cached record is self-describing.
    result:
        Whatever the experiment runner returned: a result dataclass with
        ``as_dict()``, a list/tuple of such studies, or a mapping of them
        (the IPC experiment returns ``{model_name: IPCImpact}``).
    """
    if hasattr(result, "as_dict"):
        kind = type(result).__name__
        data: Any = json_clean(result.as_dict())
    elif isinstance(result, Mapping):
        kind = "Mapping"
        data = json_clean(result)
    elif isinstance(result, Sequence) and not isinstance(result, (str, bytes)):
        kind = "StudyList"
        data = {"studies": [json_clean(item) for item in result]}
    else:
        raise TypeError(
            f"experiment {identifier!r} returned a {type(result).__name__}, which has "
            "no as_dict() serialisation path"
        )
    return {"experiment": identifier, "kind": kind, "data": data}
