"""Oracle voltage-residency study (paper Fig. 6).

Fig. 6 shows, for three programs (crafty, vortex, mgrid) at the typical
corner, the percentage of execution time the bus would spend at each supply
voltage if an oracle chose the optimal voltage per 10 000-cycle window while
keeping the window error rate at or below a target (2 % and 5 %).  The study
illustrates that the exploitable slack differs widely between programs --
which is exactly what the closed-loop controller later harvests.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.bus.bus_design import BusDesign
from repro.bus.bus_model import CharacterizedBus
from repro.circuit.pvt import TYPICAL_CORNER, PVTCorner
from repro.core.error_detection import DEFAULT_WINDOW_CYCLES
from repro.core.oracle import OracleSchedule, oracle_voltage_schedule
from repro.trace.trace import BusTrace

#: The three programs the paper plots in Fig. 6.
FIG6_BENCHMARKS: tuple[str, ...] = ("crafty", "vortex", "mgrid")

#: The two error-rate targets of Fig. 6.
FIG6_TARGETS: tuple[float, ...] = (0.02, 0.05)


@dataclass(frozen=True)
class ResidencyEntry:
    """Oracle result for one (benchmark, target error rate) pair."""

    benchmark: str
    target_error_rate: float
    residency: dict[float, float]
    schedule: OracleSchedule

    @property
    def dominant_voltage(self) -> float:
        """Voltage at which the program spends the largest share of its time."""
        return max(self.residency, key=self.residency.get)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for reporting: residency keyed by millivolts."""
        return {
            "benchmark": self.benchmark,
            "target_error_rate_percent": self.target_error_rate * 100.0,
            "energy_gain_percent": round(self.schedule.energy_gain_percent, 2),
            "average_error_rate_percent": round(self.schedule.average_error_rate * 100.0, 3),
            "residency_percent": {
                f"{voltage * 1000:.0f}mV": round(share * 100.0, 1)
                for voltage, share in sorted(self.residency.items())
            },
        }


@dataclass(frozen=True)
class OracleResidencyStudy:
    """Fig. 6: per-benchmark, per-target oracle voltage residencies."""

    corner: PVTCorner
    window_cycles: int
    entries: tuple[ResidencyEntry, ...]

    def entry(self, benchmark: str, target: float) -> ResidencyEntry:
        """Look up the entry of one (benchmark, target) pair."""
        for candidate in self.entries:
            if candidate.benchmark == benchmark and abs(
                candidate.target_error_rate - target
            ) < 1e-12:
                return candidate
        raise KeyError(f"no entry for benchmark={benchmark!r}, target={target}")

    def dominant_voltages(self, target: float) -> dict[str, float]:
        """Dominant residency voltage per benchmark at one target rate."""
        return {
            entry.benchmark: entry.dominant_voltage
            for entry in self.entries
            if abs(entry.target_error_rate - target) < 1e-12
        }

    def as_dict(self) -> dict[str, object]:
        """Stable JSON-able view: one residency entry per (benchmark, target)."""
        return {
            "corner": self.corner.label,
            "window_cycles": int(self.window_cycles),
            "entries": [entry.as_dict() for entry in self.entries],
        }


def run_oracle_residency(
    design: BusDesign,
    workloads: Mapping[str, BusTrace],
    benchmarks: Sequence[str] = FIG6_BENCHMARKS,
    targets: Sequence[float] = FIG6_TARGETS,
    corner: PVTCorner = TYPICAL_CORNER,
    window_cycles: int = DEFAULT_WINDOW_CYCLES,
    bus: CharacterizedBus | None = None,
) -> OracleResidencyStudy:
    """Reproduce Fig. 6: oracle voltage residency per program and error target.

    Parameters
    ----------
    design:
        The bus design (original paper bus by default).
    workloads:
        Benchmark traces keyed by name; must contain every requested benchmark.
    benchmarks:
        Benchmarks to include (the paper plots crafty, vortex and mgrid).
    targets:
        Window error-rate targets (the paper plots 2 % and 5 %).
    corner:
        PVT corner (the paper uses typical process, 100 C, no IR drop).
    window_cycles:
        Oracle scheduling window (10 000 cycles in the paper).
    bus:
        Optional pre-characterised bus to reuse.
    """
    if bus is None:
        bus = CharacterizedBus(design, corner)
    entries = []
    for name in benchmarks:
        if name not in workloads:
            raise KeyError(f"workloads is missing a trace for benchmark {name!r}")
        stats = bus.analyze(workloads[name].values)
        for target in targets:
            schedule = oracle_voltage_schedule(
                bus, stats, target_error_rate=target, window_cycles=window_cycles
            )
            entries.append(
                ResidencyEntry(
                    benchmark=name,
                    target_error_rate=target,
                    residency=schedule.voltage_residency(),
                    schedule=schedule,
                )
            )
    return OracleResidencyStudy(
        corner=corner, window_cycles=window_cycles, entries=tuple(entries)
    )
