"""Interconnect-architecture and technology-scaling studies (paper Section 6).

Two studies:

* :func:`run_modified_bus_study` reproduces Fig. 10 and the accompanying
  Table 1 delta: the bus's wire parasitics are re-balanced so that Cc/Cg is
  1.95x the original at constant worst-case load, the Fig. 5 corner/gain
  study is repeated on the modified bus, and the closed-loop controller is
  re-run at the worst-case corner to show the average gain improving (the
  paper reports 6.3 % -> 8.2 %).
* :func:`run_technology_scaling_study` quantifies the Section 6 argument that
  the delay spread between worst-case and typical switching patterns (the
  ``R x Cc`` term) grows with technology scaling, so the approach becomes more
  attractive at smaller nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.analysis.static_scaling import CornerGainStudy, run_corner_gain_study
from repro.bus.bus_design import BusDesign
from repro.bus.bus_model import CharacterizedBus
from repro.circuit.pvt import WORST_CASE_CORNER, PVTCorner
from repro.core.dvs_system import DVSBusSystem
from repro.interconnect.scaling import delay_spread_metric, scaled_node_series
from repro.trace.generator import DEFAULT_CYCLES_PER_BENCHMARK, generate_suite
from repro.trace.trace import BusTrace

#: The coupling-ratio multiplier of the paper's modified bus.
PAPER_COUPLING_RATIO_MULTIPLIER = 1.95


@dataclass(frozen=True)
class ModifiedBusStudy:
    """Fig. 10 plus the closed-loop comparison at the worst corner."""

    ratio_multiplier: float
    original_study: CornerGainStudy
    modified_study: CornerGainStudy
    original_worst_corner_dvs_gain: float
    modified_worst_corner_dvs_gain: float
    original_worst_corner_error_rate: float
    modified_worst_corner_error_rate: float

    @property
    def zero_error_gains_unchanged(self) -> bool:
        """Whether the 0 % error-rate curve is (approximately) unchanged.

        The modified bus keeps the worst-case load constant, so the zero-error
        operating points -- which are set by the worst-case pattern -- must not
        move by more than one 20 mV grid step's worth of energy.
        """
        original = self.original_study.gains_for_target(0.0)
        modified = self.modified_study.gains_for_target(0.0)
        return all(abs(a - b) < 4.0 for a, b in zip(original, modified))

    def gain_improvement_percent(self, target: float) -> dict[int, float]:
        """Per-corner gain improvement (modified minus original) at one target."""
        improvements: dict[int, float] = {}
        for original, modified in zip(self.original_study.points, self.modified_study.points):
            improvements[original.corner_index] = (
                modified.gains_percent[target] - original.gains_percent[target]
            )
        return improvements

    def as_dict(self) -> dict[str, object]:
        """Stable JSON-able view: both corner studies plus the closed-loop delta."""
        return {
            "ratio_multiplier": float(self.ratio_multiplier),
            "original_study": self.original_study.as_dict(),
            "modified_study": self.modified_study.as_dict(),
            "closed_loop_worst_corner": {
                "original_gain_percent": round(self.original_worst_corner_dvs_gain, 2),
                "modified_gain_percent": round(self.modified_worst_corner_dvs_gain, 2),
                "original_error_rate_percent": round(
                    self.original_worst_corner_error_rate * 100.0, 3
                ),
                "modified_error_rate_percent": round(
                    self.modified_worst_corner_error_rate * 100.0, 3
                ),
            },
        }


def run_modified_bus_study(
    design: BusDesign | None = None,
    workloads: Mapping[str, BusTrace] | None = None,
    ratio_multiplier: float = PAPER_COUPLING_RATIO_MULTIPLIER,
    targets: Sequence[float] = (0.0, 0.02, 0.05),
    n_cycles: int = DEFAULT_CYCLES_PER_BENCHMARK,
    seed: int = 2005,
    closed_loop_corner: PVTCorner = WORST_CASE_CORNER,
    warmup_fraction: float = 0.5,
    window_cycles: int = 10_000,
    ramp_delay_cycles: int = 3000,
) -> ModifiedBusStudy:
    """Reproduce Fig. 10 and the modified-bus closed-loop comparison.

    The modified design shares the original's repeater sizing (the worst-case
    delay is unchanged by construction), so any gain difference comes purely
    from the larger delay gap between worst-case and typical patterns.
    """
    if design is None:
        design = BusDesign.paper_bus()
    if workloads is None:
        workloads = generate_suite(n_cycles=n_cycles, seed=seed)
    modified_design = design.with_modified_coupling(ratio_multiplier)

    original_study = run_corner_gain_study(
        design, workloads, targets=targets, design_label="original bus"
    )
    modified_study = run_corner_gain_study(
        modified_design, workloads, targets=targets, design_label="modified bus"
    )

    def closed_loop_gain(bus_design: BusDesign) -> tuple[float, float]:
        bus = CharacterizedBus(bus_design, closed_loop_corner)
        system = DVSBusSystem(
            bus, window_cycles=window_cycles, ramp_delay_cycles=ramp_delay_cycles
        )
        total_energy = 0.0
        total_reference = 0.0
        total_errors = 0
        total_cycles = 0
        for trace in workloads.values():
            stats = bus.analyze(trace.values)
            warmup = int(warmup_fraction * stats.n_cycles)
            run = system.run(stats, warmup_cycles=warmup)
            total_energy += run.energy.total_with_recovery
            total_reference += run.reference_energy.total_with_recovery
            total_errors += run.total_errors
            total_cycles += run.n_cycles
        gain = 100.0 * (1.0 - total_energy / total_reference)
        error_rate = total_errors / total_cycles if total_cycles else 0.0
        return gain, error_rate

    original_gain, original_error = closed_loop_gain(design)
    modified_gain, modified_error = closed_loop_gain(modified_design)

    return ModifiedBusStudy(
        ratio_multiplier=ratio_multiplier,
        original_study=original_study,
        modified_study=modified_study,
        original_worst_corner_dvs_gain=original_gain,
        modified_worst_corner_dvs_gain=modified_gain,
        original_worst_corner_error_rate=original_error,
        modified_worst_corner_error_rate=modified_error,
    )


@dataclass(frozen=True)
class TechnologyScalingStudy:
    """Section 6 trend: delay-spread figure of merit across technology nodes."""

    segment_length: float
    spread_by_node: dict[str, float]
    normalized_spread: dict[str, float]

    @property
    def monotonically_increasing(self) -> bool:
        """Whether the delay spread grows monotonically as the node shrinks."""
        values = list(self.spread_by_node.values())
        return all(later >= earlier for earlier, later in zip(values, values[1:]))

    def as_dict(self) -> dict[str, object]:
        """Stable JSON-able view: per-node spread, largest node first."""
        return {
            "segment_length_mm": round(self.segment_length * 1e3, 3),
            "monotonically_increasing": bool(self.monotonically_increasing),
            "nodes": [
                {
                    "node": name,
                    "spread_ps": round(self.spread_by_node[name] * 1e12, 3),
                    "normalized": round(self.normalized_spread[name], 3),
                }
                for name in self.spread_by_node
            ],
        }


def run_technology_scaling_study(
    feature_sizes: Sequence[float] = (130e-9, 90e-9, 65e-9, 45e-9),
    segment_length: float = 1.5e-3,
) -> TechnologyScalingStudy:
    """Quantify the growth of the ``R x Cc`` delay spread with scaling.

    The wire cross-section shrinks with the node (raising resistance) while
    the coupling capacitance per unit length stays roughly constant, so the
    worst-vs-typical delay spread of a fixed-length global segment grows --
    the paper's argument for why the error-tolerant DVS bus scales well.
    """
    nodes = scaled_node_series(feature_sizes)
    spread = {
        name: delay_spread_metric(node, segment_length) for name, node in nodes.items()
    }
    first = next(iter(spread.values()))
    normalized = {name: value / first for name, value in spread.items()}
    return TechnologyScalingStudy(
        segment_length=segment_length,
        spread_by_node=spread,
        normalized_spread=normalized,
    )
