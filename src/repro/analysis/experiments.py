"""Registry of the paper's experiments (and this reproduction's extensions).

Every figure and table of the paper's evaluation has an entry here mapping an
experiment id (``fig4a``, ``table1``, ...) to a callable that runs it with
reasonable defaults and returns ``(result_object, formatted_text)``.  The
benchmark harness in ``benchmarks/``, the CLI and the examples all go through
this registry, so the experiment inventory in DESIGN.md has exactly one
source of truth in code.

Beyond the paper's own artefacts, the registry also exposes the extension
studies this reproduction adds (the related-work baseline comparison, the bus
encoding study, the pipeline/IPC ablation and the shield-interval sweep), so
``python -m repro run <id>`` covers everything DESIGN.md lists.

The registry is wired into :mod:`repro.runtime`: every experiment maps to a
``JobSpec`` of the ``experiment`` runtime task (see :meth:`Experiment.job`),
so experiment runs flow through the same content-addressed result cache and
worker pool as the declarative sweeps -- regenerating a figure twice
simulates it once.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, TYPE_CHECKING
from collections.abc import Callable

from repro.analysis import reporting

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime.cache import ResultCache
    from repro.runtime.spec import JobSpec
from repro.analysis.dynamic_dvs import run_fig8, run_table1
from repro.analysis.modified_bus import run_modified_bus_study, run_technology_scaling_study
from repro.analysis.oracle_dvs import run_oracle_residency
from repro.analysis.static_scaling import run_corner_gain_study, run_static_voltage_sweep
from repro.bus.bus_design import BusDesign
from repro.bus.bus_model import CharacterizedBus
from repro.circuit.pvt import TYPICAL_CORNER, WORST_CASE_CORNER
from repro.trace.generator import generate_suite, suite_sources

ExperimentRunner = Callable[..., tuple[Any, str]]


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment from the paper's evaluation."""

    identifier: str
    paper_artifact: str
    description: str
    runner: ExperimentRunner

    def run(self, **kwargs: Any) -> tuple[Any, str]:
        """Execute the experiment; returns (result object, formatted text)."""
        return self.runner(**kwargs)

    def job(self, **kwargs: Any) -> JobSpec:
        """The runtime :class:`~repro.runtime.spec.JobSpec` for this entry.

        The spec's content hash covers the experiment id and every keyword
        argument, so a run with different cycles/seed never aliases a cached
        one.
        """
        from repro.runtime.spec import JobSpec

        return JobSpec("experiment", {"identifier": self.identifier, **kwargs})


def accepted_kwargs(function: Callable[..., Any], candidates: dict[str, Any]) -> dict[str, Any]:
    """The subset of ``candidates`` that ``function`` names as parameters.

    Used to thread workload-scale knobs (``n_cycles``, ``chunk_cycles``,
    ``engine``, ``seed``) through heterogeneous experiment runners and sweep tasks:
    workload-free entries (e.g. the scaling study) simply never see them.
    ``None`` values are dropped so defaults stay in charge.

    >>> def runner(n_cycles=100, seed=0):
    ...     pass
    >>> accepted_kwargs(runner, {"n_cycles": 5, "chunk_cycles": 2, "seed": None})
    {'n_cycles': 5}
    """
    parameters = inspect.signature(function).parameters
    return {
        name: value
        for name, value in candidates.items()
        if value is not None and name in parameters
    }


def _suite(n_cycles: int, seed: int):
    return generate_suite(n_cycles=n_cycles, seed=seed)


def _run_fig4(corner, n_cycles: int = 60_000, seed: int = 2005) -> tuple[Any, str]:
    design = BusDesign.paper_bus()
    bus = CharacterizedBus(design, corner)
    sweep = run_static_voltage_sweep(bus, _suite(n_cycles, seed))
    return sweep, reporting.format_static_sweep(sweep)


def _run_fig4a(n_cycles: int = 60_000, seed: int = 2005) -> tuple[Any, str]:
    return _run_fig4(WORST_CASE_CORNER, n_cycles, seed)


def _run_fig4b(n_cycles: int = 60_000, seed: int = 2005) -> tuple[Any, str]:
    return _run_fig4(TYPICAL_CORNER, n_cycles, seed)


def _run_fig5(n_cycles: int = 60_000, seed: int = 2005) -> tuple[Any, str]:
    design = BusDesign.paper_bus()
    study = run_corner_gain_study(design, _suite(n_cycles, seed))
    return study, reporting.format_corner_gain_study(study)


def _run_fig6(n_cycles: int = 120_000, seed: int = 2005) -> tuple[Any, str]:
    design = BusDesign.paper_bus()
    study = run_oracle_residency(design, _suite(n_cycles, seed))
    return study, reporting.format_oracle_residency(study)


def _workload_mapping(workload: str, n_cycles: int | None, seed: int):
    """Resolve a ``--workload`` selector into named streaming sources.

    Generative workloads default to the same paper scale as the selector-less
    drivers, so adding ``--workload`` never silently changes the run length;
    the shared bus is redesigned for the sources' width (encoded workloads
    drive more wires than the paper bus).  Returns
    ``(workloads, effective_n_cycles, design)``.
    """
    from repro.encoding.analysis import design_for_width
    from repro.trace.generator import PAPER_CYCLES_PER_BENCHMARK
    from repro.trace.workloads import WorkloadError, resolve_workload_mapping

    requested = n_cycles if n_cycles is not None else PAPER_CYCLES_PER_BENCHMARK
    try:
        workloads = resolve_workload_mapping(workload, n_cycles=requested, seed=seed)
    except (KeyError, ValueError) as error:
        # Unknown specs raise KeyError; unreadable/corrupt trace files raise
        # ValueError.  Both are bad user input, not internal failures.
        raise WorkloadError(error.args[0] if error.args else str(error)) from error
    widths = {source.n_bits for source in workloads.values()}
    if len(widths) > 1:
        raise WorkloadError(
            f"workloads of mixed bus widths cannot share one bus: {sorted(widths)}"
        )
    design = design_for_width(BusDesign.paper_bus(), widths.pop())
    # The reported per-benchmark cycle count: file-backed and SimPoint-reduced
    # sources keep their own lengths, so when every row agrees on a length
    # (the common case) report that, and only fall back to the requested
    # scale for mixed-length mappings.
    lengths = {source.n_cycles for source in workloads.values()}
    effective = lengths.pop() if len(lengths) == 1 else requested
    return workloads, effective, design


def _run_table1(
    n_cycles: int | None = None,
    seed: int = 2005,
    chunk_cycles: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
    workload: str | None = None,
) -> tuple[Any, str]:
    # n_cycles=None runs the paper's 10 M cycles per benchmark through the
    # streaming pipeline (O(chunk) memory); pass --cycles to scale down.
    # workload restricts/replaces the suite with comma-separated registry
    # specs (e.g. "cpu:memcopy,crafty"), at the same default scale.  File-
    # backed specs are content-addressed by JobSpec.key, so cached runs never
    # survive a regenerated trace file.
    if workload is not None:
        workloads, effective, design = _workload_mapping(workload, n_cycles, seed)
        result = run_table1(
            design=design,
            workloads=workloads,
            order=tuple(workloads),
            n_cycles=effective,
            seed=seed,
            chunk_cycles=chunk_cycles,
            engine=engine,
            jobs=jobs,
        )
    else:
        result = run_table1(
            n_cycles=n_cycles, seed=seed, chunk_cycles=chunk_cycles, engine=engine, jobs=jobs
        )
    return result, reporting.format_table1(result)


def _run_table1_kernels(
    n_cycles: int = 60_000,
    seed: int = 2005,
    chunk_cycles: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
) -> tuple[Any, str]:
    # Cross-workload Table 1: the 10 synthetic benchmarks next to all 7
    # executed mini-CPU kernels, per-SimPoint-spirit scenario diversity.  The
    # default scale keeps the (interpreted) kernel executions interactive;
    # synthetic rows at this scale differ from the paper-scale table1 run.
    from repro.trace.benchmarks import TABLE1_ORDER
    from repro.trace.workloads import kernel_sources

    kernels = kernel_sources(n_cycles=n_cycles, seed=seed)
    workloads = {**suite_sources(n_cycles=n_cycles, seed=seed), **kernels}
    result = run_table1(
        workloads=workloads,
        order=tuple(TABLE1_ORDER) + tuple(sorted(kernels)),
        n_cycles=n_cycles,
        seed=seed,
        chunk_cycles=chunk_cycles,
        engine=engine,
        jobs=jobs,
    )
    return result, reporting.format_table1(result)


def _run_fig8(
    n_cycles: int | None = None,
    seed: int = 2005,
    chunk_cycles: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
    workload: str | None = None,
) -> tuple[Any, str]:
    if workload is not None:
        workloads, effective, design = _workload_mapping(workload, n_cycles, seed)
        result = run_fig8(
            design=design,
            workloads=workloads,
            benchmark_order=tuple(workloads),
            n_cycles=effective,
            seed=seed,
            chunk_cycles=chunk_cycles,
            engine=engine,
            jobs=jobs,
        )
    else:
        result = run_fig8(
            n_cycles=n_cycles, seed=seed, chunk_cycles=chunk_cycles, engine=engine, jobs=jobs
        )
    return result, reporting.format_fig8(result)


def _run_fig10(n_cycles: int = 60_000, seed: int = 2005) -> tuple[Any, str]:
    study = run_modified_bus_study(n_cycles=n_cycles, seed=seed)
    return study, reporting.format_modified_bus_study(study)


def _run_scaling(**_: Any) -> tuple[Any, str]:
    study = run_technology_scaling_study()
    return study, reporting.format_technology_scaling(study)


def _run_baselines(n_cycles: int = 20_000, seed: int = 2005) -> tuple[Any, str]:
    from repro.baselines import format_scheme_comparison, run_scheme_comparison

    design = BusDesign.paper_bus()
    suite = generate_suite(names=("crafty", "mgrid"), n_cycles=n_cycles, seed=seed)
    comparisons = [
        run_scheme_comparison(
            design,
            list(suite.values()),
            corner,
            window_cycles=max(500, n_cycles // 20),
            ramp_delay_cycles=max(150, n_cycles // 60),
            workload_name="crafty+mgrid",
        )
        for corner in (WORST_CASE_CORNER, TYPICAL_CORNER)
    ]
    text = "\n\n".join(format_scheme_comparison(comparison) for comparison in comparisons)
    return comparisons, text


def _run_encoding(n_cycles: int = 20_000, seed: int = 2005) -> tuple[Any, str]:
    from repro.encoding import format_encoding_study, run_encoding_study
    from repro.trace.generator import generate_benchmark_trace

    studies = [
        run_encoding_study(
            generate_benchmark_trace(name, n_cycles=n_cycles, seed=seed),
            corner=TYPICAL_CORNER,
            window_cycles=max(500, n_cycles // 20),
            ramp_delay_cycles=max(150, n_cycles // 60),
        )
        for name in ("mgrid", "crafty")
    ]
    text = "\n\n".join(format_encoding_study(study) for study in studies)
    return studies, text


def _run_ipc(n_cycles: int = 60_000, seed: int = 2005) -> tuple[Any, str]:
    from repro.arch import PIPELINE_MODELS, evaluate_ipc_impact
    from repro.core.dvs_system import DVSBusSystem
    from repro.trace.generator import generate_benchmark_trace

    bus = CharacterizedBus(BusDesign.paper_bus(), TYPICAL_CORNER)
    trace = generate_benchmark_trace("vortex", n_cycles=n_cycles, seed=seed)
    stats = bus.analyze(trace.values)
    system = DVSBusSystem(
        bus, window_cycles=max(500, n_cycles // 30), ramp_delay_cycles=max(150, n_cycles // 100)
    )
    result = system.run(stats, keep_cycle_voltage=True)
    mask = bus.error_mask(stats, result.per_cycle_voltage)
    impacts = {
        name: evaluate_ipc_impact(model, mask, seed=seed)
        for name, model in PIPELINE_MODELS.items()
    }
    rows = [
        (name, f"{impact.ipc_loss_fraction * 100:.2f}", f"{impact.hidden_fraction * 100:.1f}")
        for name, impact in impacts.items()
    ]
    text = (
        f"Corrected errors: {result.total_errors} in {result.n_cycles} cycles "
        f"({result.average_error_rate * 100:.2f}%)\n"
        + reporting.format_table(["Pipeline model", "IPC loss (%)", "Replays hidden (%)"], rows)
    )
    return impacts, text


def _run_shielding(**_: Any) -> tuple[Any, str]:
    from repro.interconnect.design_space import (
        format_shield_interval_study,
        run_shield_interval_study,
    )

    study = run_shield_interval_study()
    return study, format_shield_interval_study(study)


def _run_sensitivity(n_cycles: int = 150_000, seed: int = 2005) -> tuple[Any, str]:
    # The longest swept window needs ~15 windows of descent plus a steady-state
    # measurement region, so this entry defaults to a longer trace than the
    # figure experiments.
    from repro.analysis.sensitivity import (
        format_sensitivity_study,
        run_error_band_sensitivity,
        run_ramp_delay_sensitivity,
        run_window_length_sensitivity,
    )
    from repro.trace.generator import generate_benchmark_trace

    bus = CharacterizedBus(BusDesign.paper_bus(), TYPICAL_CORNER)
    trace = generate_benchmark_trace("vortex", n_cycles=n_cycles, seed=seed)
    stats = bus.analyze(trace.values)
    studies = [
        run_window_length_sensitivity(bus, stats, window_lengths=(500, 1_000, 2_000, 5_000)),
        run_ramp_delay_sensitivity(bus, stats),
        run_error_band_sensitivity(bus, stats),
    ]
    text = "\n\n".join(format_sensitivity_study(study) for study in studies)
    return studies, text


#: All experiments of the paper's evaluation, keyed by their DESIGN.md id.
EXPERIMENTS: dict[str, Experiment] = {
    "fig4a": Experiment(
        "fig4a",
        "Fig. 4(a)",
        "Energy and error rate vs statically scaled supply at the worst-case corner",
        _run_fig4a,
    ),
    "fig4b": Experiment(
        "fig4b",
        "Fig. 4(b)",
        "Energy and error rate vs statically scaled supply at the typical corner",
        _run_fig4b,
    ),
    "fig5": Experiment(
        "fig5",
        "Fig. 5",
        "Energy gains vs corner delay for 0/2/5 % target error rates",
        _run_fig5,
    ),
    "fig6": Experiment(
        "fig6",
        "Fig. 6",
        "Oracle supply-voltage residency for crafty/vortex/mgrid at 2 % and 5 % targets",
        _run_fig6,
    ),
    "table1": Experiment(
        "table1",
        "Table 1",
        "Fixed VS vs proposed closed-loop DVS, per benchmark, at two corners",
        _run_table1,
    ),
    "fig8": Experiment(
        "fig8",
        "Fig. 8",
        "Supply voltage and instantaneous error rate while the suite runs back-to-back",
        _run_fig8,
    ),
    "table1_kernels": Experiment(
        "table1_kernels",
        "Table 1 (ext.)",
        "Cross-workload Table 1: all 7 executed CPU kernels next to the 10 synthetic benchmarks",
        _run_table1_kernels,
    ),
    "fig10": Experiment(
        "fig10",
        "Fig. 10",
        "Energy gains of the modified (Cc/Cg x1.95) bus across corners",
        _run_fig10,
    ),
    "scaling": Experiment(
        "scaling",
        "Section 6",
        "Delay-spread growth with technology scaling",
        _run_scaling,
    ),
    # ------------------------------------------------------------------ #
    # Extension studies added by this reproduction (see DESIGN.md §6).
    # ------------------------------------------------------------------ #
    "baselines": Experiment(
        "baselines",
        "Section 1",
        "Fixed VS vs canary delay-line vs triple-latch monitor vs proposed DVS",
        _run_baselines,
    ),
    "encoding": Experiment(
        "encoding",
        "Section 1",
        "Low-power bus encodings alone and combined with the proposed DVS",
        _run_encoding,
    ),
    "ipc": Experiment(
        "ipc",
        "Section 3",
        "IPC impact of the DVS run's error stream under in-order and OoO pipelines",
        _run_ipc,
    ),
    "shielding": Experiment(
        "shielding",
        "Section 6",
        "Shield-interval sweep: routing tracks vs worst-case coupling vs delay spread",
        _run_shielding,
    ),
    "sensitivity": Experiment(
        "sensitivity",
        "Section 5",
        "Sensitivity of the closed loop to window length, ramp delay and error band",
        _run_sensitivity,
    ),
}


def run_experiment(
    identifier: str, cache: "ResultCache" | None = None, **kwargs: Any
) -> tuple[Any, str]:
    """Run one experiment by id; raises ``KeyError`` for unknown ids.

    Parameters
    ----------
    identifier:
        Registry id (``fig5``, ``table1``, ...).
    cache:
        Optional :class:`~repro.runtime.cache.ResultCache`.  When given, the
        run goes through the runtime engine: a prior run with identical
        parameters returns its report text without simulating anything, and
        the result object is the cached record dict instead of the rich
        in-memory study object.
    kwargs:
        Forwarded to the experiment runner (``n_cycles``, ``seed``, ...).
        A ``chardb`` keyword is handled here rather than by the runners: it
        activates the named characterization database around the run (see
        :mod:`repro.chardb`), and on the cached path it joins the job params
        so ``JobSpec.key`` content-addresses the database file.

    Examples
    --------
    The workload-free Section 6 scaling study runs in milliseconds:

    >>> study, text = run_experiment("scaling")
    >>> study.monotonically_increasing
    True
    >>> text.splitlines()[0]
    'Delay-spread (R x Cc) trend with technology scaling'
    >>> run_experiment("fig99")
    Traceback (most recent call last):
        ...
    KeyError: "unknown experiment 'fig99'; known: baselines, encoding, fig10, fig4a, fig4b, fig5, fig6, fig8, ipc, scaling, sensitivity, shielding, table1, table1_kernels"
    """
    if identifier not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {identifier!r}; known: {known}")
    chardb = kwargs.pop("chardb", None)
    if cache is None:
        if chardb is None:
            return EXPERIMENTS[identifier].run(**kwargs)
        from repro.chardb import use_chardb

        with use_chardb(chardb):
            return EXPERIMENTS[identifier].run(**kwargs)

    from repro.runtime.executor import run_jobs

    job_kwargs = dict(kwargs) if chardb is None else {**kwargs, "chardb": chardb}
    report = run_jobs([EXPERIMENTS[identifier].job(**job_kwargs)], cache=cache)
    outcome = report.outcomes[0]
    record = dict(outcome.result)
    record["cached"] = outcome.cached
    return record, record["text"]
