"""Sensitivity of the closed-loop DVS system to its design parameters.

The paper fixes the control parameters by argument rather than by sweep: a
10 000-cycle error window, a 1 %-2 % target band, 20 mV steps applied after a
3 000-cycle regulator ramp, and a shadow-latch clock delayed by 33 % of the
cycle (the most the short-path constraint allows).  DESIGN.md lists these as
the design choices worth ablating; this module provides the sweeps, each
returning the same small result structure so reports stay uniform:

* :func:`run_window_length_sensitivity` -- error-measurement window,
* :func:`run_ramp_delay_sensitivity` -- regulator ramp delay,
* :func:`run_error_band_sensitivity` -- the policy's lower/upper thresholds,
* :func:`run_shadow_delay_sensitivity` -- the shadow-latch clock delay, which
  sets the regulator's safety floor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable, Sequence

from repro.bus.bus_design import BusDesign
from repro.bus.bus_model import CharacterizedBus, TraceStatistics
from repro.circuit.pvt import TYPICAL_CORNER, PVTCorner
from repro.core.dvs_system import DVSBusSystem
from repro.core.policies import BangBangPolicy
from repro.trace.trace import BusTrace
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class SensitivityPoint:
    """Outcome of one parameter value in a sensitivity sweep.

    Attributes
    ----------
    label:
        Human-readable parameter value ("window=2000", "band=1-2%", ...).
    value:
        The numeric parameter value (for plotting; the band sweep stores the
        upper threshold).
    energy_gain_percent / average_error_rate / minimum_voltage:
        Steady-state metrics of the closed-loop run at this value.
    """

    label: str
    value: float
    energy_gain_percent: float
    average_error_rate: float
    minimum_voltage: float

    def as_dict(self) -> dict:
        """Stable JSON-able view of one swept point."""
        return {
            "label": self.label,
            "value": float(self.value),
            "energy_gain_percent": round(self.energy_gain_percent, 2),
            "average_error_rate_percent": round(self.average_error_rate * 100.0, 3),
            "minimum_voltage_mv": round(self.minimum_voltage * 1000.0, 1),
        }


@dataclass(frozen=True)
class SensitivityStudy:
    """One parameter sweep of the closed-loop DVS system."""

    parameter: str
    corner: PVTCorner
    workload_name: str
    points: tuple[SensitivityPoint, ...]

    def best_gain(self) -> SensitivityPoint:
        """The point with the highest energy gain."""
        return max(self.points, key=lambda point: point.energy_gain_percent)

    def as_dict(self) -> dict:
        """Stable JSON-able view of the whole sweep."""
        return {
            "parameter": self.parameter,
            "corner": self.corner.label,
            "workload": self.workload_name,
            "points": [point.as_dict() for point in self.points],
        }


def format_sensitivity_study(study: SensitivityStudy) -> str:
    """Text table of a sensitivity sweep (one row per parameter value)."""
    title = (
        f"Sensitivity to {study.parameter} -- workload {study.workload_name!r}, "
        f"corner {study.corner.label}"
    )
    header = f"{'value':<16} {'gain %':>7} {'err %':>6} {'min Vdd (mV)':>13}"
    lines = [title, header, "-" * len(header)]
    for point in study.points:
        lines.append(
            f"{point.label:<16} {point.energy_gain_percent:>7.1f} "
            f"{point.average_error_rate * 100:>6.2f} {point.minimum_voltage * 1000:>13.0f}"
        )
    return "\n".join(lines)


def _steady_state_metrics(
    system: DVSBusSystem, stats: TraceStatistics, warmup_fraction: float
) -> tuple[float, float, float]:
    warmup = int(warmup_fraction * stats.n_cycles)
    result = system.run(stats, warmup_cycles=warmup)
    return (
        result.energy_gain_percent,
        result.average_error_rate,
        result.minimum_voltage_reached,
    )


def _sweep(
    parameter: str,
    bus: CharacterizedBus,
    stats: TraceStatistics,
    workload_name: str,
    entries: Sequence[tuple[str, float, Callable[[], DVSBusSystem]]],
    warmup_fraction: float,
) -> SensitivityStudy:
    points = []
    for label, value, factory in entries:
        gain, error_rate, minimum = _steady_state_metrics(factory(), stats, warmup_fraction)
        points.append(
            SensitivityPoint(
                label=label,
                value=value,
                energy_gain_percent=gain,
                average_error_rate=error_rate,
                minimum_voltage=minimum,
            )
        )
    return SensitivityStudy(
        parameter=parameter, corner=bus.corner, workload_name=workload_name, points=tuple(points)
    )


def _prepare(
    workload: BusTrace | TraceStatistics, bus: CharacterizedBus
) -> tuple[TraceStatistics, str]:
    if isinstance(workload, BusTrace):
        return bus.analyze(workload.values), workload.name
    return workload, "workload"


def run_window_length_sensitivity(
    bus: CharacterizedBus,
    workload: BusTrace | TraceStatistics,
    window_lengths: Sequence[int] = (500, 1_000, 2_000, 5_000, 10_000),
    ramp_fraction: float = 0.3,
    warmup_fraction: float = 0.5,
) -> SensitivityStudy:
    """Sweep the error-measurement window (the paper uses 10 000 cycles).

    The regulator ramp is kept at a fixed fraction of the window so the
    controller's relative reaction speed is comparable across points.
    """
    stats, name = _prepare(workload, bus)
    entries = [
        (
            f"window={window}",
            float(window),
            lambda window=window: DVSBusSystem(
                bus,
                window_cycles=window,
                ramp_delay_cycles=max(1, int(ramp_fraction * window)),
            ),
        )
        for window in window_lengths
    ]
    return _sweep("error window (cycles)", bus, stats, name, entries, warmup_fraction)


def run_ramp_delay_sensitivity(
    bus: CharacterizedBus,
    workload: BusTrace | TraceStatistics,
    ramp_delays: Sequence[int] = (150, 300, 600, 1_200, 1_800),
    window_cycles: int = 2_000,
    warmup_fraction: float = 0.5,
) -> SensitivityStudy:
    """Sweep the regulator ramp delay (3 000 cycles for the paper's regulator)."""
    stats, name = _prepare(workload, bus)
    entries = [
        (
            f"ramp={ramp}",
            float(ramp),
            lambda ramp=ramp: DVSBusSystem(
                bus, window_cycles=window_cycles, ramp_delay_cycles=ramp
            ),
        )
        for ramp in ramp_delays
        if ramp <= window_cycles
    ]
    return _sweep("regulator ramp delay (cycles)", bus, stats, name, entries, warmup_fraction)


def run_error_band_sensitivity(
    bus: CharacterizedBus,
    workload: BusTrace | TraceStatistics,
    bands: Sequence[tuple[float, float]] = ((0.0, 0.005), (0.005, 0.01), (0.01, 0.02), (0.02, 0.05)),
    window_cycles: int = 2_000,
    ramp_delay_cycles: int = 600,
    warmup_fraction: float = 0.5,
) -> SensitivityStudy:
    """Sweep the bang-bang policy's error band (the paper steers for 1 %-2 %)."""
    stats, name = _prepare(workload, bus)
    for low, high in bands:
        check_fraction("band lower edge", low)
        check_fraction("band upper edge", high)
    entries = [
        (
            f"band={low * 100:g}-{high * 100:g}%",
            high,
            lambda low=low, high=high: DVSBusSystem(
                bus,
                policy=BangBangPolicy(low_threshold=low, high_threshold=high),
                window_cycles=window_cycles,
                ramp_delay_cycles=ramp_delay_cycles,
            ),
        )
        for low, high in bands
    ]
    return _sweep("target error band", bus, stats, name, entries, warmup_fraction)


def run_shadow_delay_sensitivity(
    design: BusDesign,
    workload: BusTrace,
    corner: PVTCorner = TYPICAL_CORNER,
    shadow_fractions: Sequence[float] = (0.10, 0.20, 0.33, 0.45),
    window_cycles: int = 2_000,
    ramp_delay_cycles: int = 600,
    warmup_fraction: float = 0.5,
) -> SensitivityStudy:
    """Sweep the shadow-latch clock delay (33 % of the cycle in the paper).

    A larger delay moves the shadow deadline later, which lowers the
    regulator's safety floor and therefore raises the attainable gain -- up
    to the point where the short-path (hold) constraint of Section 2 would be
    violated, which is why the paper stops at 33 %.
    """
    points = []
    workload_name = workload.name
    for fraction in shadow_fractions:
        check_fraction("shadow delay fraction", fraction)
        clocking = replace(design.clocking, shadow_delay_fraction=fraction)
        bus = CharacterizedBus(design.with_clocking(clocking), corner)
        stats = bus.analyze(workload.values)
        system = DVSBusSystem(
            bus, window_cycles=window_cycles, ramp_delay_cycles=ramp_delay_cycles
        )
        gain, error_rate, minimum = _steady_state_metrics(system, stats, warmup_fraction)
        points.append(
            SensitivityPoint(
                label=f"shadow delay={fraction * 100:.0f}%",
                value=fraction,
                energy_gain_percent=gain,
                average_error_rate=error_rate,
                minimum_voltage=minimum,
            )
        )
    return SensitivityStudy(
        parameter="shadow-latch clock delay",
        corner=corner,
        workload_name=workload_name,
        points=tuple(points),
    )
