"""Experiment drivers reproducing every figure and table of the paper."""

from repro.analysis.static_scaling import (
    CornerGainPoint,
    CornerGainStudy,
    StaticScalingPoint,
    StaticScalingSweep,
    combine_statistics,
    run_corner_gain_study,
    run_static_voltage_sweep,
)
from repro.analysis.oracle_dvs import (
    FIG6_BENCHMARKS,
    FIG6_TARGETS,
    OracleResidencyStudy,
    ResidencyEntry,
    run_oracle_residency,
)
from repro.analysis.dynamic_dvs import (
    Fig8Result,
    Table1CornerResult,
    Table1Result,
    Table1Row,
    run_fig8,
    run_table1,
)
from repro.analysis.modified_bus import (
    PAPER_COUPLING_RATIO_MULTIPLIER,
    ModifiedBusStudy,
    TechnologyScalingStudy,
    run_modified_bus_study,
    run_technology_scaling_study,
)
from repro.analysis.sensitivity import (
    SensitivityPoint,
    SensitivityStudy,
    format_sensitivity_study,
    run_error_band_sensitivity,
    run_ramp_delay_sensitivity,
    run_shadow_delay_sensitivity,
    run_window_length_sensitivity,
)
from repro.analysis.experiments import EXPERIMENTS, Experiment, run_experiment
from repro.analysis import reporting

__all__ = [
    "CornerGainPoint",
    "CornerGainStudy",
    "StaticScalingPoint",
    "StaticScalingSweep",
    "combine_statistics",
    "run_corner_gain_study",
    "run_static_voltage_sweep",
    "FIG6_BENCHMARKS",
    "FIG6_TARGETS",
    "OracleResidencyStudy",
    "ResidencyEntry",
    "run_oracle_residency",
    "Fig8Result",
    "Table1CornerResult",
    "Table1Result",
    "Table1Row",
    "run_fig8",
    "run_table1",
    "PAPER_COUPLING_RATIO_MULTIPLIER",
    "ModifiedBusStudy",
    "TechnologyScalingStudy",
    "run_modified_bus_study",
    "run_technology_scaling_study",
    "SensitivityPoint",
    "SensitivityStudy",
    "format_sensitivity_study",
    "run_error_band_sensitivity",
    "run_ramp_delay_sensitivity",
    "run_shadow_delay_sensitivity",
    "run_window_length_sensitivity",
    "EXPERIMENTS",
    "Experiment",
    "run_experiment",
    "reporting",
]
