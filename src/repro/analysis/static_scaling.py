"""Static voltage-scaling experiments (paper Fig. 4 and Fig. 5).

Two studies live here:

* :func:`run_static_voltage_sweep` reproduces Fig. 4: for one PVT corner,
  sweep the supply from nominal down to the shadow-latch limit and report the
  combined error rate and normalised energy (bus energy, and bus energy plus
  recovery overhead) of the whole benchmark suite at each grid voltage.
* :func:`run_corner_gain_study` reproduces Fig. 5 (and, applied to the
  modified bus, Fig. 10): for each PVT corner and each target error rate,
  find the lowest static supply that does not exceed the target and report
  the energy gain, plotted against the corner's nominal-voltage delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from repro.bus.bus_design import BusDesign
from repro.bus.bus_model import (
    CharacterizedBus,
    TraceStatistics,
    TraceStatisticsAccumulator,
    TraceSummary,
)
from repro.circuit.pvt import STANDARD_CORNERS, PVTCorner
from repro.energy.gains import breakdown_gain_percent, normalized_energy
from repro.trace.stream import TraceSource
from repro.trace.trace import BusTrace
from repro.utils.validation import check_fraction

#: Workload forms the static studies accept: per-benchmark traces/sources,
#: or already-reduced statistics.
WorkloadsLike = Mapping[str, BusTrace | TraceSource] | TraceStatistics | TraceSummary


@dataclass(frozen=True)
class StaticScalingPoint:
    """One point of the Fig. 4 sweep: a grid voltage and its metrics."""

    vdd: float
    error_rate: float
    normalized_bus_energy: float
    normalized_total_energy: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (for tabular reporting and serialisation)."""
        return {
            "vdd_mV": round(self.vdd * 1000.0, 1),
            "error_rate_percent": self.error_rate * 100.0,
            "normalized_bus_energy": self.normalized_bus_energy,
            "normalized_total_energy": self.normalized_total_energy,
        }


@dataclass(frozen=True)
class StaticScalingSweep:
    """Result of a Fig. 4 style sweep at one corner."""

    corner: PVTCorner
    points: tuple[StaticScalingPoint, ...]

    @property
    def voltages(self) -> np.ndarray:
        """Swept grid voltages, descending from nominal."""
        return np.array([p.vdd for p in self.points])

    @property
    def error_rates(self) -> np.ndarray:
        """Combined error rate at each swept voltage."""
        return np.array([p.error_rate for p in self.points])

    @property
    def normalized_energies(self) -> np.ndarray:
        """Normalised bus+recovery energy at each swept voltage."""
        return np.array([p.normalized_total_energy for p in self.points])

    def lowest_voltage_for_error_rate(self, target: float) -> float:
        """Lowest swept voltage whose error rate does not exceed ``target``."""
        check_fraction("target", target)
        eligible = [p.vdd for p in self.points if p.error_rate <= target]
        if not eligible:
            raise ValueError(f"no swept voltage meets an error-rate target of {target}")
        return min(eligible)

    def as_dict(self) -> dict[str, object]:
        """Stable JSON-able view: the swept points plus derived Fig. 4 metrics."""
        return {
            "corner": self.corner.label,
            "lowest_error_free_mv": round(
                self.lowest_voltage_for_error_rate(0.0) * 1000.0, 1
            ),
            "points": [point.as_dict() for point in self.points],
        }


def combine_statistics(
    bus: CharacterizedBus, workloads: Mapping[str, BusTrace]
) -> TraceStatistics:
    """Concatenate the per-benchmark statistics of a suite (paper Fig. 4 setup)."""
    combined: TraceStatistics | None = None
    for trace in workloads.values():
        stats = bus.analyze(trace.values)
        combined = stats if combined is None else combined.concatenate(stats)
    if combined is None:
        raise ValueError("workloads must contain at least one trace")
    return combined


def combine_summaries(
    bus: CharacterizedBus,
    workloads: Mapping[str, BusTrace | TraceSource],
    chunk_cycles: int | None = None,
    engine: str | None = None,
) -> TraceSummary:
    """Reduce a suite of traces/sources to one :class:`TraceSummary`.

    The streaming twin of :func:`combine_statistics`: it reduces exactly the
    same per-cycle populations (concatenating statistics never creates
    between-benchmark transitions), so every static-scaling quantity -- error
    rates and energies at constant grid voltages -- matches while paper-scale
    suites sweep in O(chunk) memory.
    """
    if not workloads:
        raise ValueError("workloads must contain at least one trace")
    accumulator = TraceStatisticsAccumulator()
    for workload in workloads.values():
        for stats, _ in bus.iter_statistics(workload, chunk_cycles, engine=engine):
            accumulator.accumulate(stats)
    return accumulator.summary()


def resolve_workload_statistics(
    bus: CharacterizedBus,
    workloads: WorkloadsLike,
    chunk_cycles: int | None = None,
    engine: str | None = None,
) -> TraceStatistics | TraceSummary:
    """Normalise a static-study workload argument to evaluable statistics.

    Pre-computed statistics/summaries pass through; mappings of traces keep
    the classic concatenated per-cycle path, while mappings containing any
    :class:`~repro.trace.stream.TraceSource` are streamed into a summary.
    """
    if isinstance(workloads, (TraceStatistics, TraceSummary)):
        return workloads
    if any(isinstance(workload, TraceSource) for workload in workloads.values()):
        return combine_summaries(bus, workloads, chunk_cycles=chunk_cycles, engine=engine)
    return combine_statistics(bus, workloads)


def run_static_voltage_sweep(
    bus: CharacterizedBus,
    workloads: WorkloadsLike,
    v_stop: float | None = None,
    chunk_cycles: int | None = None,
    engine: str | None = None,
) -> StaticScalingSweep:
    """Sweep the static supply at one corner and measure error rate and energy.

    Parameters
    ----------
    bus:
        Characterised bus at the corner of interest.
    workloads:
        Either a mapping of benchmark traces / trace sources (combined, as in
        the paper) or pre-combined :class:`TraceStatistics` /
        :class:`TraceSummary`.  Sources are reduced in O(chunk) memory, which
        is how the sweep runs at paper-scale trace lengths.
    v_stop:
        Lowest voltage to sweep; defaults to the lowest grid voltage at which
        the worst-case pattern still meets the *shadow-latch* deadline at this
        corner (the paper's sweep stop condition).
    chunk_cycles:
        Streaming granularity when sources are reduced.
    engine:
        Kernel engine for streamed statistics (:mod:`repro.bus.engine`).
    """
    stats = resolve_workload_statistics(bus, workloads, chunk_cycles, engine=engine)
    if v_stop is None:
        v_stop = bus.table.min_voltage_meeting(
            bus.design.clocking.shadow_deadline, bus.design.topology.max_coupling_factor
        )
    reference = bus.nominal_energy(stats)

    points: list[StaticScalingPoint] = []
    for vdd in reversed(bus.grid.voltages.tolist()):
        if vdd < v_stop - 1e-12:
            break
        error_rate = bus.error_rate(stats, vdd)
        n_errors = int(round(error_rate * stats.n_cycles))
        energy = bus.energy_breakdown(stats, vdd, n_errors=n_errors)
        bus_only = bus.energy_breakdown(stats, vdd, n_errors=0)
        points.append(
            StaticScalingPoint(
                vdd=float(vdd),
                error_rate=error_rate,
                normalized_bus_energy=normalized_energy(reference, bus_only),
                normalized_total_energy=normalized_energy(reference, energy),
            )
        )
    return StaticScalingSweep(corner=bus.corner, points=tuple(points))


def gain_metric_key(target_percent: float) -> str:
    """Serialisation key of one error-rate target's gain column.

    The single definition both :meth:`CornerGainPoint.as_dict` (writing) and
    the report renderer (reading, via the serialised ``targets_percent``)
    use, so keys stay distinct and consistent for any target -- including
    sub-1 % targets and percentages that are not exactly representable.

    >>> gain_metric_key(2.0), gain_metric_key(0.5), gain_metric_key(29.0)
    ('gain_percent_at_2pct_errors', 'gain_percent_at_0.5pct_errors', 'gain_percent_at_29pct_errors')
    """
    return f"gain_percent_at_{target_percent:g}pct_errors"


def _target_percent(target: float) -> float:
    """A target error-rate fraction as its serialised percentage."""
    return round(target * 100.0, 2)


@dataclass(frozen=True)
class CornerGainPoint:
    """One corner's entry in Fig. 5 / Fig. 10."""

    corner_index: int
    corner: PVTCorner
    nominal_delay: float
    gains_percent: dict[float, float]
    voltages: dict[float, float]

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for reporting."""
        return {
            "corner": self.corner.label,
            "delay_ps_at_nominal": round(self.nominal_delay * 1e12, 1),
            **{
                gain_metric_key(_target_percent(target)): round(gain, 2)
                for target, gain in self.gains_percent.items()
            },
        }


@dataclass(frozen=True)
class CornerGainStudy:
    """Fig. 5 / Fig. 10: energy gains vs corner delay for several error targets."""

    design_label: str
    targets: tuple[float, ...]
    points: tuple[CornerGainPoint, ...]

    def gains_for_target(self, target: float) -> list[float]:
        """Energy gains (percent) of every corner for one error-rate target."""
        return [point.gains_percent[target] for point in self.points]

    def delays_ps(self) -> list[float]:
        """Nominal-voltage worst-case delays (ps) of every corner (the X axis)."""
        return [point.nominal_delay * 1e12 for point in self.points]

    def as_dict(self) -> dict[str, object]:
        """Stable JSON-able view: targets plus one entry per corner."""
        return {
            "design_label": self.design_label,
            "targets_percent": [_target_percent(target) for target in self.targets],
            "points": [point.as_dict() for point in self.points],
        }


def run_corner_gain_study(
    design: BusDesign,
    workloads: Mapping[str, BusTrace | TraceSource],
    targets: Sequence[float] = (0.0, 0.02, 0.05),
    corners: Mapping[int, PVTCorner] | None = None,
    design_label: str = "original bus",
    chunk_cycles: int | None = None,
) -> CornerGainStudy:
    """Reproduce Fig. 5 (or Fig. 10 when given the modified bus design).

    For every corner the bus is characterised, the benchmark suite's combined
    statistics are evaluated over the voltage grid, and for each target error
    rate the lowest admissible static voltage (subject to the shadow-latch
    limit) determines the reported energy gain.  Trace sources are reduced
    per corner in O(chunk) memory.
    """
    for target in targets:
        check_fraction("target", target)
    if corners is None:
        corners = STANDARD_CORNERS

    points: list[CornerGainPoint] = []
    for index in sorted(corners):
        corner = corners[index]
        bus = CharacterizedBus(design, corner)
        stats = resolve_workload_statistics(bus, workloads, chunk_cycles)
        sweep = run_static_voltage_sweep(bus, stats)
        reference = bus.nominal_energy(stats)
        nominal_delay = bus.table.worst_delay(
            design.nominal_vdd, design.topology.max_coupling_factor
        )

        gains: dict[float, float] = {}
        voltages: dict[float, float] = {}
        for target in targets:
            voltage = sweep.lowest_voltage_for_error_rate(target)
            error_rate = bus.error_rate(stats, voltage)
            n_errors = int(round(error_rate * stats.n_cycles))
            energy = bus.energy_breakdown(stats, voltage, n_errors=n_errors)
            gains[target] = breakdown_gain_percent(reference, energy)
            voltages[target] = voltage
        points.append(
            CornerGainPoint(
                corner_index=index,
                corner=corner,
                nominal_delay=nominal_delay,
                gains_percent=gains,
                voltages=voltages,
            )
        )
    return CornerGainStudy(
        design_label=design_label, targets=tuple(targets), points=tuple(points)
    )
