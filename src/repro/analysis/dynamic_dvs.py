"""Closed-loop DVS experiments (paper Table 1 and Fig. 8).

* :func:`run_table1` runs every benchmark through both the fixed
  voltage-scaling baseline and the proposed closed-loop DVS system at the two
  corners of Table 1 and reports per-benchmark energy gains and average error
  rates, plus the suite-wide totals.
* :func:`run_fig8` runs the ten benchmarks back to back (starting at the
  nominal supply) and returns the supply-voltage and instantaneous error-rate
  time series of Fig. 8, together with the benchmark region boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bus.bus_design import BusDesign
from repro.bus.bus_model import CharacterizedBus
from repro.circuit.pvt import TYPICAL_CORNER, WORST_CASE_CORNER, PVTCorner
from repro.core.dvs_system import DVSBusSystem, DVSRunResult
from repro.core.fixed_vs import FixedScalingResult, evaluate_fixed_scaling
from repro.core.policies import ControlPolicy
from repro.energy.gains import energy_gain_percent
from repro.trace.benchmarks import TABLE1_ORDER
from repro.trace.generator import DEFAULT_CYCLES_PER_BENCHMARK, generate_suite
from repro.trace.trace import BusTrace, concatenate_traces

#: Default fraction of each benchmark run treated as controller warm-up.  The
#: paper's runs are 10 M cycles, where the descent from the nominal supply is
#: negligible; shorter runs exclude the descent so the reported gain reflects
#: steady-state operation.
DEFAULT_WARMUP_FRACTION = 0.5


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's entry for one corner of Table 1."""

    benchmark: str
    fixed_vs_gain_percent: float
    dvs_gain_percent: float
    dvs_average_error_rate: float
    fixed_vs_voltage: float
    dvs_minimum_voltage: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view mirroring the paper's column layout."""
        return {
            "benchmark": self.benchmark,
            "fixed_vs_gain_percent": round(self.fixed_vs_gain_percent, 1),
            "dvs_gain_percent": round(self.dvs_gain_percent, 1),
            "dvs_average_error_rate_percent": round(self.dvs_average_error_rate * 100.0, 2),
        }


@dataclass(frozen=True)
class Table1CornerResult:
    """All rows plus the totals line for one corner of Table 1."""

    corner: PVTCorner
    rows: Tuple[Table1Row, ...]
    total_fixed_vs_gain_percent: float
    total_dvs_gain_percent: float
    total_dvs_error_rate: float

    def row(self, benchmark: str) -> Table1Row:
        """Look up one benchmark's row."""
        for candidate in self.rows:
            if candidate.benchmark == benchmark:
                return candidate
        raise KeyError(f"no row for benchmark {benchmark!r}")


@dataclass(frozen=True)
class Table1Result:
    """The full Table 1 reproduction: one result per corner."""

    corners: Tuple[Table1CornerResult, ...]
    n_cycles_per_benchmark: int

    def corner_result(self, corner: PVTCorner) -> Table1CornerResult:
        """Look up the result of one corner."""
        for candidate in self.corners:
            if candidate.corner == corner:
                return candidate
        raise KeyError(f"no result for corner {corner.label}")


def run_table1(
    design: Optional[BusDesign] = None,
    workloads: Optional[Mapping[str, BusTrace]] = None,
    corners: Sequence[PVTCorner] = (WORST_CASE_CORNER, TYPICAL_CORNER),
    n_cycles: int = DEFAULT_CYCLES_PER_BENCHMARK,
    seed: int = 2005,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    policy: Optional[ControlPolicy] = None,
    window_cycles: int = 10_000,
    ramp_delay_cycles: int = 3000,
) -> Table1Result:
    """Reproduce Table 1: fixed VS vs the proposed DVS, per benchmark and corner.

    Parameters
    ----------
    design:
        Bus design; defaults to the paper's bus.
    workloads:
        Benchmark traces; generated from the built-in profiles when omitted.
    corners:
        Corners to evaluate (the paper's Table 1 uses the worst-case and the
        typical corner).
    n_cycles:
        Cycles per benchmark when traces are generated here.
    seed:
        Trace-generation seed.
    warmup_fraction:
        Fraction of each run excluded from the energy/error accounting while
        the controller descends from the nominal supply.
    policy:
        Optional control-policy override (used by the ablation benchmarks).
    window_cycles / ramp_delay_cycles:
        Control-loop timing; the paper's values (10 000 and 3 000 cycles) by
        default.  Short test runs scale both down proportionally so the loop
        still reaches steady state.
    """
    if design is None:
        design = BusDesign.paper_bus()
    if workloads is None:
        workloads = generate_suite(n_cycles=n_cycles, seed=seed)

    corner_results: List[Table1CornerResult] = []
    for corner in corners:
        bus = CharacterizedBus(design, corner)
        system = DVSBusSystem(
            bus,
            policy=policy,
            window_cycles=window_cycles,
            ramp_delay_cycles=ramp_delay_cycles,
        )
        rows: List[Table1Row] = []
        fixed_energy_total = 0.0
        fixed_reference_total = 0.0
        dvs_energy_total = 0.0
        dvs_reference_total = 0.0
        error_cycles_total = 0
        cycles_total = 0
        for name in TABLE1_ORDER:
            if name not in workloads:
                continue
            stats = bus.analyze(workloads[name].values)
            warmup = int(warmup_fraction * stats.n_cycles)
            fixed: FixedScalingResult = evaluate_fixed_scaling(bus, stats)
            dvs: DVSRunResult = system.run(stats, warmup_cycles=warmup)
            rows.append(
                Table1Row(
                    benchmark=name,
                    fixed_vs_gain_percent=fixed.energy_gain_percent,
                    dvs_gain_percent=dvs.energy_gain_percent,
                    dvs_average_error_rate=dvs.average_error_rate,
                    fixed_vs_voltage=fixed.voltage,
                    dvs_minimum_voltage=dvs.minimum_voltage_reached,
                )
            )
            fixed_energy_total += fixed.energy.total_with_recovery
            fixed_reference_total += fixed.reference_energy.total_with_recovery
            dvs_energy_total += dvs.energy.total_with_recovery
            dvs_reference_total += dvs.reference_energy.total_with_recovery
            error_cycles_total += dvs.total_errors
            cycles_total += dvs.n_cycles
        corner_results.append(
            Table1CornerResult(
                corner=corner,
                rows=tuple(rows),
                total_fixed_vs_gain_percent=energy_gain_percent(
                    fixed_reference_total, fixed_energy_total
                ),
                total_dvs_gain_percent=energy_gain_percent(
                    dvs_reference_total, dvs_energy_total
                ),
                total_dvs_error_rate=(error_cycles_total / cycles_total) if cycles_total else 0.0,
            )
        )
    return Table1Result(corners=tuple(corner_results), n_cycles_per_benchmark=n_cycles)


@dataclass(frozen=True)
class Fig8Result:
    """Supply-voltage and instantaneous error-rate time series of Fig. 8."""

    corner: PVTCorner
    benchmark_order: Tuple[str, ...]
    benchmark_boundaries: Tuple[int, ...]
    voltage_event_cycles: np.ndarray
    voltage_event_values: np.ndarray
    window_start_cycles: np.ndarray
    window_error_rates: np.ndarray
    run: DVSRunResult

    @property
    def n_cycles(self) -> int:
        """Total simulated cycles across the concatenated suite."""
        return self.run.n_cycles

    def max_instantaneous_error_rate(self) -> float:
        """Largest per-window error rate observed (the paper reports ~6 %)."""
        if len(self.window_error_rates) == 0:
            return 0.0
        return float(np.max(self.window_error_rates))

    def voltage_range(self) -> Tuple[float, float]:
        """(min, max) supply voltage reached during the run."""
        return float(np.min(self.voltage_event_values)), float(
            np.max(self.voltage_event_values)
        )


def run_fig8(
    design: Optional[BusDesign] = None,
    workloads: Optional[Mapping[str, BusTrace]] = None,
    corner: PVTCorner = TYPICAL_CORNER,
    n_cycles: int = DEFAULT_CYCLES_PER_BENCHMARK,
    seed: int = 2005,
    benchmark_order: Sequence[str] = TABLE1_ORDER,
    policy: Optional[ControlPolicy] = None,
    window_cycles: int = 10_000,
    ramp_delay_cycles: int = 3000,
) -> Fig8Result:
    """Reproduce Fig. 8: the suite run back-to-back under closed-loop DVS.

    The supply starts at the nominal 1.2 V and the controller adapts to each
    program's switching activity; the returned time series shows the supply
    trajectory and the 10 000-cycle instantaneous error rates, with the
    benchmark region boundaries for annotation.
    """
    if design is None:
        design = BusDesign.paper_bus()
    if workloads is None:
        workloads = generate_suite(names=benchmark_order, n_cycles=n_cycles, seed=seed)

    ordered = [workloads[name] for name in benchmark_order]
    boundaries: List[int] = []
    offset = 0
    for trace in ordered:
        offset += trace.n_cycles
        boundaries.append(offset)
    suite_trace = concatenate_traces(ordered, name="fig8-suite")

    bus = CharacterizedBus(design, corner)
    system = DVSBusSystem(
        bus, policy=policy, window_cycles=window_cycles, ramp_delay_cycles=ramp_delay_cycles
    )
    run = system.run(suite_trace, initial_voltage=design.nominal_vdd)

    events = run.voltage_events
    return Fig8Result(
        corner=corner,
        benchmark_order=tuple(benchmark_order),
        benchmark_boundaries=tuple(boundaries),
        voltage_event_cycles=np.array([event.cycle for event in events]),
        voltage_event_values=np.array([event.voltage for event in events]),
        window_start_cycles=run.window_start_cycles,
        window_error_rates=run.window_error_rates,
        run=run,
    )
