"""Closed-loop DVS experiments (paper Table 1 and Fig. 8).

* :func:`run_table1` runs every benchmark through both the fixed
  voltage-scaling baseline and the proposed closed-loop DVS system at the two
  corners of Table 1 and reports per-benchmark energy gains and average error
  rates, plus the suite-wide totals.
* :func:`run_fig8` runs the ten benchmarks back to back (starting at the
  nominal supply) and returns the supply-voltage and instantaneous error-rate
  time series of Fig. 8, together with the benchmark region boundaries.

Both drivers are *streamed*: workloads are walked chunk by chunk through the
trace pipeline (:mod:`repro.trace.stream`), with each chunk's statistics fed
simultaneously to the closed loop and to the fixed-VS reduction, so peak
memory stays O(chunk) regardless of trace length.  That is what makes the
paper's 10 M cycles per benchmark -- now the default -- practical: a full
Table 1 at paper scale needs tens of MB, not tens of GB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING
from collections.abc import Mapping, Sequence

import numpy as np

from repro.bus.bus_design import BusDesign
from repro.bus.bus_model import CharacterizedBus, TraceStatisticsAccumulator
from repro.bus.engine import ENGINE_PARALLEL, resolve_engine
from repro.circuit.pvt import TYPICAL_CORNER, WORST_CASE_CORNER, PVTCorner
from repro.core.dvs_system import DVSBusSystem, DVSRunResult
from repro.core.fixed_vs import FixedScalingResult, evaluate_fixed_scaling
from repro.core.policies import ControlPolicy
from repro.energy.gains import energy_gain_percent
from repro.trace.benchmarks import TABLE1_ORDER
from repro.trace.generator import PAPER_CYCLES_PER_BENCHMARK, suite_sources
from repro.trace.stream import ConcatenatedTraceSource, TraceSource, as_trace_source
from repro.trace.trace import BusTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.runtime.parallel import ParallelChunkScheduler

#: Default fraction of each benchmark run treated as controller warm-up.  The
#: paper's runs are 10 M cycles, where the descent from the nominal supply is
#: negligible; shorter runs exclude the descent so the reported gain reflects
#: steady-state operation.
DEFAULT_WARMUP_FRACTION = 0.5

WorkloadMapping = Mapping[str, BusTrace | TraceSource]


def _auto_progress(total_cycles: int, label: str):
    """A :class:`~repro.runtime.progress.ChunkProgress` for long interactive
    runs, else ``None`` (short runs, non-TTY stderr)."""
    # Imported lazily: repro.runtime's package init reaches back into the
    # analysis registry, so a module-level import would be circular.
    from repro.runtime.progress import auto_chunk_progress

    return auto_chunk_progress(total_cycles, label)


@dataclass(frozen=True)
class Table1Row:
    """One benchmark's entry for one corner of Table 1."""

    benchmark: str
    fixed_vs_gain_percent: float
    dvs_gain_percent: float
    dvs_average_error_rate: float
    fixed_vs_voltage: float
    dvs_minimum_voltage: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view mirroring the paper's column layout."""
        return {
            "benchmark": self.benchmark,
            "fixed_vs_gain_percent": round(self.fixed_vs_gain_percent, 1),
            "dvs_gain_percent": round(self.dvs_gain_percent, 1),
            "dvs_average_error_rate_percent": round(self.dvs_average_error_rate * 100.0, 2),
        }


@dataclass(frozen=True)
class Table1CornerResult:
    """All rows plus the totals line for one corner of Table 1."""

    corner: PVTCorner
    rows: tuple[Table1Row, ...]
    total_fixed_vs_gain_percent: float
    total_dvs_gain_percent: float
    total_dvs_error_rate: float

    def row(self, benchmark: str) -> Table1Row:
        """Look up one benchmark's row."""
        for candidate in self.rows:
            if candidate.benchmark == benchmark:
                return candidate
        raise KeyError(f"no row for benchmark {benchmark!r}")

    def as_dict(self) -> dict[str, object]:
        """Stable JSON-able view: rows plus the totals line of one corner."""
        return {
            "corner": self.corner.label,
            "rows": [row.as_dict() for row in self.rows],
            "totals": {
                "fixed_vs_gain_percent": round(self.total_fixed_vs_gain_percent, 2),
                "dvs_gain_percent": round(self.total_dvs_gain_percent, 2),
                "dvs_average_error_rate_percent": round(self.total_dvs_error_rate * 100.0, 3),
            },
        }


@dataclass(frozen=True)
class Table1Result:
    """The full Table 1 reproduction: one result per corner."""

    corners: tuple[Table1CornerResult, ...]
    n_cycles_per_benchmark: int

    def corner_result(self, corner: PVTCorner) -> Table1CornerResult:
        """Look up the result of one corner."""
        for candidate in self.corners:
            if candidate.corner == corner:
                return candidate
        raise KeyError(f"no result for corner {corner.label}")

    def as_dict(self) -> dict[str, object]:
        """Stable JSON-able view of the whole table (one entry per corner).

        This is the serialisation contract ``repro.report`` renders and the
        runtime cache persists: plain types only, percentages rounded to a
        fixed precision so re-rendering a cached record is byte-stable.
        """
        return {
            "n_cycles_per_benchmark": int(self.n_cycles_per_benchmark),
            "corners": [corner.as_dict() for corner in self.corners],
        }


def _run_benchmark_streamed(
    bus: CharacterizedBus,
    system: DVSBusSystem,
    workload: BusTrace | TraceSource,
    warmup_fraction: float,
    chunk_cycles: int | None,
    progress,
    engine: str | None = None,
    jobs: int | None = None,
    scheduler: "ParallelChunkScheduler" | None = None,
) -> tuple[FixedScalingResult, DVSRunResult]:
    """One pass over a workload feeding both Table 1 columns.

    The same chunk statistics drive the closed loop and accumulate the
    summary the fixed-VS baseline (and both nominal references) are computed
    from, so a 10 M-cycle benchmark is generated and analysed exactly once.
    Under the parallel engine the shared pass is the fan-out statistics pass:
    its per-segment summaries both replay the closed loop and merge into the
    fixed-VS reduction -- still one analysis of the trace, bit-identical to
    the serial pass.
    """
    source = as_trace_source(workload)
    total = source.n_cycles
    warmup = int(warmup_fraction * total)
    state = system.stream(total, warmup_cycles=warmup)
    accumulator = TraceStatisticsAccumulator()
    parallel = (
        scheduler is not None
        or (jobs is not None and jobs > 1)
        or resolve_engine(engine) == ENGINE_PARALLEL
    )
    if parallel:
        from repro.runtime.parallel import ParallelChunkScheduler

        own = scheduler is None
        sched = (
            scheduler
            if scheduler is not None
            else ParallelChunkScheduler(n_workers=jobs if jobs is not None else 1)
        )
        try:
            summaries = sched.segment_summaries(
                source,
                system.control_segmenter(total, warmup_cycles=warmup),
                bus.design.topology,
                engine=engine,
                chunk_cycles=chunk_cycles,
                progress=progress,
            )
        finally:
            if own:
                sched.close()
        for summary in summaries:
            accumulator.merge_summary(summary)
            state.feed_summary(summary)
    else:
        for stats, _ in bus.iter_statistics(source, chunk_cycles, engine=engine):
            accumulator.accumulate(stats)
            state.feed(stats)
            if progress is not None:
                progress(state.cycles_fed, total)
    dvs = state.finish()
    fixed = evaluate_fixed_scaling(bus, accumulator.summary())
    return fixed, dvs


def run_table1(
    design: BusDesign | None = None,
    workloads: WorkloadMapping | None = None,
    corners: Sequence[PVTCorner] = (WORST_CASE_CORNER, TYPICAL_CORNER),
    n_cycles: int | None = None,
    seed: int = 2005,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    policy: ControlPolicy | None = None,
    window_cycles: int = 10_000,
    ramp_delay_cycles: int = 3000,
    chunk_cycles: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
    order: Sequence[str] | None = None,
) -> Table1Result:
    """Reproduce Table 1: fixed VS vs the proposed DVS, per benchmark and corner.

    Parameters
    ----------
    design:
        Bus design; defaults to the paper's bus.
    workloads:
        Benchmark traces or trace sources; when omitted, streamed synthetic
        sources at the paper's scale are used.  Any registry workload works
        here -- the cross-workload ``table1_kernels`` experiment passes CPU
        kernel sources next to the synthetic suite.
    corners:
        Corners to evaluate (the paper's Table 1 uses the worst-case and the
        typical corner).
    n_cycles:
        Cycles per benchmark when workloads are generated here; defaults to
        the paper's 10 M (:data:`~repro.trace.generator.PAPER_CYCLES_PER_BENCHMARK`),
        streamed in O(chunk) memory.
    seed:
        Trace-generation seed.
    warmup_fraction:
        Fraction of each run excluded from the energy/error accounting while
        the controller descends from the nominal supply.
    policy:
        Optional control-policy override (used by the ablation benchmarks).
    window_cycles / ramp_delay_cycles:
        Control-loop timing; the paper's values (10 000 and 3 000 cycles) by
        default.  Short test runs scale both down proportionally so the loop
        still reaches steady state.
    chunk_cycles:
        Streaming granularity; results are bit-identical for any value.
    engine:
        Kernel engine for the per-cycle statistics (:mod:`repro.bus.engine`);
        results are bit-identical for every engine, including
        ``"parallel"``.
    jobs:
        Worker processes for the parallel engine (``jobs > 1`` implies
        ``engine="parallel"``).  One worker pool is created for the whole
        table and reused across every benchmark x corner cell.
    order:
        Row order of the table; defaults to the paper's
        :data:`~repro.trace.benchmarks.TABLE1_ORDER` (names absent from
        ``workloads`` are skipped either way).
    """
    if design is None:
        design = BusDesign.paper_bus()
    if n_cycles is None:
        n_cycles = PAPER_CYCLES_PER_BENCHMARK
    if workloads is None:
        workloads = suite_sources(n_cycles=n_cycles, seed=seed)
    if order is None:
        order = TABLE1_ORDER

    # One persistent worker pool for the whole table: fork/start-up costs are
    # paid once, every benchmark x corner cell reuses the same workers.
    scheduler: "ParallelChunkScheduler" | None = None
    if (jobs is not None and jobs > 1) or resolve_engine(engine) == ENGINE_PARALLEL:
        from repro.runtime.parallel import ParallelChunkScheduler

        scheduler = ParallelChunkScheduler(n_workers=jobs if jobs is not None else 1)

    try:
        corner_results = _run_table1_corners(
            design=design,
            workloads=workloads,
            corners=corners,
            warmup_fraction=warmup_fraction,
            policy=policy,
            window_cycles=window_cycles,
            ramp_delay_cycles=ramp_delay_cycles,
            chunk_cycles=chunk_cycles,
            engine=engine,
            order=order,
            scheduler=scheduler,
        )
    finally:
        if scheduler is not None:
            scheduler.close()
    return Table1Result(corners=tuple(corner_results), n_cycles_per_benchmark=n_cycles)


def _run_table1_corners(
    design: BusDesign,
    workloads: WorkloadMapping,
    corners: Sequence[PVTCorner],
    warmup_fraction: float,
    policy: ControlPolicy | None,
    window_cycles: int,
    ramp_delay_cycles: int,
    chunk_cycles: int | None,
    engine: str | None,
    order: Sequence[str],
    scheduler: "ParallelChunkScheduler" | None,
) -> list[Table1CornerResult]:
    """The per-corner benchmark loop of :func:`run_table1`."""
    corner_results: list[Table1CornerResult] = []
    for corner in corners:
        bus = CharacterizedBus(design, corner)
        system = DVSBusSystem(
            bus,
            policy=policy,
            window_cycles=window_cycles,
            ramp_delay_cycles=ramp_delay_cycles,
        )
        rows: list[Table1Row] = []
        fixed_energy_total = 0.0
        fixed_reference_total = 0.0
        dvs_energy_total = 0.0
        dvs_reference_total = 0.0
        error_cycles_total = 0
        cycles_total = 0
        for name in order:
            if name not in workloads:
                continue
            progress = _auto_progress(
                as_trace_source(workloads[name]).n_cycles,
                label=f"table1 {name}@{corner.label}",
            )
            fixed, dvs = _run_benchmark_streamed(
                bus, system, workloads[name], warmup_fraction, chunk_cycles, progress,
                engine=engine, scheduler=scheduler,
            )
            rows.append(
                Table1Row(
                    benchmark=name,
                    fixed_vs_gain_percent=fixed.energy_gain_percent,
                    dvs_gain_percent=dvs.energy_gain_percent,
                    dvs_average_error_rate=dvs.average_error_rate,
                    fixed_vs_voltage=fixed.voltage,
                    dvs_minimum_voltage=dvs.minimum_voltage_reached,
                )
            )
            fixed_energy_total += fixed.energy.total_with_recovery
            fixed_reference_total += fixed.reference_energy.total_with_recovery
            dvs_energy_total += dvs.energy.total_with_recovery
            dvs_reference_total += dvs.reference_energy.total_with_recovery
            error_cycles_total += dvs.total_errors
            cycles_total += dvs.n_cycles
        corner_results.append(
            Table1CornerResult(
                corner=corner,
                rows=tuple(rows),
                total_fixed_vs_gain_percent=energy_gain_percent(
                    fixed_reference_total, fixed_energy_total
                ),
                total_dvs_gain_percent=energy_gain_percent(
                    dvs_reference_total, dvs_energy_total
                ),
                total_dvs_error_rate=(error_cycles_total / cycles_total) if cycles_total else 0.0,
            )
        )
    return corner_results


@dataclass(frozen=True)
class Fig8Result:
    """Supply-voltage and instantaneous error-rate time series of Fig. 8."""

    corner: PVTCorner
    benchmark_order: tuple[str, ...]
    benchmark_boundaries: tuple[int, ...]
    voltage_event_cycles: np.ndarray
    voltage_event_values: np.ndarray
    window_start_cycles: np.ndarray
    window_error_rates: np.ndarray
    run: DVSRunResult

    @property
    def n_cycles(self) -> int:
        """Total simulated cycles across the concatenated suite."""
        return self.run.n_cycles

    def max_instantaneous_error_rate(self) -> float:
        """Largest per-window error rate observed (the paper reports ~6 %)."""
        if len(self.window_error_rates) == 0:
            return 0.0
        return float(np.max(self.window_error_rates))

    def voltage_range(self) -> tuple[float, float]:
        """(min, max) supply voltage reached during the run."""
        return float(np.min(self.voltage_event_values)), float(
            np.max(self.voltage_event_values)
        )

    def as_dict(self) -> dict[str, object]:
        """Stable JSON-able view: summary scalars plus both time series.

        The voltage trajectory is event-encoded (cycle of each regulator
        step), so even a paper-scale 100 M-cycle run serialises to a few
        thousand points, not per-cycle arrays.
        """
        vmin, vmax = self.voltage_range()
        return {
            "corner": self.corner.label,
            "benchmark_order": list(self.benchmark_order),
            "benchmark_boundaries": [int(b) for b in self.benchmark_boundaries],
            "n_cycles": int(self.n_cycles),
            "total_errors": int(self.run.total_errors),
            "average_error_rate_percent": round(self.run.average_error_rate * 100.0, 3),
            "max_instantaneous_error_rate_percent": round(
                self.max_instantaneous_error_rate() * 100.0, 3
            ),
            "energy_gain_percent": round(self.run.energy_gain_percent, 2),
            "supply_min_mv": round(vmin * 1000.0, 1),
            "supply_max_mv": round(vmax * 1000.0, 1),
            "voltage_events": {
                "cycles": [int(c) for c in self.voltage_event_cycles],
                "mv": [round(float(v) * 1000.0, 1) for v in self.voltage_event_values],
            },
            "windows": {
                "start_cycles": [int(c) for c in self.window_start_cycles],
                "error_rate_percent": [
                    round(float(r) * 100.0, 3) for r in self.window_error_rates
                ],
            },
        }


def run_fig8(
    design: BusDesign | None = None,
    workloads: WorkloadMapping | None = None,
    corner: PVTCorner = TYPICAL_CORNER,
    n_cycles: int | None = None,
    seed: int = 2005,
    benchmark_order: Sequence[str] = TABLE1_ORDER,
    policy: ControlPolicy | None = None,
    window_cycles: int = 10_000,
    ramp_delay_cycles: int = 3000,
    chunk_cycles: int | None = None,
    engine: str | None = None,
    jobs: int | None = None,
) -> Fig8Result:
    """Reproduce Fig. 8: the suite run back-to-back under closed-loop DVS.

    The supply starts at the nominal 1.2 V and the controller adapts to each
    program's switching activity; the returned time series shows the supply
    trajectory and the 10 000-cycle instantaneous error rates, with the
    benchmark region boundaries for annotation.  The concatenated suite is
    streamed program by program, chunk by chunk, so the paper-scale
    (10 benchmarks x 10 M cycles) run never materialises a trace.
    """
    if design is None:
        design = BusDesign.paper_bus()
    if n_cycles is None:
        n_cycles = PAPER_CYCLES_PER_BENCHMARK
    if workloads is None:
        workloads = suite_sources(names=benchmark_order, n_cycles=n_cycles, seed=seed)

    suite = ConcatenatedTraceSource(
        [as_trace_source(workloads[name]) for name in benchmark_order], name="fig8-suite"
    )
    boundaries = suite.boundaries()

    bus = CharacterizedBus(design, corner)
    system = DVSBusSystem(
        bus, policy=policy, window_cycles=window_cycles, ramp_delay_cycles=ramp_delay_cycles
    )
    run = system.run(
        suite,
        initial_voltage=design.nominal_vdd,
        chunk_cycles=chunk_cycles,
        progress=_auto_progress(suite.n_cycles, label=f"fig8@{corner.label}"),
        engine=engine,
        jobs=jobs,
    )

    events = run.voltage_events
    return Fig8Result(
        corner=corner,
        benchmark_order=tuple(benchmark_order),
        benchmark_boundaries=tuple(boundaries),
        voltage_event_cycles=np.array([event.cycle for event in events]),
        voltage_event_values=np.array([event.voltage for event in events]),
        window_start_cycles=run.window_start_cycles,
        window_error_rates=run.window_error_rates,
        run=run,
    )
