"""Plain-text reporting of the experiment results.

The benchmark harness and the examples print the same rows/series the paper
reports; these formatters keep that output consistent and readable without
pulling in any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.analysis.dynamic_dvs import Fig8Result, Table1Result
from repro.analysis.modified_bus import ModifiedBusStudy, TechnologyScalingStudy
from repro.analysis.oracle_dvs import OracleResidencyStudy
from repro.analysis.static_scaling import CornerGainStudy, StaticScalingSweep


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format a simple fixed-width text table."""
    rendered_rows: list[list[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [format_row(list(headers)), format_row(["-" * width for width in widths])]
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_static_sweep(sweep: StaticScalingSweep) -> str:
    """Fig. 4 style table: voltage vs error rate and normalised energy."""
    rows = [
        (
            f"{point.vdd * 1000:.0f}",
            f"{point.error_rate * 100:.2f}",
            f"{point.normalized_bus_energy:.3f}",
            f"{point.normalized_total_energy:.3f}",
        )
        for point in sweep.points
    ]
    header = f"Static voltage scaling at {sweep.corner.label}\n"
    return header + format_table(
        ["Vdd (mV)", "Error rate (%)", "Bus energy (norm.)", "Bus + recovery (norm.)"], rows
    )


def format_corner_gain_study(study: CornerGainStudy) -> str:
    """Fig. 5 / Fig. 10 style table: per-corner gains for each error target."""
    headers = ["Corner", "Delay @1.2V (ps)"] + [
        f"Gain @ {target * 100:.0f}% err (%)" for target in study.targets
    ]
    rows = []
    for point in study.points:
        rows.append(
            [point.corner.label, f"{point.nominal_delay * 1e12:.0f}"]
            + [f"{point.gains_percent[target]:.1f}" for target in study.targets]
        )
    return f"Energy gains vs PVT corner ({study.design_label})\n" + format_table(headers, rows)


def format_table1(result: Table1Result) -> str:
    """The paper's Table 1 layout: one block per corner plus a totals line."""
    blocks: list[str] = []
    for corner_result in result.corners:
        rows = [
            (
                row.benchmark,
                f"{row.fixed_vs_gain_percent:.1f}",
                f"{row.dvs_gain_percent:.1f}",
                f"{row.dvs_average_error_rate * 100:.2f}",
            )
            for row in corner_result.rows
        ]
        rows.append(
            (
                "Total",
                f"{corner_result.total_fixed_vs_gain_percent:.1f}",
                f"{corner_result.total_dvs_gain_percent:.1f}",
                f"{corner_result.total_dvs_error_rate * 100:.2f}",
            )
        )
        table = format_table(
            ["Benchmark", "Fixed VS gain (%)", "Proposed DVS gain (%)", "Avg error rate (%)"],
            rows,
        )
        blocks.append(f"{corner_result.corner.label}\n{table}")
    return "\n\n".join(blocks)


def format_fig8(result: Fig8Result, max_points: int = 40) -> str:
    """A textual summary of the Fig. 8 time series."""
    vmin, vmax = result.voltage_range()
    lines = [
        f"Fig. 8 run at {result.corner.label}",
        f"benchmarks (in order): {', '.join(result.benchmark_order)}",
        f"cycles: {result.n_cycles}, corrected errors: {result.run.total_errors}",
        f"supply range: {vmin * 1000:.0f} mV .. {vmax * 1000:.0f} mV",
        f"average error rate: {result.run.average_error_rate * 100:.2f} %",
        f"max instantaneous (10k-cycle) error rate: "
        f"{result.max_instantaneous_error_rate() * 100:.2f} %",
        f"energy gain: {result.run.energy_gain_percent:.1f} %",
        "voltage trajectory (cycle: mV):",
    ]
    events = list(zip(result.voltage_event_cycles, result.voltage_event_values))
    step = max(1, len(events) // max_points)
    for cycle, voltage in events[::step]:
        lines.append(f"  {int(cycle):>10d}: {voltage * 1000:.0f}")
    return "\n".join(lines)


def format_oracle_residency(study: OracleResidencyStudy) -> str:
    """Fig. 6 style table: voltage residency per benchmark and target."""
    blocks: list[str] = []
    for entry in study.entries:
        residency: Mapping[float, float] = entry.residency
        rows = [
            (f"{voltage * 1000:.0f}", f"{share * 100:.1f}")
            for voltage, share in sorted(residency.items())
        ]
        table = format_table(["Supply (mV)", "Time (%)"], rows)
        blocks.append(
            f"{entry.benchmark} @ target error rate {entry.target_error_rate * 100:.0f}% "
            f"(gain {entry.schedule.energy_gain_percent:.1f}%)\n{table}"
        )
    return f"Oracle voltage residency at {study.corner.label}\n\n" + "\n\n".join(blocks)


def format_modified_bus_study(study: ModifiedBusStudy) -> str:
    """Fig. 10 comparison of the original and modified bus."""
    parts = [
        format_corner_gain_study(study.original_study),
        "",
        format_corner_gain_study(study.modified_study),
        "",
        "Closed-loop DVS at the worst-case corner:",
        f"  original bus: gain {study.original_worst_corner_dvs_gain:.1f} % "
        f"(avg error {study.original_worst_corner_error_rate * 100:.2f} %)",
        f"  modified bus: gain {study.modified_worst_corner_dvs_gain:.1f} % "
        f"(avg error {study.modified_worst_corner_error_rate * 100:.2f} %)",
    ]
    return "\n".join(parts)


def format_technology_scaling(study: TechnologyScalingStudy) -> str:
    """Section 6 scaling-trend table."""
    rows = [
        (node, f"{study.spread_by_node[node] * 1e12:.2f}", f"{study.normalized_spread[node]:.2f}")
        for node in study.spread_by_node
    ]
    return "Delay-spread (R x Cc) trend with technology scaling\n" + format_table(
        ["Node", "R x Cc per segment (ps)", "Normalised"], rows
    )
